// Multi-swarm discrete-event engine: simulates every swarm of a bundled
// catalog in one run.
//
// Given a policy's SwarmPlan, the engine builds one AvailabilityProcess per
// swarm (seeded seed + swarm_index) and executes them either
//
//   - kSharded: each swarm on its own private EventQueue, fanned across
//     sim::Parallel with per-index result buffering and index-order merge —
//     the same determinism contract as run_replications, so every thread
//     count (including 1) produces a bit-identical CatalogReport; or
//   - kSharedQueue: all swarms multiplexed onto ONE EventQueue on the
//     calling thread. Because each process draws randomness only in its own
//     handlers from its own Rng, interleaving does not perturb any swarm's
//     sample path: the shared-queue report is bit-identical to the sharded
//     one (pinned by tests/catalog/test_catalog_engine.cpp).
//
// Swarms in the plan are statistically independent given the policy (they
// share no peers, no publishers, no capacity), which is what makes both
// executions exact rather than approximations of each other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>

#include "catalog/bundling_policy.hpp"
#include "catalog/report.hpp"
#include "sim/availability_sim.hpp"
#include "sim/parallel.hpp"
#include "util/telemetry.hpp"

namespace swarmavail {
class MetricsRegistry;
}  // namespace swarmavail

namespace swarmavail::sim {
class Tracer;
}  // namespace swarmavail::sim

namespace swarmavail::catalog {

/// How the engine executes the per-swarm processes.
enum class ExecutionMode {
    kSharded,      ///< private queue per swarm, parallel fan-out (default)
    kSharedQueue,  ///< one queue, single thread — the multiplexed engine
};

/// Sentinel: no swarm is traced.
inline constexpr std::size_t kNoTracedSwarm = std::numeric_limits<std::size_t>::max();

/// Configuration of one catalog run.
struct CatalogEngineConfig {
    double horizon = 1.0e5;              ///< simulated seconds per swarm
    std::uint64_t seed = 1;              ///< swarm i runs with seed + i
    std::size_t coverage_threshold = 1;  ///< m, per swarm
    bool patient_peers = true;           ///< wait for a publisher vs leave
    double linger_time = 0.0;            ///< post-completion seeding (s)
    bool debug_audit = false;            ///< per-event invariant audits
    ExecutionMode execution = ExecutionMode::kSharded;
    /// Thread policy for kSharded (ignored by kSharedQueue). Results are
    /// bit-identical at every thread count.
    sim::ParallelPolicy policy{};
    /// Optional registry receiving the "catalog.*" aggregates (see
    /// report.hpp record_metrics). Must outlive the call.
    MetricsRegistry* metrics = nullptr;
    /// Optional tracer attached to exactly one swarm of the run, so a
    /// single swarm can be replayed out of a catalog (trace_inspect on the
    /// JSONL output). kNoTracedSwarm: no tracing. The traced swarm's
    /// records are identical to tracing it in an isolated run.
    sim::Tracer* tracer = nullptr;
    std::size_t traced_swarm = kNoTracedSwarm;
    /// Optional live-telemetry session. Pure observer: swarm progress,
    /// dispatched-event and sim-time counters, and per-swarm arrival
    /// unavailability (tracked as "catalog.swarm_unavailability") are
    /// published as swarms complete (kSharded) or per horizon slice
    /// (kSharedQueue); the report is bit-identical attached or detached.
    telemetry::TelemetrySession* telemetry = nullptr;
    /// Optional early stop over per-swarm arrival unavailability (kSharded
    /// only): once the rule is satisfied by the swarms completed so far,
    /// remaining swarms are skipped and the report covers only the swarms
    /// that ran (stopped_early = true, demand weights renormalized over the
    /// covered files). Under ParallelPolicy{1} the covered prefix is
    /// deterministic; with more threads the cut point depends on
    /// scheduling, which is why the decision is recorded in the report.
    std::optional<telemetry::StopRule> stop_rule{};
    /// Determinism fingerprints (see sim/fingerprint.hpp): every swarm
    /// folds its own event path process-side — queue-agnostic, so sharded
    /// and shared-queue runs digest identically — and the report combines
    /// the per-swarm digests in swarm-index order into one catalog-wide
    /// fingerprint. Pure observer; ignored when the build defines
    /// SWARMAVAIL_FINGERPRINT_DISABLED.
    bool fingerprint = true;
};

/// The simulation config the engine uses for swarm `swarm_index` of `plan`.
/// Exposed so tests and tools can replay one swarm of a catalog run in
/// isolation (bit-exactly) with run_availability_sim.
[[nodiscard]] sim::AvailabilitySimConfig swarm_sim_config(
    const Catalog& catalog, const SwarmPlan& plan, std::size_t swarm_index,
    const CatalogEngineConfig& config);

/// Runs every swarm of `policy.assign(catalog)` and aggregates the report.
/// Validates the plan (every file in exactly one swarm) before running.
[[nodiscard]] CatalogReport run_catalog(const Catalog& catalog,
                                        const BundlingPolicy& policy,
                                        const CatalogEngineConfig& config);

/// Same, for a pre-computed plan.
[[nodiscard]] CatalogReport run_catalog_plan(const Catalog& catalog,
                                             const SwarmPlan& plan,
                                             const CatalogEngineConfig& config);

}  // namespace swarmavail::catalog
