#include "catalog/catalog.hpp"

#include <cmath>

#include "model/zipf_demand.hpp"
#include "util/check.hpp"

namespace swarmavail::catalog {

void CatalogConfig::validate() const {
    SWARMAVAIL_REQUIRE(num_files >= 1, "CatalogConfig: num_files must be >= 1");
    SWARMAVAIL_REQUIRE(std::isfinite(zipf_exponent) && zipf_exponent >= 0.0,
                       "CatalogConfig: zipf_exponent must be finite and >= 0");
    SWARMAVAIL_REQUIRE(aggregate_demand > 0.0,
                       "CatalogConfig: aggregate_demand must be > 0");
    SWARMAVAIL_REQUIRE(file_size > 0.0, "CatalogConfig: file_size must be > 0");
    SWARMAVAIL_REQUIRE(download_rate > 0.0, "CatalogConfig: download_rate must be > 0");
    SWARMAVAIL_REQUIRE(publisher_arrival_rate > 0.0,
                       "CatalogConfig: publisher_arrival_rate must be > 0");
    SWARMAVAIL_REQUIRE(publisher_residence > 0.0,
                       "CatalogConfig: publisher_residence must be > 0");
}

double Catalog::total_demand() const noexcept {
    double total = 0.0;
    for (const CatalogFile& file : files) {
        total += file.demand_rate;
    }
    return total;
}

Catalog build_catalog(const CatalogConfig& config) {
    config.validate();
    const auto popularity =
        model::zipf_popularities(config.num_files, config.zipf_exponent);
    Catalog catalog;
    catalog.config = config;
    catalog.files.reserve(config.num_files);
    for (std::size_t i = 0; i < config.num_files; ++i) {
        CatalogFile file;
        file.id = i;
        file.demand_rate = popularity[i] * config.aggregate_demand;
        file.size = config.file_size;
        catalog.files.push_back(file);
    }
    return catalog;
}

}  // namespace swarmavail::catalog
