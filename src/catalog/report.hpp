// Catalog-run results: per-swarm and per-file outcomes plus catalog-wide
// aggregates, with deterministic serialization.
//
// A CatalogReport is assembled from per-swarm AvailabilitySimResults in
// swarm-index order, so its content is a pure function of (catalog, plan,
// engine config) — independent of thread count or execution mode. The
// JSON writer uses lossless double formatting, so two reports are
// bit-identical iff their serializations compare equal (the acceptance
// tests rely on this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "catalog/bundling_policy.hpp"
#include "model/params.hpp"
#include "sim/availability_sim.hpp"

namespace swarmavail {
class MetricsRegistry;
}  // namespace swarmavail

namespace swarmavail::catalog {

/// One simulated swarm's outcome.
struct SwarmOutcome {
    std::size_t swarm = 0;          ///< index in the plan
    SwarmFiles files;               ///< member file ids
    model::SwarmParams params;      ///< aggregated simulation parameters
    sim::AvailabilitySimResult result;
};

/// One file's view of its swarm's outcome (files in a swarm share fate:
/// a request for any member is served iff the swarm is available).
struct FileOutcome {
    std::size_t file = 0;
    double demand_rate = 0.0;
    std::size_t swarm = 0;
    std::size_t bundle_size = 0;
    double arrival_unavailability = 0.0;
    double unavailable_time_fraction = 0.0;
    double mean_download_time = 0.0;  ///< swarm mean over served peers (0 if none)
};

/// Whole-catalog aggregates plus the per-swarm / per-file breakdowns.
struct CatalogReport {
    std::vector<SwarmOutcome> swarms;
    std::vector<FileOutcome> files;

    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t lost = 0;
    std::uint64_t stranded = 0;

    /// Sum over files of lambda_f * U_f / Lambda with U_f the file's
    /// arrival unavailability: the probability a catalog request finds its
    /// content unavailable.
    double demand_weighted_unavailability = 0.0;
    /// Pooled mean download time over every served peer in the catalog (s).
    double mean_download_time = 0.0;
    /// Demand-weighted mean of per-swarm unavailable-time fractions.
    double demand_weighted_unavailable_time = 0.0;
    /// Mean over swarms of the time fraction with >= 1 publisher online.
    double mean_publisher_online_fraction = 0.0;
    /// Total publisher up-transitions across swarms: how many reseedings
    /// the catalog's publishers performed (the publisher-load price).
    std::uint64_t publisher_up_transitions = 0;
    /// Offered publisher load sum_i r_i * u_i: mean publishers online if
    /// never idle-capped; dedicated assignment scales it with swarm count,
    /// a partitioned budget keeps it constant.
    double expected_publisher_load = 0.0;

    /// Catalog-wide determinism fingerprint: every covered swarm's
    /// (index, digest, event count) folded in swarm-index order (see
    /// sim/fingerprint.hpp). A pure function of the per-swarm digests, so
    /// sharded and shared-queue runs at any thread count must agree here.
    /// 0 when fingerprinting was off or compiled out.
    std::uint64_t fingerprint = 0;

    /// Swarms in the plan the run was asked to execute (== swarms.size()
    /// unless a StopRule ended the run early).
    std::size_t swarms_planned = 0;
    /// True when a StopRule cut the run short: `swarms` and `files` then
    /// cover only the swarms that completed (original indices preserved)
    /// and the demand-weighted aggregates are normalized over the covered
    /// demand rather than the whole catalog's.
    bool stopped_early = false;
};

/// Builds the report from per-swarm results (index order). `params` and
/// `results` must parallel `plan`.
[[nodiscard]] CatalogReport build_report(const Catalog& catalog, const SwarmPlan& plan,
                                         const std::vector<model::SwarmParams>& params,
                                         std::vector<sim::AvailabilitySimResult> results);

/// Early-stop variant: `completed` parallels `plan` and marks the swarms
/// that actually ran. Only completed swarms (original indices preserved)
/// and their files appear in the report, and the demand-weighted aggregates
/// are normalized over the covered demand. With every swarm marked
/// completed this still uses the partial accumulation path — callers with a
/// full run should use build_report, whose output is byte-stable.
[[nodiscard]] CatalogReport build_partial_report(
    const Catalog& catalog, const SwarmPlan& plan,
    const std::vector<model::SwarmParams>& params,
    std::vector<sim::AvailabilitySimResult> results,
    const std::vector<char>& completed);

/// Records the catalog-wide aggregates and per-swarm distributions into a
/// registry under "catalog.*" names (counters for peer totals, histograms
/// over per-swarm unavailability / download time / publisher uptime,
/// gauges for the weighted aggregates). Deterministic: metrics are folded
/// in swarm-index order.
void record_metrics(const CatalogReport& report, MetricsRegistry& metrics);

/// Writes the full report as one JSON object with lossless doubles;
/// bit-identical runs serialize to byte-identical JSON.
void write_json(const CatalogReport& report, std::ostream& os);

/// Human-readable summary: catalog-wide aggregates plus the head/tail of
/// the per-file table.
void write_summary(const CatalogReport& report, std::ostream& os);

}  // namespace swarmavail::catalog
