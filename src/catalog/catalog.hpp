// Catalog layer: whole-content-catalog descriptions for multi-swarm
// simulation (the distribution-level view of the paper's Section 3.3
// results).
//
// A Catalog is N files with Zipf(alpha)-skewed per-file demand rates
// derived from model/zipf_demand, plus the publisher resources available to
// serve them. A BundlingPolicy (bundling_policy.hpp) partitions the files
// into swarms, and the CatalogEngine (catalog_engine.hpp) simulates every
// swarm's busy-period process in one run — so the e^{-Theta(K^2)}
// unavailability decay and the Figure 3 download-time tradeoff can be
// measured catalog-wide instead of one swarm at a time.
#pragma once

#include <cstddef>
#include <vector>

namespace swarmavail::catalog {

/// One file of the catalog. Files are indexed by popularity rank:
/// id 0 is the most popular (Zipf rank 1).
struct CatalogFile {
    std::size_t id = 0;        ///< 0-based popularity rank
    double demand_rate = 0.0;  ///< lambda_f, peer arrivals/s for this file
    double size = 0.0;         ///< s_f, bits
};

/// How publisher resources map onto the swarms a policy creates.
enum class PublisherAssignment {
    /// Every swarm gets its own publisher process with the configured
    /// (r, u): publishers are per-torrent, as in Sections 3.2-3.3.
    kDedicated,
    /// One publisher budget of total arrival rate r is split evenly over
    /// the swarms: per-swarm rate r / num_swarms. Bundling then
    /// concentrates publisher attention — fewer swarms, more frequent
    /// reseeding each — which is the resource argument for bundling.
    kPartitionedBudget,
};

/// Knobs of a synthetic Zipf catalog.
struct CatalogConfig {
    std::size_t num_files = 0;        ///< N; must be >= 1
    double zipf_exponent = 1.0;       ///< alpha >= 0 (0 = uniform demand)
    double aggregate_demand = 0.0;    ///< Lambda, peer arrivals/s over the catalog
    double file_size = 0.0;           ///< s, bits (homogeneous files)
    double download_rate = 0.0;       ///< mu, bits/s effective swarm capacity
    double publisher_arrival_rate = 0.0;  ///< r (per swarm, or total budget)
    double publisher_residence = 0.0;     ///< u, seconds
    PublisherAssignment publishers = PublisherAssignment::kDedicated;

    /// Throws std::invalid_argument unless every count/rate/size is valid.
    void validate() const;
};

/// A content catalog: the config it was built from plus the per-file
/// demand profile (descending in id, since id is the popularity rank).
struct Catalog {
    CatalogConfig config;
    std::vector<CatalogFile> files;

    /// Sum of per-file demand rates (== config.aggregate_demand up to
    /// floating-point rounding).
    [[nodiscard]] double total_demand() const noexcept;
};

/// Builds the catalog: per-file demands lambda_f = p_f * Lambda with
/// p_f the normalized Zipf(alpha) popularities over N ranks.
[[nodiscard]] Catalog build_catalog(const CatalogConfig& config);

}  // namespace swarmavail::catalog
