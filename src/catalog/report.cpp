#include "catalog/report.hpp"

#include <algorithm>
#include <ostream>

#include "sim/fingerprint.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace swarmavail::catalog {
namespace {

/// Serializes a StreamingStats as a JSON object. count/mean/variance/
/// min/max fully determine the accumulator state, so equal serializations
/// imply bit-identical statistics.
void write_stats(std::ostream& os, const StreamingStats& stats) {
    os << "{\"count\":" << stats.count()
       << ",\"mean\":" << format_double_exact(stats.mean())
       << ",\"variance\":" << format_double_exact(stats.variance())
       << ",\"min\":" << format_double_exact(stats.min())
       << ",\"max\":" << format_double_exact(stats.max()) << "}";
}

/// Shared accumulation core. `completed` == nullptr is the full-run path
/// (byte-stable: denominators and iteration order exactly as before the
/// partial variant existed); with a mask, only completed swarms contribute
/// and the demand denominators are accumulated over the covered files.
CatalogReport build_report_impl(const Catalog& catalog, const SwarmPlan& plan,
                                const std::vector<model::SwarmParams>& params,
                                std::vector<sim::AvailabilitySimResult>& results,
                                const std::vector<char>* completed) {
    SWARMAVAIL_REQUIRE(plan.size() == params.size() && plan.size() == results.size(),
                       "build_report: plan/params/results size mismatch");
    CatalogReport report;
    report.swarms.reserve(plan.size());
    report.files.resize(catalog.files.size());
    report.swarms_planned = plan.size();

    double download_seconds = 0.0;
    double online_fraction_sum = 0.0;
    double unavailable_time_weighted = 0.0;
    double unavailability_weighted = 0.0;
    double covered_demand = 0.0;
    const double total_demand =
        completed == nullptr ? catalog.total_demand() : 0.0;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    sim::Fingerprint combined_fingerprint;
    std::uint64_t fingerprinted_swarms = 0;
#endif

    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (completed != nullptr && !(*completed)[i]) {
            continue;
        }
        const sim::AvailabilitySimResult& result = results[i];
        report.arrivals += result.arrivals;
        report.served += result.served;
        report.lost += result.lost;
        report.stranded += result.stranded;
        report.publisher_up_transitions += result.publisher_up_transitions;
        download_seconds += result.download_times.sum();
        online_fraction_sum += result.publisher_online_fraction;
        report.expected_publisher_load +=
            params[i].publisher_arrival_rate * params[i].publisher_residence;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        // Canonical catalog fingerprint: index-order fold of the per-swarm
        // digests, so any execution mode / thread count that produced the
        // same per-swarm sample paths combines to the same value.
        if (result.fingerprint != 0) {
            combined_fingerprint.fold(static_cast<std::uint64_t>(i));
            combined_fingerprint.fold(result.fingerprint);
            combined_fingerprint.fold(result.fingerprint_events);
            ++fingerprinted_swarms;
        }
#endif

        const double swarm_download_mean =
            result.download_times.count() > 0 ? result.download_times.mean() : 0.0;
        for (std::size_t id : plan[i]) {
            FileOutcome& file = report.files[id];
            file.file = id;
            file.demand_rate = catalog.files[id].demand_rate;
            file.swarm = i;
            file.bundle_size = plan[i].size();
            file.arrival_unavailability = result.arrival_unavailability;
            file.unavailable_time_fraction = result.unavailable_time_fraction;
            file.mean_download_time = swarm_download_mean;
            unavailability_weighted += file.demand_rate * file.arrival_unavailability;
            unavailable_time_weighted += file.demand_rate * file.unavailable_time_fraction;
            covered_demand += file.demand_rate;
        }

        SwarmOutcome outcome;
        outcome.swarm = i;
        outcome.files = plan[i];
        outcome.params = params[i];
        outcome.result = std::move(results[i]);
        report.swarms.push_back(std::move(outcome));
    }

    const double demand_denominator =
        completed == nullptr ? total_demand : covered_demand;
    if (demand_denominator > 0.0) {
        report.demand_weighted_unavailability =
            unavailability_weighted / demand_denominator;
        report.demand_weighted_unavailable_time =
            unavailable_time_weighted / demand_denominator;
    }
    if (report.served > 0) {
        report.mean_download_time =
            download_seconds / static_cast<double>(report.served);
    }
    if (!report.swarms.empty()) {
        report.mean_publisher_online_fraction =
            online_fraction_sum / static_cast<double>(report.swarms.size());
    }
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    if (fingerprinted_swarms > 0) {
        report.fingerprint = combined_fingerprint.digest();
    }
#endif
    if (completed != nullptr) {
        report.stopped_early = report.swarms.size() < plan.size();
        // Drop the never-simulated files (every covered file has
        // bundle_size >= 1, so the default-initialized entries are exactly
        // the uncovered ones).
        report.files.erase(
            std::remove_if(report.files.begin(), report.files.end(),
                           [](const FileOutcome& file) { return file.bundle_size == 0; }),
            report.files.end());
    }
    return report;
}

}  // namespace

CatalogReport build_report(const Catalog& catalog, const SwarmPlan& plan,
                           const std::vector<model::SwarmParams>& params,
                           std::vector<sim::AvailabilitySimResult> results) {
    return build_report_impl(catalog, plan, params, results, nullptr);
}

CatalogReport build_partial_report(const Catalog& catalog, const SwarmPlan& plan,
                                   const std::vector<model::SwarmParams>& params,
                                   std::vector<sim::AvailabilitySimResult> results,
                                   const std::vector<char>& completed) {
    SWARMAVAIL_REQUIRE(completed.size() == plan.size(),
                       "build_partial_report: completed mask size mismatch");
    return build_report_impl(catalog, plan, params, results, &completed);
}

void record_metrics(const CatalogReport& report, MetricsRegistry& metrics) {
    metrics.counter("catalog.swarms").add(report.swarms.size());
    metrics.counter("catalog.files").add(report.files.size());
    metrics.counter("catalog.arrivals").add(report.arrivals);
    metrics.counter("catalog.served").add(report.served);
    metrics.counter("catalog.lost").add(report.lost);
    metrics.counter("catalog.stranded").add(report.stranded);
    metrics.counter("catalog.publisher_up_transitions")
        .add(report.publisher_up_transitions);

    auto& unavail_hist =
        metrics.histogram("catalog.swarm_unavailability", 0.0, 1.0, 20);
    auto& online_hist =
        metrics.histogram("catalog.swarm_publisher_online_fraction", 0.0, 1.0, 20);
    auto& download_hist = metrics.histogram("catalog.swarm_download_time_s", 1.0,
                                            1048576.0, 20, HistogramScale::kLog2);
    for (const SwarmOutcome& swarm : report.swarms) {
        unavail_hist.add(swarm.result.arrival_unavailability);
        online_hist.add(swarm.result.publisher_online_fraction);
        if (swarm.result.download_times.count() > 0) {
            download_hist.add(swarm.result.download_times.mean());
        }
    }

    metrics.gauge("catalog.demand_weighted_unavailability")
        .set(report.demand_weighted_unavailability);
    metrics.gauge("catalog.mean_download_time_s").set(report.mean_download_time);
    metrics.gauge("catalog.expected_publisher_load")
        .set(report.expected_publisher_load);
    // Gauges hold doubles, which lose integer precision past 2^53: export
    // the 64-bit fingerprint as exact 32-bit halves.
    metrics.gauge("catalog.fingerprint_lo")
        .set(static_cast<double>(report.fingerprint & 0xffffffffULL));
    metrics.gauge("catalog.fingerprint_hi")
        .set(static_cast<double>(report.fingerprint >> 32U));
}

void write_json(const CatalogReport& report, std::ostream& os) {
    os << "{\"arrivals\":" << report.arrivals << ",\"served\":" << report.served
       << ",\"lost\":" << report.lost << ",\"stranded\":" << report.stranded
       << ",\"swarms_planned\":" << report.swarms_planned
       << ",\"stopped_early\":" << (report.stopped_early ? "true" : "false")
       << ",\"publisher_up_transitions\":" << report.publisher_up_transitions
       << ",\"demand_weighted_unavailability\":"
       << format_double_exact(report.demand_weighted_unavailability)
       << ",\"mean_download_time\":" << format_double_exact(report.mean_download_time)
       << ",\"demand_weighted_unavailable_time\":"
       << format_double_exact(report.demand_weighted_unavailable_time)
       << ",\"mean_publisher_online_fraction\":"
       << format_double_exact(report.mean_publisher_online_fraction)
       << ",\"expected_publisher_load\":"
       << format_double_exact(report.expected_publisher_load)
       << ",\"fingerprint\":" << report.fingerprint;

    os << ",\"swarms\":[";
    for (std::size_t i = 0; i < report.swarms.size(); ++i) {
        const SwarmOutcome& swarm = report.swarms[i];
        const sim::AvailabilitySimResult& r = swarm.result;
        os << (i == 0 ? "" : ",") << "{\"swarm\":" << swarm.swarm << ",\"files\":[";
        for (std::size_t j = 0; j < swarm.files.size(); ++j) {
            os << (j == 0 ? "" : ",") << swarm.files[j];
        }
        os << "],\"lambda\":" << format_double_exact(swarm.params.peer_arrival_rate)
           << ",\"size\":" << format_double_exact(swarm.params.content_size)
           << ",\"publisher_rate\":"
           << format_double_exact(swarm.params.publisher_arrival_rate)
           << ",\"arrivals\":" << r.arrivals << ",\"served\":" << r.served
           << ",\"lost\":" << r.lost << ",\"stranded\":" << r.stranded
           << ",\"arrival_unavailability\":"
           << format_double_exact(r.arrival_unavailability)
           << ",\"unavailable_time_fraction\":"
           << format_double_exact(r.unavailable_time_fraction)
           << ",\"publisher_up_transitions\":" << r.publisher_up_transitions
           << ",\"publisher_online_fraction\":"
           << format_double_exact(r.publisher_online_fraction)
           << ",\"fingerprint\":" << r.fingerprint
           << ",\"fingerprint_events\":" << r.fingerprint_events
           << ",\"busy_periods\":";
        write_stats(os, r.busy_periods);
        os << ",\"idle_periods\":";
        write_stats(os, r.idle_periods);
        os << ",\"download_times\":";
        write_stats(os, r.download_times);
        os << ",\"waiting_times\":";
        write_stats(os, r.waiting_times);
        os << "}";
    }
    os << "]";

    os << ",\"files\":[";
    for (std::size_t i = 0; i < report.files.size(); ++i) {
        const FileOutcome& file = report.files[i];
        os << (i == 0 ? "" : ",") << "{\"file\":" << file.file << ",\"lambda\":"
           << format_double_exact(file.demand_rate) << ",\"swarm\":" << file.swarm
           << ",\"bundle_size\":" << file.bundle_size
           << ",\"arrival_unavailability\":"
           << format_double_exact(file.arrival_unavailability)
           << ",\"unavailable_time_fraction\":"
           << format_double_exact(file.unavailable_time_fraction)
           << ",\"mean_download_time\":"
           << format_double_exact(file.mean_download_time) << "}";
    }
    os << "]}";
}

void write_summary(const CatalogReport& report, std::ostream& os) {
    os << "catalog: " << report.files.size() << " files in " << report.swarms.size()
       << " swarms";
    if (report.stopped_early) {
        os << " (stopped early: " << report.swarms.size() << " of "
           << report.swarms_planned << " planned swarms ran)";
    }
    os << "\n"
       << "  arrivals " << report.arrivals << ", served " << report.served
       << ", lost " << report.lost << ", stranded " << report.stranded << "\n"
       << "  request unavailability " << format_double(report.demand_weighted_unavailability, 4)
       << ", mean download time " << format_double(report.mean_download_time, 6)
       << " s\n"
       << "  publisher reseedings " << report.publisher_up_transitions
       << ", mean online fraction "
       << format_double(report.mean_publisher_online_fraction, 4)
       << ", offered publisher load "
       << format_double(report.expected_publisher_load, 4) << "\n"
       << "  fingerprint " << sim::fingerprint_hex(report.fingerprint) << "\n";

    TableWriter table{{"file", "lambda", "swarm", "K", "unavail", "E[T] (s)"}};
    const std::size_t n = report.files.size();
    const std::size_t head = std::min<std::size_t>(n, 5);
    const std::size_t tail = n > head + 5 ? 5 : n - head;
    const auto add_file = [&table](const FileOutcome& file) {
        table.add_row({std::to_string(file.file), format_double(file.demand_rate, 4),
                       std::to_string(file.swarm), std::to_string(file.bundle_size),
                       format_double(file.arrival_unavailability, 4),
                       format_double(file.mean_download_time, 6)});
    };
    for (std::size_t i = 0; i < head; ++i) {
        add_file(report.files[i]);
    }
    if (head + tail < n) {
        table.add_row({"...", "...", "...", "...", "...", "..."});
    }
    for (std::size_t i = n - tail; i < n; ++i) {
        add_file(report.files[i]);
    }
    table.print(os);
}

}  // namespace swarmavail::catalog
