#include "catalog/catalog_engine.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "sim/availability_process.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"

namespace swarmavail::catalog {
namespace {

std::vector<sim::AvailabilitySimConfig> swarm_configs(const Catalog& catalog,
                                                      const SwarmPlan& plan,
                                                      const CatalogEngineConfig& config) {
    std::vector<sim::AvailabilitySimConfig> configs;
    configs.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        configs.push_back(swarm_sim_config(catalog, plan, i, config));
    }
    return configs;
}

/// The multiplexed engine: every swarm's process on one queue, one thread.
std::vector<sim::AvailabilitySimResult> run_shared_queue(
    const std::vector<sim::AvailabilitySimConfig>& configs,
    const CatalogEngineConfig& config) {
    SWARMAVAIL_PROF_SCOPE("catalog.shared_queue");
    sim::EventQueue queue;
    queue.set_audit(config.debug_audit);
    std::vector<std::unique_ptr<sim::AvailabilityProcess>> processes;
    processes.reserve(configs.size());
    for (const sim::AvailabilitySimConfig& swarm_config : configs) {
        processes.push_back(
            std::make_unique<sim::AvailabilityProcess>(queue, swarm_config));
    }
    for (auto& process : processes) {
        process->start();
    }
    try {
        queue.run_until(config.horizon);
    } catch (const CheckFailure& failure) {
        trace_check_failure(config.tracer, queue.now(), failure);
        throw;
    }
    std::vector<sim::AvailabilitySimResult> results;
    results.reserve(processes.size());
    for (auto& process : processes) {
        results.push_back(process->finish());
    }
    return results;
}

/// The sharded engine: per-swarm private queues fanned over the pool;
/// per-index result slots make any thread count bit-identical to serial.
std::vector<sim::AvailabilitySimResult> run_sharded(
    const std::vector<sim::AvailabilitySimConfig>& configs,
    const CatalogEngineConfig& config) {
    SWARMAVAIL_PROF_SCOPE("catalog.sharded");
    std::vector<sim::AvailabilitySimResult> results(configs.size());
    sim::Parallel::for_index(configs.size(), config.policy, [&](std::size_t i) {
        results[i] = sim::run_availability_sim(configs[i]);
    });
    return results;
}

}  // namespace

sim::AvailabilitySimConfig swarm_sim_config(const Catalog& catalog,
                                            const SwarmPlan& plan,
                                            std::size_t swarm_index,
                                            const CatalogEngineConfig& config) {
    SWARMAVAIL_REQUIRE(swarm_index < plan.size(),
                       "swarm_sim_config: swarm index out of range");
    sim::AvailabilitySimConfig swarm_config;
    swarm_config.params = swarm_params(catalog, plan[swarm_index], plan.size());
    swarm_config.coverage_threshold = config.coverage_threshold;
    swarm_config.patient_peers = config.patient_peers;
    swarm_config.linger_time = config.linger_time;
    swarm_config.horizon = config.horizon;
    swarm_config.seed = config.seed + swarm_index;
    swarm_config.debug_audit = config.debug_audit;
    // Per-swarm metrics stay unbound: the engine aggregates through the
    // report instead, so shared-queue and sharded runs agree bit for bit
    // (a shared queue would leak co-tenant depth into "avail.queue_depth").
    swarm_config.metrics = nullptr;
    swarm_config.tracer =
        swarm_index == config.traced_swarm ? config.tracer : nullptr;
    return swarm_config;
}

CatalogReport run_catalog_plan(const Catalog& catalog, const SwarmPlan& plan,
                               const CatalogEngineConfig& config) {
    catalog.config.validate();
    SWARMAVAIL_REQUIRE(config.horizon > 0.0, "run_catalog: horizon must be > 0");
    SWARMAVAIL_REQUIRE(
        config.traced_swarm == kNoTracedSwarm || config.traced_swarm < plan.size(),
        "run_catalog: traced_swarm out of range");
    validate_swarm_plan(catalog, plan);

    const auto configs = swarm_configs(catalog, plan, config);
    std::vector<sim::AvailabilitySimResult> results =
        config.execution == ExecutionMode::kSharedQueue
            ? run_shared_queue(configs, config)
            : run_sharded(configs, config);

    std::vector<model::SwarmParams> params;
    params.reserve(configs.size());
    for (const sim::AvailabilitySimConfig& swarm_config : configs) {
        params.push_back(swarm_config.params);
    }
    CatalogReport report = build_report(catalog, plan, params, std::move(results));
    if (config.metrics != nullptr) {
        record_metrics(report, *config.metrics);
    }
    return report;
}

CatalogReport run_catalog(const Catalog& catalog, const BundlingPolicy& policy,
                          const CatalogEngineConfig& config) {
    return run_catalog_plan(catalog, policy.assign(catalog), config);
}

}  // namespace swarmavail::catalog
