#include "catalog/catalog_engine.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/availability_process.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"

namespace swarmavail::catalog {
namespace {

/// Telemetry name under which the engine tracks per-swarm arrival
/// unavailability (the estimate catalog stop rules target).
constexpr const char* kUnavailabilityTrack = "catalog.swarm_unavailability";

std::vector<sim::AvailabilitySimConfig> swarm_configs(const Catalog& catalog,
                                                      const SwarmPlan& plan,
                                                      const CatalogEngineConfig& config) {
    std::vector<sim::AvailabilitySimConfig> configs;
    configs.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        configs.push_back(swarm_sim_config(catalog, plan, i, config));
    }
    return configs;
}

/// Announces a catalog run to an attached session: total swarm count and
/// the simulated seconds the run intends to execute.
void publish_run_shape(const CatalogEngineConfig& config, std::size_t swarms) {
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
    if (config.telemetry != nullptr) {
        telemetry::RunCounters& counters = config.telemetry->counters();
        counters.swarms_total.fetch_add(swarms, std::memory_order_relaxed);
        telemetry::atomic_add(counters.sim_time_target,
                              config.horizon * static_cast<double>(swarms));
    }
#else
    (void)config;
    (void)swarms;
#endif
}

/// The multiplexed engine: every swarm's process on one queue, one thread.
/// With telemetry attached the horizon is walked in slices — run_until(t1);
/// run_until(t2) dispatches exactly the events run_until(t2) would, so the
/// sample path is untouched — publishing queue depth and dispatch/sim-time
/// deltas between slices.
std::vector<sim::AvailabilitySimResult> run_shared_queue(
    const std::vector<sim::AvailabilitySimConfig>& configs,
    const CatalogEngineConfig& config) {
    SWARMAVAIL_PROF_SCOPE("catalog.shared_queue");
    sim::EventQueue queue;
    queue.set_audit(config.debug_audit);
    std::vector<std::unique_ptr<sim::AvailabilityProcess>> processes;
    processes.reserve(configs.size());
    for (const sim::AvailabilitySimConfig& swarm_config : configs) {
        processes.push_back(
            std::make_unique<sim::AvailabilityProcess>(queue, swarm_config));
    }
    for (auto& process : processes) {
        process->start();
    }
    try {
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
        if (config.telemetry != nullptr) {
            telemetry::RunCounters& counters = config.telemetry->counters();
            const std::size_t swarms = configs.size();
            constexpr int kSlices = 64;
            std::uint64_t prev_dispatched = 0;
            double prev_now = queue.now();
            for (int slice = 1; slice <= kSlices; ++slice) {
                queue.run_until(slice == kSlices ? config.horizon
                                                 : config.horizon *
                                                       static_cast<double>(slice) /
                                                       static_cast<double>(kSlices));
                counters.events_dispatched.fetch_add(
                    queue.dispatched() - prev_dispatched, std::memory_order_relaxed);
                prev_dispatched = queue.dispatched();
                telemetry::atomic_add(counters.sim_time_advanced,
                                      (queue.now() - prev_now) *
                                          static_cast<double>(swarms));
                prev_now = queue.now();
                counters.queue_depth.store(static_cast<double>(queue.size()),
                                           std::memory_order_relaxed);
            }
        } else {
            queue.run_until(config.horizon);
        }
#else
        queue.run_until(config.horizon);
#endif
    } catch (const CheckFailure& failure) {
        trace_check_failure(config.tracer, queue.now(), failure);
        throw;
    }
    std::vector<sim::AvailabilitySimResult> results;
    results.reserve(processes.size());
    for (auto& process : processes) {
        results.push_back(process->finish());
        SWARMAVAIL_TELEMETRY(config.telemetry,
                             counters().swarms_completed.fetch_add(
                                 1, std::memory_order_relaxed));
        SWARMAVAIL_TELEMETRY(config.telemetry,
                             tracker().observe(kUnavailabilityTrack,
                                               results.back().arrival_unavailability));
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        SWARMAVAIL_TELEMETRY(config.telemetry,
                             counters().fingerprint_xor.fetch_xor(
                                 results.back().fingerprint,
                                 std::memory_order_relaxed));
#endif
    }
    return results;
}

/// A sharded run's output: per-swarm results plus which swarms actually
/// ran (all of them, unless a stop rule fired).
struct ShardedRun {
    std::vector<sim::AvailabilitySimResult> results;
    std::vector<char> completed;
    bool stopped_early = false;
};

/// The sharded engine: per-swarm private queues fanned over the pool;
/// per-index result slots make any thread count bit-identical to serial.
/// The per-swarm simulation inlines run_availability_sim (same statements,
/// same validation and failure routing) so the engine can read the private
/// queue's dispatch count after each swarm finishes.
ShardedRun run_sharded(const std::vector<sim::AvailabilitySimConfig>& configs,
                       const CatalogEngineConfig& config) {
    SWARMAVAIL_PROF_SCOPE("catalog.sharded");
    ShardedRun run;
    run.results.resize(configs.size());
    run.completed.assign(configs.size(), 0);

    const bool stoppable =
        config.stop_rule.has_value() && config.stop_rule->ci95_target > 0.0;
    std::atomic<bool> stop{false};
    std::mutex observed_mutex;
    StreamingStats observed;  // completion-order; drives the stop decision only

    telemetry::RunCounters* counters = nullptr;
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
    if (config.telemetry != nullptr) {
        counters = &config.telemetry->counters();
    }
#endif
    sim::Parallel::for_index(
        configs.size(), config.policy,
        [&](std::size_t i) {
            if (stoppable && stop.load(std::memory_order_acquire)) {
                return;
            }
            sim::EventQueue queue;
            queue.set_audit(configs[i].debug_audit);
            sim::AvailabilityProcess process{queue, configs[i]};
            process.start();
            try {
                queue.run_until(configs[i].horizon);
            } catch (const CheckFailure& failure) {
                trace_check_failure(configs[i].tracer, queue.now(), failure);
                throw;
            }
            run.results[i] = process.finish();
            run.completed[i] = 1;
            SWARMAVAIL_TELEMETRY(config.telemetry,
                                 counters().swarms_completed.fetch_add(
                                     1, std::memory_order_relaxed));
            SWARMAVAIL_TELEMETRY(config.telemetry,
                                 counters().events_dispatched.fetch_add(
                                     queue.dispatched(), std::memory_order_relaxed));
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
            if (config.telemetry != nullptr) {
                telemetry::atomic_add(config.telemetry->counters().sim_time_advanced,
                                      configs[i].horizon);
            }
#endif
            const double unavailability = run.results[i].arrival_unavailability;
            SWARMAVAIL_TELEMETRY(config.telemetry,
                                 tracker().observe(kUnavailabilityTrack,
                                                   unavailability));
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
            SWARMAVAIL_TELEMETRY(config.telemetry,
                                 counters().fingerprint_xor.fetch_xor(
                                     run.results[i].fingerprint,
                                     std::memory_order_relaxed));
#endif
            if (stoppable) {
                const std::lock_guard<std::mutex> lock(observed_mutex);
                observed.add(unavailability);
                if (config.stop_rule->satisfied(observed)) {
                    stop.store(true, std::memory_order_release);
                }
            }
        },
        counters);
    for (char completed : run.completed) {
        if (completed == 0) {
            run.stopped_early = true;
            break;
        }
    }
    return run;
}

}  // namespace

sim::AvailabilitySimConfig swarm_sim_config(const Catalog& catalog,
                                            const SwarmPlan& plan,
                                            std::size_t swarm_index,
                                            const CatalogEngineConfig& config) {
    SWARMAVAIL_REQUIRE(swarm_index < plan.size(),
                       "swarm_sim_config: swarm index out of range");
    sim::AvailabilitySimConfig swarm_config;
    swarm_config.params = swarm_params(catalog, plan[swarm_index], plan.size());
    swarm_config.coverage_threshold = config.coverage_threshold;
    swarm_config.patient_peers = config.patient_peers;
    swarm_config.linger_time = config.linger_time;
    swarm_config.horizon = config.horizon;
    swarm_config.seed = config.seed + swarm_index;
    swarm_config.debug_audit = config.debug_audit;
    // Per-swarm metrics stay unbound: the engine aggregates through the
    // report instead, so shared-queue and sharded runs agree bit for bit
    // (a shared queue would leak co-tenant depth into "avail.queue_depth").
    swarm_config.metrics = nullptr;
    swarm_config.tracer =
        swarm_index == config.traced_swarm ? config.tracer : nullptr;
    swarm_config.fingerprint = config.fingerprint;
    return swarm_config;
}

CatalogReport run_catalog_plan(const Catalog& catalog, const SwarmPlan& plan,
                               const CatalogEngineConfig& config) {
    catalog.config.validate();
    SWARMAVAIL_REQUIRE(config.horizon > 0.0, "run_catalog: horizon must be > 0");
    SWARMAVAIL_REQUIRE(
        config.traced_swarm == kNoTracedSwarm || config.traced_swarm < plan.size(),
        "run_catalog: traced_swarm out of range");
    SWARMAVAIL_REQUIRE(
        !config.stop_rule.has_value() || config.execution == ExecutionMode::kSharded,
        "run_catalog: stop_rule requires kSharded execution");
    validate_swarm_plan(catalog, plan);
    publish_run_shape(config, plan.size());

    const auto configs = swarm_configs(catalog, plan, config);
    std::vector<model::SwarmParams> params;
    params.reserve(configs.size());
    for (const sim::AvailabilitySimConfig& swarm_config : configs) {
        params.push_back(swarm_config.params);
    }

    CatalogReport report;
    if (config.execution == ExecutionMode::kSharedQueue) {
        report = build_report(catalog, plan, params,
                              run_shared_queue(configs, config));
    } else {
        ShardedRun run = run_sharded(configs, config);
        report = run.stopped_early
                     ? build_partial_report(catalog, plan, params,
                                            std::move(run.results), run.completed)
                     : build_report(catalog, plan, params, std::move(run.results));
    }
    if (config.metrics != nullptr) {
        record_metrics(report, *config.metrics);
    }
    return report;
}

CatalogReport run_catalog(const Catalog& catalog, const BundlingPolicy& policy,
                          const CatalogEngineConfig& config) {
    return run_catalog_plan(catalog, policy.assign(catalog), config);
}

}  // namespace swarmavail::catalog
