// Bundling policies: pluggable strategies mapping a catalog's files onto
// swarms (torrents). A policy produces a SwarmPlan — a partition of file
// ids — which the CatalogEngine turns into per-swarm simulation parameters
// (demands and sizes aggregate; publisher resources follow the catalog's
// PublisherAssignment).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.hpp"
#include "model/params.hpp"

namespace swarmavail::catalog {

/// File ids published together as one swarm (one torrent).
using SwarmFiles = std::vector<std::size_t>;
/// A full assignment: every catalog file in exactly one swarm.
using SwarmPlan = std::vector<SwarmFiles>;

/// Strategy interface. Implementations must be deterministic: the same
/// catalog yields the same plan on every call (the engine's bit-identical
/// replay guarantees depend on it).
class BundlingPolicy {
 public:
    virtual ~BundlingPolicy() = default;

    /// Stable identifier ("none", "fixedk", "greedy") used in reports and
    /// CLI flags.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Partitions the catalog's files into swarms. Every file id must
    /// appear in exactly one swarm and no swarm may be empty
    /// (validate_swarm_plan enforces this engine-side).
    [[nodiscard]] virtual SwarmPlan assign(const Catalog& catalog) const = 0;
};

/// Every file its own swarm: the unbundled baseline (K = 1).
class NoBundling final : public BundlingPolicy {
 public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] SwarmPlan assign(const Catalog& catalog) const override;
};

/// Uniform K-bundles in popularity-rank order: files {0..K-1}, {K..2K-1},
/// ... — the paper's homogeneous-bundle setup. When N is not a multiple of
/// K the final swarm holds the remaining N mod K files.
class FixedK final : public BundlingPolicy {
 public:
    /// Requires k >= 1.
    explicit FixedK(std::size_t k);

    [[nodiscard]] std::size_t k() const noexcept { return k_; }
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] SwarmPlan assign(const Catalog& catalog) const override;

 private:
    std::size_t k_;
};

/// Pack cold files with hot ones: each K-bundle takes the most popular
/// remaining file plus the K-1 least popular remaining ones (two-pointer
/// over the popularity ranking, so the plan is deterministic and ties need
/// no tiebreak). Hot files' demand then underwrites the availability of the
/// cold tail — the Section 3.3.1 skewed-demand argument turned into a
/// packing rule. The final bundle may hold fewer than K files.
class GreedyPopularity final : public BundlingPolicy {
 public:
    /// Requires k >= 1.
    explicit GreedyPopularity(std::size_t k);

    [[nodiscard]] std::size_t k() const noexcept { return k_; }
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] SwarmPlan assign(const Catalog& catalog) const override;

 private:
    std::size_t k_;
};

/// Throws std::invalid_argument unless `plan` is a partition of the
/// catalog's files: every id in [0, N) exactly once, no empty swarms.
void validate_swarm_plan(const Catalog& catalog, const SwarmPlan& plan);

/// Simulation parameters of one swarm in a plan: demand and size aggregate
/// over the member files; the publisher process follows the catalog's
/// PublisherAssignment (`num_swarms` sizes the partitioned budget).
/// Requires a non-empty member list with in-range ids.
[[nodiscard]] model::SwarmParams swarm_params(const Catalog& catalog,
                                              const SwarmFiles& files,
                                              std::size_t num_swarms);

/// Factory for CLI-style policy selection: "none" (k ignored), "fixedk",
/// or "greedy". Throws std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<BundlingPolicy> make_policy(std::string_view name,
                                                          std::size_t k);

}  // namespace swarmavail::catalog
