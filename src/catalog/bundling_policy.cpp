#include "catalog/bundling_policy.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace swarmavail::catalog {

std::string NoBundling::name() const { return "none"; }

SwarmPlan NoBundling::assign(const Catalog& catalog) const {
    SwarmPlan plan;
    plan.reserve(catalog.files.size());
    for (const CatalogFile& file : catalog.files) {
        plan.push_back({file.id});
    }
    return plan;
}

FixedK::FixedK(std::size_t k) : k_(k) {
    SWARMAVAIL_REQUIRE(k >= 1, "FixedK: bundle size must be >= 1");
}

std::string FixedK::name() const { return "fixedk"; }

SwarmPlan FixedK::assign(const Catalog& catalog) const {
    const std::size_t n = catalog.files.size();
    SwarmPlan plan;
    plan.reserve((n + k_ - 1) / k_);
    for (std::size_t begin = 0; begin < n; begin += k_) {
        SwarmFiles swarm;
        const std::size_t end = std::min(begin + k_, n);
        swarm.reserve(end - begin);
        for (std::size_t id = begin; id < end; ++id) {
            swarm.push_back(id);
        }
        plan.push_back(std::move(swarm));
    }
    return plan;
}

GreedyPopularity::GreedyPopularity(std::size_t k) : k_(k) {
    SWARMAVAIL_REQUIRE(k >= 1, "GreedyPopularity: bundle size must be >= 1");
}

std::string GreedyPopularity::name() const { return "greedy"; }

SwarmPlan GreedyPopularity::assign(const Catalog& catalog) const {
    // File ids are popularity ranks already, so a two-pointer sweep pairs
    // the hottest unassigned file with the coldest tail without sorting.
    const std::size_t n = catalog.files.size();
    SwarmPlan plan;
    plan.reserve((n + k_ - 1) / k_);
    std::size_t hot = 0;
    std::size_t cold = n;  // one past the coldest unassigned file
    while (hot < cold) {
        SwarmFiles swarm;
        swarm.push_back(hot++);
        while (swarm.size() < k_ && hot < cold) {
            swarm.push_back(--cold);
        }
        plan.push_back(std::move(swarm));
    }
    return plan;
}

void validate_swarm_plan(const Catalog& catalog, const SwarmPlan& plan) {
    const std::size_t n = catalog.files.size();
    std::vector<bool> seen(n, false);
    std::size_t assigned = 0;
    for (const SwarmFiles& swarm : plan) {
        SWARMAVAIL_REQUIRE(!swarm.empty(),
                           "validate_swarm_plan: plan contains an empty swarm");
        for (std::size_t id : swarm) {
            SWARMAVAIL_REQUIRE(id < n, "validate_swarm_plan: file id out of range");
            SWARMAVAIL_REQUIRE(!seen[id],
                               "validate_swarm_plan: file assigned to two swarms");
            seen[id] = true;
            ++assigned;
        }
    }
    SWARMAVAIL_REQUIRE(assigned == n,
                       "validate_swarm_plan: plan does not cover every file");
}

model::SwarmParams swarm_params(const Catalog& catalog, const SwarmFiles& files,
                                std::size_t num_swarms) {
    SWARMAVAIL_REQUIRE(!files.empty(), "swarm_params: swarm must hold >= 1 file");
    SWARMAVAIL_REQUIRE(num_swarms >= 1, "swarm_params: num_swarms must be >= 1");
    model::SwarmParams params;
    params.download_rate = catalog.config.download_rate;
    for (std::size_t id : files) {
        SWARMAVAIL_REQUIRE(id < catalog.files.size(),
                           "swarm_params: file id out of range");
        params.peer_arrival_rate += catalog.files[id].demand_rate;
        params.content_size += catalog.files[id].size;
    }
    params.publisher_residence = catalog.config.publisher_residence;
    params.publisher_arrival_rate =
        catalog.config.publishers == PublisherAssignment::kDedicated
            ? catalog.config.publisher_arrival_rate
            : catalog.config.publisher_arrival_rate / static_cast<double>(num_swarms);
    return params;
}

std::unique_ptr<BundlingPolicy> make_policy(std::string_view name, std::size_t k) {
    if (name == "none") {
        return std::make_unique<NoBundling>();
    }
    if (name == "fixedk") {
        return std::make_unique<FixedK>(k);
    }
    if (name == "greedy") {
        return std::make_unique<GreedyPopularity>(k);
    }
    SWARMAVAIL_REQUIRE(false, "make_policy: unknown policy \"" + std::string(name) +
                                  "\" (expected none, fixedk, or greedy)");
    return nullptr;  // unreachable
}

}  // namespace swarmavail::catalog
