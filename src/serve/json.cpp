#include "serve/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "util/table.hpp"

namespace swarmavail::serve {
namespace {

using std::string_view;

bool is_json_ws(char c) noexcept {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

std::string offset_message(std::string_view what, std::size_t offset) {
    return std::string(what) + " at byte " + std::to_string(offset);
}

/// Recursive-descent parser over one string_view; all bounds explicit.
class Parser {
 public:
    Parser(string_view text, const JsonLimits& limits) : text_(text), limits_(limits) {}

    bool parse_document(JsonValue& out, std::string* error) {
        skip_ws();
        if (!parse_value(out, 0)) {
            if (error != nullptr) {
                *error = error_;
            }
            return false;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            if (error != nullptr) {
                *error = offset_message("trailing data after JSON document", pos_);
            }
            return false;
        }
        return true;
    }

 private:
    void skip_ws() {
        while (pos_ < text_.size() && is_json_ws(text_[pos_])) {
            ++pos_;
        }
    }

    bool fail(std::string_view what, std::size_t offset) {
        if (error_.empty()) {
            error_ = offset_message(what, offset);
        }
        return false;
    }

    bool count_value() {
        if (++values_ > limits_.max_values) {
            return fail("JSON document exceeds the value-count limit", pos_);
        }
        return true;
    }

    bool parse_value(JsonValue& out, std::size_t depth) {
        if (!count_value()) {
            return false;
        }
        if (pos_ >= text_.size()) {
            return fail("unexpected end of JSON document", pos_);
        }
        const char c = text_[pos_];
        switch (c) {
            case '{':
                return parse_object(out, depth);
            case '[':
                return parse_array(out, depth);
            case '"': {
                std::string decoded;
                if (!parse_string(decoded)) {
                    return false;
                }
                out = JsonValue::make_string(std::move(decoded));
                return true;
            }
            case 't':
                return parse_literal("true", JsonValue::make_bool(true), out);
            case 'f':
                return parse_literal("false", JsonValue::make_bool(false), out);
            case 'n':
                return parse_literal("null", JsonValue::make_null(), out);
            default:
                if (c == '-' || (c >= '0' && c <= '9')) {
                    return parse_number(out);
                }
                return fail("unexpected character in JSON document", pos_);
        }
    }

    bool parse_literal(string_view word, JsonValue value, JsonValue& out) {
        if (text_.substr(pos_, word.size()) != word) {
            return fail("malformed JSON literal", pos_);
        }
        pos_ += word.size();
        out = std::move(value);
        return true;
    }

    bool parse_object(JsonValue& out, std::size_t depth) {
        if (depth >= limits_.max_depth) {
            return fail("JSON nesting exceeds the depth limit", pos_);
        }
        ++pos_;  // consume '{'
        out = JsonValue::make_object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                return fail("expected string key in JSON object", pos_);
            }
            const std::size_t key_at = pos_;
            std::string key;
            if (!parse_string(key)) {
                return false;
            }
            if (out.find(key) != nullptr) {
                return fail("duplicate key in JSON object", key_at);
            }
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return fail("expected ':' in JSON object", pos_);
            }
            ++pos_;
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1)) {
                return false;
            }
            out.insert(std::move(key), std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) {
                return fail("unterminated JSON object", pos_);
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in JSON object", pos_);
        }
    }

    bool parse_array(JsonValue& out, std::size_t depth) {
        if (depth >= limits_.max_depth) {
            return fail("JSON nesting exceeds the depth limit", pos_);
        }
        ++pos_;  // consume '['
        out = JsonValue::make_array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1)) {
                return false;
            }
            out.push_back(std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) {
                return fail("unterminated JSON array", pos_);
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in JSON array", pos_);
        }
    }

    bool append_utf8(std::uint32_t cp, std::string& out) {
        if (cp <= 0x7F) {
            out.push_back(static_cast<char>(cp));
        } else if (cp <= 0x7FF) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp <= 0xFFFF) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        return true;
    }

    bool parse_hex4(std::uint32_t& out) {
        if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape in JSON string", pos_);
        }
        std::uint32_t value = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            std::uint32_t digit = 0;
            if (c >= '0' && c <= '9') {
                digit = static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                digit = static_cast<std::uint32_t>(c - 'a') + 10U;
            } else if (c >= 'A' && c <= 'F') {
                digit = static_cast<std::uint32_t>(c - 'A') + 10U;
            } else {
                return fail("non-hex digit in \\u escape", pos_ + i);
            }
            value = (value << 4) | digit;
        }
        pos_ += 4;
        out = value;
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos_;  // consume opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size()) {
                return fail("unterminated JSON string", pos_);
            }
            if (out.size() > limits_.max_string_bytes) {
                return fail("JSON string exceeds the length limit", pos_);
            }
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                return fail("raw control byte in JSON string", pos_);
            }
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_;  // consume backslash
            if (pos_ >= text_.size()) {
                return fail("truncated escape in JSON string", pos_);
            }
            const char esc = text_[pos_];
            ++pos_;
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    std::uint32_t cp = 0;
                    if (!parse_hex4(cp)) {
                        return false;
                    }
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: a \uXXXX low surrogate must follow.
                        if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            return fail("unpaired high surrogate in JSON string",
                                        pos_);
                        }
                        pos_ += 2;
                        std::uint32_t low = 0;
                        if (!parse_hex4(low)) {
                            return false;
                        }
                        if (low < 0xDC00 || low > 0xDFFF) {
                            return fail("invalid low surrogate in JSON string",
                                        pos_);
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return fail("unpaired low surrogate in JSON string", pos_);
                    }
                    append_utf8(cp, out);
                    break;
                }
                default:
                    return fail("unknown escape in JSON string", pos_ - 1);
            }
        }
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        std::size_t p = pos_;
        if (p < text_.size() && text_[p] == '-') {
            ++p;
        }
        // Integer part: 0 | [1-9][0-9]* (leading zeros rejected).
        if (p >= text_.size() || text_[p] < '0' || text_[p] > '9') {
            return fail("malformed JSON number", start);
        }
        if (text_[p] == '0') {
            ++p;
            if (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') {
                return fail("leading zero in JSON number", start);
            }
        } else {
            while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') {
                ++p;
            }
        }
        if (p < text_.size() && text_[p] == '.') {
            ++p;
            if (p >= text_.size() || text_[p] < '0' || text_[p] > '9') {
                return fail("malformed fraction in JSON number", start);
            }
            while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') {
                ++p;
            }
        }
        if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
            ++p;
            if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) {
                ++p;
            }
            if (p >= text_.size() || text_[p] < '0' || text_[p] > '9') {
                return fail("malformed exponent in JSON number", start);
            }
            while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') {
                ++p;
            }
        }
        double value = 0.0;
        const auto result =
            std::from_chars(text_.data() + start, text_.data() + p, value);
        if (result.ec != std::errc{} || result.ptr != text_.data() + p ||
            !std::isfinite(value)) {
            return fail("JSON number outside double range", start);
        }
        pos_ = p;
        out = JsonValue::make_number(value);
        return true;
    }

    string_view text_;
    JsonLimits limits_;
    std::size_t pos_ = 0;
    std::size_t values_ = 0;
    std::string error_;
};

}  // namespace

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool value) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
}

JsonValue JsonValue::make_number(double value) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
}

JsonValue JsonValue::make_string(std::string value) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(value);
    return v;
}

JsonValue JsonValue::make_array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
}

JsonValue JsonValue::make_object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
}

const std::vector<JsonMember>& JsonValue::members() const noexcept {
    return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
    for (const JsonMember& member : members_) {
        if (member.key == key) {
            return &member.value;
        }
    }
    return nullptr;
}

void JsonValue::push_back(JsonValue value) { items_.push_back(std::move(value)); }

void JsonValue::insert(std::string key, JsonValue value) {
    members_.push_back(JsonMember{std::move(key), std::move(value)});
}

bool parse_json(std::string_view text, JsonValue& out, std::string* error,
                const JsonLimits& limits) {
    Parser parser(text, limits);
    return parser.parse_document(out, error);
}

bool validate_utf8(std::string_view text) noexcept {
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
        const unsigned char c0 = static_cast<unsigned char>(text[i]);
        if (c0 < 0x80) {
            ++i;
            continue;
        }
        std::size_t extra = 0;
        std::uint32_t cp = 0;
        std::uint32_t min_cp = 0;
        if ((c0 & 0xE0) == 0xC0) {
            extra = 1;
            cp = c0 & 0x1FU;
            min_cp = 0x80;
        } else if ((c0 & 0xF0) == 0xE0) {
            extra = 2;
            cp = c0 & 0x0FU;
            min_cp = 0x800;
        } else if ((c0 & 0xF8) == 0xF0) {
            extra = 3;
            cp = c0 & 0x07U;
            min_cp = 0x10000;
        } else {
            return false;  // stray continuation byte or illegal lead byte
        }
        if (i + extra >= n) {
            return false;  // truncated sequence
        }
        for (std::size_t k = 1; k <= extra; ++k) {
            const unsigned char ck = static_cast<unsigned char>(text[i + k]);
            if ((ck & 0xC0) != 0x80) {
                return false;
            }
            cp = (cp << 6) | (ck & 0x3FU);
        }
        if (cp < min_cp || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
            return false;  // overlong, beyond Unicode, or surrogate
        }
        i += extra + 1;
    }
    return true;
}

void append_json_string(std::string_view text, std::string& out) {
    out.push_back('"');
    for (const char raw : text) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (raw) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    static const char* kHex = "0123456789abcdef";
                    out += "\\u00";
                    out.push_back(kHex[(c >> 4) & 0xF]);
                    out.push_back(kHex[c & 0xF]);
                } else {
                    out.push_back(raw);
                }
        }
    }
    out.push_back('"');
}

void append_json_number(double value, std::string& out) {
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN literals; quote them so the value survives.
        out.push_back('"');
        out += value > 0.0 ? "inf" : (value < 0.0 ? "-inf" : "nan");
        out.push_back('"');
        return;
    }
    out += format_double_exact(value);
}

void write_canonical_json(const JsonValue& value, std::string& out) {
    switch (value.kind()) {
        case JsonValue::Kind::kNull:
            out += "null";
            return;
        case JsonValue::Kind::kBool:
            out += value.as_bool() ? "true" : "false";
            return;
        case JsonValue::Kind::kNumber:
            append_json_number(value.as_number(), out);
            return;
        case JsonValue::Kind::kString:
            append_json_string(value.as_string(), out);
            return;
        case JsonValue::Kind::kArray: {
            out.push_back('[');
            bool first = true;
            for (const JsonValue& item : value.items()) {
                if (!first) {
                    out.push_back(',');
                }
                first = false;
                write_canonical_json(item, out);
            }
            out.push_back(']');
            return;
        }
        case JsonValue::Kind::kObject: {
            std::vector<const JsonMember*> sorted;
            sorted.reserve(value.members().size());
            for (const JsonMember& member : value.members()) {
                sorted.push_back(&member);
            }
            std::sort(sorted.begin(), sorted.end(),
                      [](const JsonMember* a, const JsonMember* b) {
                          return a->key < b->key;
                      });
            out.push_back('{');
            bool first = true;
            for (const JsonMember* member : sorted) {
                if (!first) {
                    out.push_back(',');
                }
                first = false;
                append_json_string(member->key, out);
                out.push_back(':');
                write_canonical_json(member->value, out);
            }
            out.push_back('}');
            return;
        }
    }
}

std::string canonical_json(const JsonValue& value) {
    std::string out;
    write_canonical_json(value, out);
    return out;
}

}  // namespace swarmavail::serve
