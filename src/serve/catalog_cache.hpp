// Single-flight result caches keyed by canonical request serializations.
//
// The daemon's "warm state": every completed answer is cached under its
// canonical key (serve/request.hpp), so byte-equal semantics <=> cache
// hit. Concurrency is single-flight — when N workers ask for the same
// missing key at once, exactly one computes while the rest block on the
// entry; a simulation refinement is therefore never duplicated, and every
// waiter receives the one deterministic outcome. Failed computations are
// NOT cached (the entry is erased and the error rethrown to all waiters),
// so a transient failure cannot poison a key.
//
// Capacity is bounded with FIFO eviction over *completed* entries —
// in-flight computations are never evicted. FIFO (not LRU) keeps hits
// O(1) with no per-hit bookkeeping writes beyond a counter.
//
// CatalogCache instantiates the template for simulation refinements
// (RefineOutcome: the CatalogReport aggregates plus the determinism
// fingerprint); the router reuses the same template with std::string
// values to memoize model-path response fragments.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace swarmavail::serve {

/// Aggregates of one catalog refinement, as cached and serialized into
/// REFINE responses (a compact projection of catalog::CatalogReport).
struct RefineOutcome {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t lost = 0;
    std::uint64_t stranded = 0;
    double demand_weighted_unavailability = 0.0;
    double mean_download_time = 0.0;
    double demand_weighted_unavailable_time = 0.0;
    double mean_publisher_online_fraction = 0.0;
    double expected_publisher_load = 0.0;
    std::uint64_t publisher_up_transitions = 0;
    /// Catalog-wide determinism fingerprint (CatalogReport::fingerprint);
    /// 0 only when fingerprinting is compiled out.
    std::uint64_t fingerprint = 0;
    std::size_t swarms = 0;
    std::size_t swarms_planned = 0;
    bool stopped_early = false;
};

/// How one get_or_compute call was answered. kCoalesced is the
/// single-flight win: the entry existed but was still computing, so this
/// caller blocked on the owner's result instead of duplicating the work
/// (it still counts as a hit in the hit/miss totals).
enum class CacheLookup : std::uint8_t {
    kHit = 0,
    kMiss = 1,
    kCoalesced = 2,
};

/// Bounded single-flight cache; Value must be copyable.
template <typename Value>
class SingleFlightCache {
 public:
    explicit SingleFlightCache(std::size_t max_entries = 256)
        : max_entries_(max_entries == 0 ? 1 : max_entries) {}

    /// Returns the cached value for `key`, computing it via `compute` on a
    /// miss. Concurrent callers with the same key share one computation.
    /// If `compute` throws, the error is propagated to every waiter and
    /// the key is forgotten. `lookup` (nullable) reports how this call
    /// was answered.
    Value get_or_compute(const std::string& key,
                         const std::function<Value()>& compute,
                         CacheLookup* lookup = nullptr) {
        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it == entries_.end()) {
                entry = std::make_shared<Entry>();
                entries_.emplace(key, entry);
                owner = true;
                misses_ += 1;
            } else {
                entry = it->second;
                hits_ += 1;
            }
        }
        if (lookup != nullptr) {
            *lookup = owner ? CacheLookup::kMiss : CacheLookup::kHit;
        }
        if (owner) {
            try {
                Value value = compute();
                {
                    std::unique_lock<std::mutex> entry_lock(entry->mutex);
                    entry->value = value;
                    entry->ready = true;
                }
                entry->cv.notify_all();
                finish_entry(key);
                return value;
            } catch (const std::exception& e) {
                {
                    std::unique_lock<std::mutex> entry_lock(entry->mutex);
                    entry->failed = true;
                    entry->error = e.what();
                    entry->ready = true;
                }
                entry->cv.notify_all();
                forget_entry(key);
                throw;
            }
        }
        std::unique_lock<std::mutex> entry_lock(entry->mutex);
        if (!entry->ready) {
            // Joining an in-flight computation: the single-flight case.
            // (Atomic, not mutex_-guarded: taking mutex_ here would invert
            // the mutex_ -> entry->mutex lock order of the lookup above.)
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            if (lookup != nullptr) {
                *lookup = CacheLookup::kCoalesced;
            }
        }
        entry->cv.wait(entry_lock, [&entry] { return entry->ready; });
        if (entry->failed) {
            throw std::runtime_error(entry->error);
        }
        return entry->value;
    }

    [[nodiscard]] std::uint64_t hits() const {
        std::unique_lock<std::mutex> lock(mutex_);
        return hits_;
    }
    [[nodiscard]] std::uint64_t misses() const {
        std::unique_lock<std::mutex> lock(mutex_);
        return misses_;
    }
    /// Completed entries evicted by the FIFO capacity bound.
    [[nodiscard]] std::uint64_t evictions() const {
        std::unique_lock<std::mutex> lock(mutex_);
        return evictions_;
    }
    /// Hits that joined an in-flight computation instead of reading a
    /// completed entry (a subset of hits()).
    [[nodiscard]] std::uint64_t coalesced() const noexcept {
        return coalesced_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t size() const {
        std::unique_lock<std::mutex> lock(mutex_);
        return entries_.size();
    }
    [[nodiscard]] std::size_t max_entries() const noexcept { return max_entries_; }

 private:
    struct Entry {
        std::mutex mutex;
        std::condition_variable cv;
        bool ready = false;
        bool failed = false;
        std::string error;
        Value value{};
    };

    /// Records a completed entry in FIFO order and evicts the oldest
    /// completed entries beyond capacity.
    void finish_entry(const std::string& key) {
        std::unique_lock<std::mutex> lock(mutex_);
        completed_.push_back(key);
        while (completed_.size() > max_entries_) {
            entries_.erase(completed_.front());
            completed_.pop_front();
            evictions_ += 1;
        }
    }

    /// Drops a failed computation so later requests retry it.
    void forget_entry(const std::string& key) {
        std::unique_lock<std::mutex> lock(mutex_);
        entries_.erase(key);
    }

    std::size_t max_entries_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
    std::deque<std::string> completed_;  ///< FIFO eviction order
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::atomic<std::uint64_t> coalesced_{0};
};

/// The refinement cache: canonical REFINE key -> deterministic outcome.
using CatalogCache = SingleFlightCache<RefineOutcome>;

}  // namespace swarmavail::serve
