// PlanningServer: the long-running availability-planning daemon.
//
// A loopback TCP service speaking the length-prefixed frame protocol
// (serve/protocol.hpp) with one JSON request per frame. Threading:
//
//   - one io thread owns the listening socket and every connection's
//     *read* side (poll + FrameDecoder), classifies each decoded frame's
//     lane, and pushes it into the bounded two-lane queue (serve/lanes.hpp)
//     — a full lane answers "overloaded" immediately, which is what
//     --max-inflight means;
//   - a worker pool drains the queue through the RequestRouter. With one
//     worker it prefers the model lane; with T >= 2, max(1, T/2) workers
//     prefer the sim lane (REFINE) and the rest are model-only, so a
//     model-path query is never stuck behind a running simulation.
//
// Responses are written by the worker that produced them, serialized per
// connection by a write mutex; when a client pipelines requests across
// lanes the responses may interleave out of order, which is why they echo
// the request id. Closing a connection never races a write: a worker's
// task keeps the connection alive until its response is out.
//
// Shutdown is graceful by design: request_stop() is async-signal-safe
// (SIGTERM handlers call exactly it), stop() then stops accepting,
// finishes every queued request, flushes the telemetry exporters
// (--prom-out), and closes the sockets.
//
// Observability: per-verb latency and per-stage histograms live in
// per-worker {mutex, MetricsRegistry} slots — single-owner registries,
// merged in index order when the STATS verb renders them — plus
// queue-depth gauges and accept/overload counters, all under
// swarmavail_server_* in the Prometheus exposition the router's STATS
// verb returns. Request-lifecycle spans (serve/span.hpp) attribute each
// request's latency to its stages: the io thread stamps decode and
// enqueue times into the task, the worker measures queue wait, routes
// with a RequestSpans scratch, brackets the socket write, then feeds the
// stage histograms and pushes the request's records into its span ring.
// Requests slower than --slow-ms get their whole breakdown written to
// the slow-query log the moment they finish. All of it is erased by the
// trace-off preset (SWARMAVAIL_SPANS_DISABLED) and off by default at
// runtime; responses are byte-identical either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/lanes.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/span.hpp"
#include "util/metrics.hpp"

namespace swarmavail::telemetry {
class PrometheusTextExporter;
class TelemetrySession;
}  // namespace swarmavail::telemetry

namespace swarmavail::serve {

struct ServerConfig {
    /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port
    /// (read the answer back via port()).
    std::uint16_t port = 0;
    /// Worker threads draining the request queue (>= 1; see lane rules).
    std::size_t threads = 2;
    /// Bound on queued requests per lane; beyond it clients get the
    /// structured "overloaded" error instead of unbounded latency.
    std::size_t max_inflight = 256;
    RouterConfig router{};
    ProtocolLimits protocol{};
    /// Prometheus text-exposition file kept fresh by a TelemetrySession
    /// sampler and flushed on shutdown; empty disables it.
    std::string prom_out;
    /// Sampling period of the --prom-out session, seconds.
    double prom_interval_s = 0.5;

    // --- request-lifecycle spans (serve/span.hpp). All of these are
    // ignored when SWARMAVAIL_SPANS_DISABLED is defined (trace-off). ---
    /// Master runtime gate; any of the sinks/paths below implies it.
    bool spans = false;
    /// Records retained per span ring (io thread + one per worker).
    std::size_t span_ring_capacity = 4096;
    /// Slow-query threshold, seconds end-to-end (decode start -> write
    /// end); requests at or above it have their full span breakdown
    /// written to the slow-query sink as they finish. 0 disables.
    double slow_query_seconds = 0.0;
    /// JSONL file receiving every ring's spans at stop(); empty = none.
    std::string span_out;
    /// JSONL file receiving slow-query breakdowns; empty = none.
    std::string slow_query_log;
    /// In-process sinks for tests; when set they take precedence over the
    /// span_out / slow_query_log files. Must outlive the server.
    SpanSink* span_sink = nullptr;
    SpanSink* slow_query_sink = nullptr;
};

class PlanningServer {
 public:
    explicit PlanningServer(ServerConfig config);
    ~PlanningServer();

    PlanningServer(const PlanningServer&) = delete;
    PlanningServer& operator=(const PlanningServer&) = delete;

    /// Binds, listens, and spawns the io thread and worker pool. Throws
    /// std::runtime_error when the socket setup fails.
    void start();

    /// Graceful drain: stop accepting, finish queued requests, flush the
    /// exporters, close every socket. Idempotent; also run by ~PlanningServer.
    void stop();

    /// Async-signal-safe stop request (atomic flag + self-pipe writes);
    /// the SIGTERM handler calls exactly this. Someone must then run
    /// stop() — typically the thread blocked in wait_until_stop_requested.
    void request_stop() noexcept;

    /// Blocks until request_stop() (from any thread or a signal handler).
    void wait_until_stop_requested();

    [[nodiscard]] bool running() const noexcept { return started_; }
    /// The bound port (the kernel's pick when config.port was 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] RequestRouter& router() noexcept { return router_; }
    [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

    [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
        return accepted_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t overloaded() const noexcept {
        return overloaded_.load(std::memory_order_relaxed);
    }

#if !defined(SWARMAVAIL_SPANS_DISABLED)
    /// The span hub, when spans are active (null otherwise). Tests drain
    /// it through a MemorySpanSink; quiesce the workers first.
    [[nodiscard]] SpanHub* span_hub() noexcept { return span_hub_.get(); }
#endif

 private:
    struct Connection;
    struct Task {
        std::shared_ptr<Connection> connection;
        std::string payload;
        // Span bookkeeping the io thread stamps at decode time (all zero
        // when spans are off; plain data, so it needs no guards).
        std::uint64_t request_index = 0;
        std::uint64_t connection_id = 0;
        double decode_t0 = 0.0;  ///< hub-epoch seconds, decode begin
        double decode_t1 = 0.0;  ///< hub-epoch seconds, decode end
        double enqueue_t = 0.0;  ///< hub-epoch seconds, lane push
    };
    /// Single-owner per-worker metrics; STATS merges the registries in
    /// slot-index order under the mutexes.
    struct WorkerSlot {
        std::mutex mutex;
        MetricsRegistry registry;
        HistogramMetric* latency[kVerbCount] = {nullptr, nullptr, nullptr,
                                                nullptr, nullptr};
        /// Per-stage latency histograms (indexed by SpanStage; kAccept
        /// unused). Registered unconditionally so the STATS exposition
        /// keeps one shape whether spans run or not; fed only by spans.
        HistogramMetric* stage[kSpanStageCount] = {};
    };

    void io_loop();
    void worker_loop(std::size_t slot_index, PopMode mode);
    void handle_frames(const std::shared_ptr<Connection>& connection);
    void send_frame(Connection& connection, std::string_view payload);
    void append_server_stats(std::string& out);
    void publish_telemetry();
#if !defined(SWARMAVAIL_SPANS_DISABLED)
    /// Feeds the stage histograms and pushes the finished request's span
    /// records into the worker's ring (slow-query funnel included).
    void finish_request_spans(WorkerSlot& slot, std::size_t slot_index,
                              const Task& task, Verb verb,
                              const RequestSpans& spans);
#endif

    ServerConfig config_;
    RequestRouter router_;
    LaneQueues<Task> queues_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};  ///< io-thread wakeup (read end polled)
    int stop_pipe_[2] = {-1, -1};  ///< wait_until_stop_requested wakeup
    std::uint16_t port_ = 0;

    std::thread io_thread_;
    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::shared_ptr<Connection>> connections_;  ///< io thread only

    std::unique_ptr<telemetry::PrometheusTextExporter> prom_exporter_;
    std::unique_ptr<telemetry::TelemetrySession> telemetry_;

#if !defined(SWARMAVAIL_SPANS_DISABLED)
    std::unique_ptr<SpanHub> span_hub_;  ///< null when spans are inactive
    // File-backed sinks owned by the server (span_out / slow_query_log);
    // streams outlive their sinks (declaration order = reverse destruction).
    std::unique_ptr<std::ofstream> span_out_stream_;
    std::unique_ptr<std::ofstream> slow_log_stream_;
    std::unique_ptr<JsonlSpanSink> span_out_sink_;
    std::unique_ptr<JsonlSpanSink> slow_log_sink_;
#endif

    std::atomic<bool> stop_requested_{false};
    bool started_ = false;
    bool stopped_ = false;
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> overloaded_{0};
    std::atomic<std::uint64_t> bad_frames_{0};
};

}  // namespace swarmavail::serve
