// PlanningServer: the long-running availability-planning daemon.
//
// A loopback TCP service speaking the length-prefixed frame protocol
// (serve/protocol.hpp) with one JSON request per frame. Threading:
//
//   - one io thread owns the listening socket and every connection's
//     *read* side (poll + FrameDecoder), classifies each decoded frame's
//     lane, and pushes it into the bounded two-lane queue (serve/lanes.hpp)
//     — a full lane answers "overloaded" immediately, which is what
//     --max-inflight means;
//   - a worker pool drains the queue through the RequestRouter. With one
//     worker it prefers the model lane; with T >= 2, max(1, T/2) workers
//     prefer the sim lane (REFINE) and the rest are model-only, so a
//     model-path query is never stuck behind a running simulation.
//
// Responses are written by the worker that produced them, serialized per
// connection by a write mutex; when a client pipelines requests across
// lanes the responses may interleave out of order, which is why they echo
// the request id. Closing a connection never races a write: a worker's
// task keeps the connection alive until its response is out.
//
// Shutdown is graceful by design: request_stop() is async-signal-safe
// (SIGTERM handlers call exactly it), stop() then stops accepting,
// finishes every queued request, flushes the telemetry exporters
// (--prom-out), and closes the sockets.
//
// Observability: per-verb latency histograms live in per-worker
// {mutex, MetricsRegistry} slots — single-owner registries, merged in
// index order when the STATS verb renders them — plus queue-depth gauges
// and accept/overload counters, all under swarmavail_server_* in the
// Prometheus exposition the router's STATS verb returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/lanes.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "util/metrics.hpp"

namespace swarmavail::telemetry {
class PrometheusTextExporter;
class TelemetrySession;
}  // namespace swarmavail::telemetry

namespace swarmavail::serve {

struct ServerConfig {
    /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port
    /// (read the answer back via port()).
    std::uint16_t port = 0;
    /// Worker threads draining the request queue (>= 1; see lane rules).
    std::size_t threads = 2;
    /// Bound on queued requests per lane; beyond it clients get the
    /// structured "overloaded" error instead of unbounded latency.
    std::size_t max_inflight = 256;
    RouterConfig router{};
    ProtocolLimits protocol{};
    /// Prometheus text-exposition file kept fresh by a TelemetrySession
    /// sampler and flushed on shutdown; empty disables it.
    std::string prom_out;
    /// Sampling period of the --prom-out session, seconds.
    double prom_interval_s = 0.5;
};

class PlanningServer {
 public:
    explicit PlanningServer(ServerConfig config);
    ~PlanningServer();

    PlanningServer(const PlanningServer&) = delete;
    PlanningServer& operator=(const PlanningServer&) = delete;

    /// Binds, listens, and spawns the io thread and worker pool. Throws
    /// std::runtime_error when the socket setup fails.
    void start();

    /// Graceful drain: stop accepting, finish queued requests, flush the
    /// exporters, close every socket. Idempotent; also run by ~PlanningServer.
    void stop();

    /// Async-signal-safe stop request (atomic flag + self-pipe writes);
    /// the SIGTERM handler calls exactly this. Someone must then run
    /// stop() — typically the thread blocked in wait_until_stop_requested.
    void request_stop() noexcept;

    /// Blocks until request_stop() (from any thread or a signal handler).
    void wait_until_stop_requested();

    [[nodiscard]] bool running() const noexcept { return started_; }
    /// The bound port (the kernel's pick when config.port was 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] RequestRouter& router() noexcept { return router_; }
    [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

    [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
        return accepted_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t overloaded() const noexcept {
        return overloaded_.load(std::memory_order_relaxed);
    }

 private:
    struct Connection;
    struct Task {
        std::shared_ptr<Connection> connection;
        std::string payload;
    };
    /// Single-owner per-worker metrics; STATS merges the registries in
    /// slot-index order under the mutexes.
    struct WorkerSlot {
        std::mutex mutex;
        MetricsRegistry registry;
        HistogramMetric* latency[kVerbCount] = {nullptr, nullptr, nullptr,
                                                nullptr, nullptr};
    };

    void io_loop();
    void worker_loop(std::size_t slot_index, PopMode mode);
    void handle_frames(const std::shared_ptr<Connection>& connection);
    void send_frame(Connection& connection, std::string_view payload);
    void append_server_stats(std::string& out);
    void publish_telemetry();

    ServerConfig config_;
    RequestRouter router_;
    LaneQueues<Task> queues_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};  ///< io-thread wakeup (read end polled)
    int stop_pipe_[2] = {-1, -1};  ///< wait_until_stop_requested wakeup
    std::uint16_t port_ = 0;

    std::thread io_thread_;
    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::shared_ptr<Connection>> connections_;  ///< io thread only

    std::unique_ptr<telemetry::PrometheusTextExporter> prom_exporter_;
    std::unique_ptr<telemetry::TelemetrySession> telemetry_;

    std::atomic<bool> stop_requested_{false};
    bool started_ = false;
    bool stopped_ = false;
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> overloaded_{0};
    std::atomic<std::uint64_t> bad_frames_{0};
};

}  // namespace swarmavail::serve
