// Typed requests of the planning service: verbs, parameter schemas, strict
// validation, and canonical cache keys (DESIGN.md §15).
//
// A request payload is one JSON object with a "verb" member and verb-
// specific parameters named after the paper's symbols (lambda, size, mu,
// r, u, k, alpha). Parsing is strict: unknown members are rejected (a typo'd
// field must not silently fall back to a default), every numeric field is
// range-checked against explicit ceilings, and integral fields must be
// exactly-representable whole numbers. Failures produce a ServeError with
// a stable machine-readable code; the router turns it into the structured
// error response.
//
// Canonical keys: canonical_*_key serialize the *semantic* content of a
// request (defaults applied, id excluded) as sorted-key lossless JSON —
// the same shortest-exact double writer report.cpp uses — so two
// textually different but semantically equal requests map to the same
// cache entry, byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "catalog/catalog.hpp"
#include "model/params.hpp"
#include "serve/json.hpp"

namespace swarmavail::serve {

/// Wire verbs, in the fixed order used by metrics and counters.
enum class Verb { kPing, kEval, kPlan, kRefine, kStats };
inline constexpr std::size_t kVerbCount = 5;

/// Stable wire name of a verb ("PING", "EVAL", ...).
[[nodiscard]] std::string_view verb_name(Verb verb) noexcept;

/// Lowercase metric-label form ("ping", "eval", ...).
[[nodiscard]] std::string_view verb_label(Verb verb) noexcept;

/// Priority lane of a verb: REFINE runs simulations (kSim); everything
/// else is microsecond model-path work (kModel).
enum class Lane { kModel, kSim };
[[nodiscard]] Lane lane_of(Verb verb) noexcept;

/// Cheap lane classification of a raw payload without a full parse: scans
/// for the "verb" member. Unparseable payloads classify as kModel so the
/// error response is produced fast.
[[nodiscard]] Lane classify_lane(std::string_view payload) noexcept;

/// A structured request failure; `code` is machine-readable and stable.
struct ServeError {
    std::string code;     ///< "bad-json", "unknown-verb", "out-of-range", ...
    std::string message;  ///< human diagnostic
};

/// Error codes used across the service (kept in one place so tests and
/// clients can match on them).
namespace error_code {
inline constexpr std::string_view kBadFrame = "bad-frame";
inline constexpr std::string_view kBadUtf8 = "bad-utf8";
inline constexpr std::string_view kBadJson = "bad-json";
inline constexpr std::string_view kBadRequest = "bad-request";
inline constexpr std::string_view kUnknownVerb = "unknown-verb";
inline constexpr std::string_view kOutOfRange = "out-of-range";
inline constexpr std::string_view kOverloaded = "overloaded";
inline constexpr std::string_view kInternal = "internal";
}  // namespace error_code

/// Which closed-form evaluator an EVAL/PLAN request uses.
enum class AvailabilityModel {
    kImpatient,        ///< availability_impatient (Section 3.3.1, the default)
    kPublishersOnly,   ///< availability_publishers_only (Section 3.2)
    kPeersPublishers,  ///< availability_peers_and_publishers (eqs. 7-8)
};

/// Point evaluation: one swarm/bundle, closed form, microseconds.
struct EvalRequest {
    model::SwarmParams params;  ///< base (single-file) parameters
    std::size_t bundle = 1;     ///< K; params are bundled via make_bundle
    model::PublisherScaling scaling = model::PublisherScaling::kConstant;
    AvailabilityModel model = AvailabilityModel::kImpatient;
};

/// Inverse planning: find the knob value meeting a target unavailability.
struct PlanRequest {
    enum class Variable {
        kBundleSize,       ///< smallest K with P <= target
        kSeedUptime,       ///< smallest publisher residence u
        kPublisherBudget,  ///< smallest publisher arrival rate r
    };

    EvalRequest base;  ///< params/scaling/model; `bundle` fixed for u/r plans
    Variable variable = Variable::kBundleSize;
    double target_unavailability = 0.0;  ///< in (0, 1)
    std::size_t max_bundle = 4096;       ///< K search ceiling
    double lo = 0.0;                     ///< bisection bracket for u/r plans
    double hi = 0.0;
};

/// On-demand simulation refinement of a catalog answer.
struct RefineRequest {
    catalog::CatalogConfig catalog;
    std::string policy = "fixedk";  ///< "none" | "fixedk" | "greedy"
    std::size_t bundle = 4;         ///< K for fixedk/greedy
    double horizon = 2.0e4;         ///< simulated seconds per swarm
    std::uint64_t seed = 1;
    std::size_t coverage_threshold = 1;
    bool patient_peers = true;
    double linger_time = 0.0;
    /// > 0 attaches a telemetry::StopRule over per-swarm unavailability;
    /// the engine then runs serially so the covered prefix is deterministic.
    double stop_ci = 0.0;
    std::size_t stop_min_observations = 8;
};

/// One parsed request. Exactly the member named by `verb` is meaningful.
struct Request {
    Verb verb = Verb::kPing;
    bool has_id = false;
    std::uint64_t id = 0;
    EvalRequest eval;
    PlanRequest plan;
    RefineRequest refine;
};

/// Ceilings and defaults the parser enforces; the server's --catalog flags
/// feed `default_catalog` (REFINE requests may omit catalog fields).
struct RequestPolicy {
    std::size_t max_bundle = 65536;     ///< K ceiling for EVAL/PLAN
    std::size_t max_files = 100000;     ///< catalog N ceiling for REFINE
    double max_horizon = 1.0e7;         ///< per-swarm simulated seconds
    double max_rate = 1.0e12;           ///< ceiling on rates/sizes/durations
    catalog::CatalogConfig default_catalog;

    RequestPolicy();
};

/// Parses one decoded JSON payload into a typed Request. Returns false and
/// fills `error` on any violation; never throws on bad input.
[[nodiscard]] bool parse_request(const JsonValue& payload, const RequestPolicy& policy,
                                 Request& out, ServeError& error);

/// Canonical cache keys: sorted-key lossless JSON of the request semantics
/// (defaults applied, id excluded). Byte-equal key <=> semantically equal
/// request.
[[nodiscard]] std::string canonical_eval_key(const EvalRequest& request);
[[nodiscard]] std::string canonical_plan_key(const PlanRequest& request);
[[nodiscard]] std::string canonical_refine_key(const RefineRequest& request);

}  // namespace swarmavail::serve
