// Inverse planning over the closed-form availability models.
//
// The paper's planning questions run the Section 3.2/3.3 formulas
// backwards: instead of "what unavailability does this configuration
// yield", a planner asks "what bundle size K / seed uptime u / publisher
// budget r reaches a target unavailability". Each evaluation is
// microseconds (model/availability.hpp), so planners simply search:
//
//   - K:    linear scan for the smallest K in [1, max_k] meeting the
//           target (K is a small integer; a scan is exact even where the
//           e^{-Theta(K^2)} decay is not strictly monotone in its
//           pre-asymptotic range);
//   - u, r: log-space bisection over [lo, hi] — unavailability
//           P = (1/r)/(E[B] + 1/r) is monotone decreasing in both (a
//           longer publisher stay or a faster publisher return can only
//           lengthen busy periods / shorten idles).
//
// All planners are pure functions of their request: deterministic,
// allocation-light, thread-safe.
#pragma once

#include <cstddef>

#include "model/availability.hpp"
#include "serve/request.hpp"

namespace swarmavail::serve {

/// Runs the requested closed-form evaluator on the bundled parameters.
/// Throws std::invalid_argument on parameters the model layer rejects
/// (the request layer's range checks make that unreachable in the
/// service path).
[[nodiscard]] model::AvailabilityResult evaluate_model(const EvalRequest& request);

/// Outcome of one inverse plan.
struct PlanOutcome {
    /// False when even the search ceiling (max_k / hi) misses the target;
    /// `bundle`/`value` then hold the ceiling and `achieved` its result.
    bool feasible = false;
    std::size_t bundle = 0;  ///< planned K (kBundleSize plans)
    double value = 0.0;      ///< planned u or r (bisection plans)
    model::AvailabilityResult achieved{};  ///< evaluation at the answer
    std::size_t evaluations = 0;           ///< model evaluations performed
};

/// Smallest K in [1, max_bundle] with unavailability <= target.
[[nodiscard]] PlanOutcome plan_bundle_size(const PlanRequest& request);

/// Smallest publisher residence u in [lo, hi] meeting the target
/// (log-space bisection; K fixed at request.base.bundle).
[[nodiscard]] PlanOutcome plan_seed_uptime(const PlanRequest& request);

/// Smallest publisher arrival rate r in [lo, hi] meeting the target.
[[nodiscard]] PlanOutcome plan_publisher_budget(const PlanRequest& request);

/// Dispatches on request.variable.
[[nodiscard]] PlanOutcome run_plan(const PlanRequest& request);

}  // namespace swarmavail::serve
