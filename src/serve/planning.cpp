#include "serve/planning.hpp"

#include <algorithm>
#include <cmath>

#include "model/params.hpp"
#include "util/check.hpp"

namespace swarmavail::serve {
namespace {

/// Which base parameter a bisection plan searches over.
enum class Knob { kSeedUptime, kPublisherBudget };

/// Evaluation with one knob of the *base* parameters overridden; bundling
/// (and with it the proportional publisher scaling) is applied after the
/// override, matching what a deployer controls.
model::AvailabilityResult evaluate_with(const EvalRequest& request, Knob knob,
                                        double value) {
    EvalRequest probe = request;
    if (knob == Knob::kSeedUptime) {
        probe.params.publisher_residence = value;
    } else {
        probe.params.publisher_arrival_rate = value;
    }
    return evaluate_model(probe);
}

/// Shared log-space bisection for the monotone-decreasing u / r plans.
PlanOutcome bisect_plan(const PlanRequest& request, Knob knob) {
    SWARMAVAIL_REQUIRE(request.lo > 0.0 && request.hi > request.lo,
                       "bisect_plan: requires 0 < lo < hi");
    const double target = request.target_unavailability;
    PlanOutcome outcome;

    model::AvailabilityResult at_lo = evaluate_with(request.base, knob, request.lo);
    ++outcome.evaluations;
    if (at_lo.unavailability <= target) {
        outcome.feasible = true;
        outcome.value = request.lo;
        outcome.achieved = at_lo;
        return outcome;
    }

    // Bracket by geometric expansion from lo instead of probing hi first:
    // the mixed busy-period series costs O(hump^2) with hump ~ lambda*K*u,
    // so an evaluation at a huge knob value is orders of magnitude more
    // expensive than one near the answer. Expanding upward keeps the total
    // cost proportional to where the answer actually lies; only a genuinely
    // infeasible target ever pays for an evaluation at hi.
    constexpr double kExpand = 16.0;
    double a = request.lo;
    double b = request.lo;
    model::AvailabilityResult at_b = at_lo;
    bool bracketed = false;
    while (b < request.hi) {
        const double probe = std::min(b * kExpand, request.hi);
        at_b = evaluate_with(request.base, knob, probe);
        ++outcome.evaluations;
        if (at_b.unavailability <= target) {
            b = probe;
            bracketed = true;
            break;
        }
        a = probe;
        b = probe;
    }
    if (!bracketed) {
        outcome.feasible = false;
        outcome.value = request.hi;
        outcome.achieved = at_b;
        return outcome;
    }

    // Invariant: f(a) > target >= f(b). Geometric midpoints cover the
    // bracket's decades evenly; the fixed relative tolerance ends the
    // search deterministically (~10 iterations for the one-decade-ish
    // bracket the expansion leaves).
    constexpr double kRelTol = 1.0e-9;
    constexpr std::size_t kMaxIterations = 200;
    for (std::size_t i = 0; i < kMaxIterations && (b - a) > kRelTol * b; ++i) {
        const double mid = std::sqrt(a * b);
        if (mid <= a || mid >= b) {
            break;  // bracket exhausted at double resolution
        }
        const model::AvailabilityResult at_mid =
            evaluate_with(request.base, knob, mid);
        ++outcome.evaluations;
        if (at_mid.unavailability <= target) {
            b = mid;
            at_b = at_mid;
        } else {
            a = mid;
        }
    }
    outcome.feasible = true;
    outcome.value = b;
    outcome.achieved = at_b;
    return outcome;
}

}  // namespace

model::AvailabilityResult evaluate_model(const EvalRequest& request) {
    const model::SwarmParams bundled =
        model::make_bundle(request.params, request.bundle, request.scaling);
    switch (request.model) {
        case AvailabilityModel::kPublishersOnly:
            return model::availability_publishers_only(bundled);
        case AvailabilityModel::kPeersPublishers:
            return model::availability_peers_and_publishers(bundled);
        case AvailabilityModel::kImpatient:
            break;
    }
    return model::availability_impatient(bundled);
}

PlanOutcome plan_bundle_size(const PlanRequest& request) {
    PlanOutcome outcome;
    EvalRequest probe = request.base;
    for (std::size_t k = 1; k <= request.max_bundle; ++k) {
        probe.bundle = k;
        const model::AvailabilityResult result = evaluate_model(probe);
        ++outcome.evaluations;
        outcome.bundle = k;
        outcome.achieved = result;
        if (result.unavailability <= request.target_unavailability) {
            outcome.feasible = true;
            return outcome;
        }
    }
    outcome.feasible = false;  // even max_bundle misses the target
    return outcome;
}

PlanOutcome plan_seed_uptime(const PlanRequest& request) {
    PlanOutcome outcome = bisect_plan(request, Knob::kSeedUptime);
    outcome.bundle = request.base.bundle;
    return outcome;
}

PlanOutcome plan_publisher_budget(const PlanRequest& request) {
    PlanOutcome outcome = bisect_plan(request, Knob::kPublisherBudget);
    outcome.bundle = request.base.bundle;
    return outcome;
}

PlanOutcome run_plan(const PlanRequest& request) {
    switch (request.variable) {
        case PlanRequest::Variable::kSeedUptime:
            return plan_seed_uptime(request);
        case PlanRequest::Variable::kPublisherBudget:
            return plan_publisher_budget(request);
        case PlanRequest::Variable::kBundleSize:
            break;
    }
    return plan_bundle_size(request);
}

}  // namespace swarmavail::serve
