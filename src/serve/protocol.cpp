#include "serve/protocol.hpp"

#include "util/check.hpp"

namespace swarmavail::serve {

std::string encode_frame(std::string_view payload_json) {
    SWARMAVAIL_REQUIRE(!payload_json.empty(), "encode_frame: payload must be non-empty");
    const std::size_t length = payload_json.size() + 1;  // + trailing newline
    std::string frame = std::to_string(length);
    frame.push_back('\n');
    frame.append(payload_json);
    frame.push_back('\n');
    return frame;
}

FrameDecoder::FrameDecoder(ProtocolLimits limits) : limits_(limits) {}

void FrameDecoder::feed(std::string_view bytes) {
    if (poisoned_) {
        return;  // the connection is done for; don't accumulate garbage
    }
    // Compact the consumed prefix before growing, so a long-lived
    // connection's buffer stays bounded by one frame plus one read chunk.
    if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 4096)) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }
    buffer_.append(bytes);
}

std::size_t FrameDecoder::pending_bytes() const noexcept {
    return buffer_.size() - pos_;
}

FrameDecoder::Status FrameDecoder::poison(std::string_view message,
                                          std::string& error) {
    if (!poisoned_) {
        poisoned_ = true;
        poison_message_ = std::string(message);
        buffer_.clear();
        pos_ = 0;
    }
    error = poison_message_;
    return Status::kError;
}

FrameDecoder::Status FrameDecoder::next(std::string& payload, std::string& error) {
    if (poisoned_) {
        error = poison_message_;
        return Status::kError;
    }
    const std::size_t avail = buffer_.size() - pos_;
    if (avail == 0) {
        return Status::kNeedMore;
    }

    // Length prefix: 1..max digits followed by '\n'.
    std::size_t digits = 0;
    std::size_t length = 0;
    while (true) {
        if (pos_ + digits >= buffer_.size()) {
            if (digits > limits_.max_length_digits) {
                return poison("frame length prefix exceeds 8 digits", error);
            }
            return Status::kNeedMore;
        }
        const char c = buffer_[pos_ + digits];
        if (c == '\n') {
            break;
        }
        if (c < '0' || c > '9') {
            return poison(digits == 0
                              ? "frame must start with a decimal length prefix"
                              : "non-digit byte in frame length prefix",
                          error);
        }
        if (digits == 1 && buffer_[pos_] == '0') {
            return poison("frame length prefix has a leading zero", error);
        }
        ++digits;
        if (digits > limits_.max_length_digits) {
            return poison("frame length prefix exceeds 8 digits", error);
        }
        length = length * 10 + static_cast<std::size_t>(c - '0');
    }
    if (digits == 0) {
        return poison("frame must start with a decimal length prefix", error);
    }
    if (length < 2) {
        return poison("frame payload length must be at least 2 bytes", error);
    }
    if (length > limits_.max_payload_bytes) {
        return poison("frame payload length exceeds the frame size limit", error);
    }

    const std::size_t payload_at = pos_ + digits + 1;  // past length + '\n'
    if (payload_at + length > buffer_.size()) {
        return Status::kNeedMore;
    }
    if (buffer_[payload_at + length - 1] != '\n') {
        return poison("frame payload must end with a newline", error);
    }
    payload.assign(buffer_, payload_at, length - 1);  // strip the newline
    pos_ = payload_at + length;
    return Status::kFrame;
}

}  // namespace swarmavail::serve
