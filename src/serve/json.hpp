// Strict, bounds-checked JSON for the planning service.
//
// The service's wire payloads are small JSON objects, so this parser is
// deliberately minimal and paranoid rather than general: every limit
// (nesting depth, value count, string length) is explicit, numbers must
// match the JSON grammar exactly (no leading zeros, no hex, no NaN/Inf),
// object keys must be unique, and the whole payload must be well-formed
// UTF-8. Malformed input produces a diagnostic with a byte offset and
// never throws — the protocol layer turns it into a structured error
// response (DESIGN.md §15).
//
// The writer side is canonical: object keys sorted, doubles in the
// shortest exact round-trip form (util/table.hpp format_double_exact, the
// same lossless writer report.cpp uses). Two JsonValues compare
// semantically equal iff their canonical serializations are byte-equal,
// which is what the CatalogCache keys rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swarmavail::serve {

struct JsonMember;

/// One parsed JSON value. Numbers are doubles (the service's integral
/// fields are range-checked to the exact-double window by the request
/// layer); object members keep parse order, lookup is linear (payloads
/// are tiny), and the canonical writer sorts keys.
class JsonValue {
 public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    JsonValue() = default;

    [[nodiscard]] static JsonValue make_null();
    [[nodiscard]] static JsonValue make_bool(bool value);
    [[nodiscard]] static JsonValue make_number(double value);
    [[nodiscard]] static JsonValue make_string(std::string value);
    [[nodiscard]] static JsonValue make_array();
    [[nodiscard]] static JsonValue make_object();

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
    [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
    [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
    [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
    [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
    [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

    /// Typed accessors; the caller must have checked the kind.
    [[nodiscard]] bool as_bool() const noexcept { return bool_; }
    [[nodiscard]] double as_number() const noexcept { return number_; }
    [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
    [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
        return items_;
    }
    [[nodiscard]] const std::vector<JsonMember>& members() const noexcept;

    /// First member with `key`, or nullptr (the parser rejects duplicate
    /// keys, so "first" is "only").
    [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

    void push_back(JsonValue value);
    void insert(std::string key, JsonValue value);

 private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<JsonMember> members_;
};

/// One object member; members keep parse/insertion order.
struct JsonMember {
    std::string key;
    JsonValue value;
};

/// Hard ceilings on a parse; every limit maps to a distinct diagnostic.
struct JsonLimits {
    std::size_t max_depth = 32;           ///< nesting of arrays/objects
    std::size_t max_values = 65536;       ///< total values in the document
    std::size_t max_string_bytes = 65536; ///< decoded bytes of one string
};

/// Parses exactly one JSON document spanning the whole of `text` (trailing
/// whitespace allowed). On failure returns false and, if `error` is
/// non-null, a diagnostic with a byte offset. Never throws on malformed
/// input. The text must already be valid UTF-8 (see validate_utf8); raw
/// control bytes inside strings are rejected here regardless.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string* error, const JsonLimits& limits = {});

/// True iff `text` is well-formed UTF-8 (rejects overlong encodings,
/// surrogate code points, and values beyond U+10FFFF).
[[nodiscard]] bool validate_utf8(std::string_view text) noexcept;

/// Appends the canonical serialization of `value` to `out`: object keys
/// sorted bytewise, no whitespace, doubles via format_double_exact.
void write_canonical_json(const JsonValue& value, std::string& out);

/// Canonical serialization as a fresh string (the cache-key form).
[[nodiscard]] std::string canonical_json(const JsonValue& value);

/// Appends `text` JSON-escaped (quotes included) to `out`; shared by the
/// canonical writer and the response builders.
void append_json_string(std::string_view text, std::string& out);

/// Appends the shortest exact decimal form of `value` (format_double_exact)
/// to `out`; infinities and NaN — which JSON cannot carry — are written as
/// the strings "inf"/"-inf"/"nan" would be invalid, so they are quoted:
/// `"inf"`. The service's response fields use this so +infinite busy
/// periods survive serialization.
void append_json_number(double value, std::string& out);

}  // namespace swarmavail::serve
