// Wire framing of the planning service (DESIGN.md §15).
//
// One frame is an ASCII-decimal length prefix, a newline, and exactly that
// many payload bytes — the payload itself a newline-terminated JSON text
// (the trailing newline is counted by the prefix):
//
//     frame   := length '\n' payload
//     length  := DIGIT{1,8}          ; no sign, no leading zeros
//     payload := json-text '\n'      ; length bytes, last byte is '\n'
//
// The decimal prefix (rather than a binary u32) keeps frames writable from
// scripts and CMake fixtures and debuggable with netcat, while still being
// strictly length-prefixed: the reader never scans for a delimiter inside
// the payload. Parsing is incremental and bounds-checked at every step —
// a prefix longer than 8 digits, a non-digit byte, a zero/oversized
// length, or a payload not ending in '\n' poisons the decoder with a
// diagnostic; the server answers with a structured error and closes the
// connection (framing cannot be resynchronized once broken).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace swarmavail::serve {

/// Framing ceilings; a frame violating any of them is a protocol error.
struct ProtocolLimits {
    /// Max payload bytes (JSON text plus its trailing newline).
    std::size_t max_payload_bytes = 1U << 20U;
    /// Max digits of the length prefix (8 digits cap any length < 10^8,
    /// comfortably above max_payload_bytes; more digits is malformed).
    std::size_t max_length_digits = 8;
};

/// Wraps `payload_json` (without trailing newline) into one wire frame:
/// "<length>\n<payload_json>\n".
[[nodiscard]] std::string encode_frame(std::string_view payload_json);

/// Incremental frame reader: feed() bytes as they arrive, then drain
/// next() until it reports kNeedMore. A protocol error poisons the
/// decoder — every later next() repeats kError with the same diagnostic.
class FrameDecoder {
 public:
    enum class Status {
        kNeedMore,  ///< no complete frame buffered yet
        kFrame,     ///< `payload` holds one JSON text (newline stripped)
        kError,     ///< malformed framing; `error` holds the diagnostic
    };

    explicit FrameDecoder(ProtocolLimits limits = {});

    /// Appends received bytes to the internal buffer.
    void feed(std::string_view bytes);

    /// Extracts the next complete frame, if any. On kFrame, `payload`
    /// receives the JSON text without its mandatory trailing newline.
    [[nodiscard]] Status next(std::string& payload, std::string& error);

    /// Bytes buffered but not yet consumed (a partial frame); nonzero at
    /// connection close means the peer truncated a frame mid-send.
    [[nodiscard]] std::size_t pending_bytes() const noexcept;

    [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
    Status poison(std::string_view message, std::string& error);

    ProtocolLimits limits_;
    std::string buffer_;
    std::size_t pos_ = 0;  ///< consumed prefix of buffer_
    bool poisoned_ = false;
    std::string poison_message_;
};

}  // namespace swarmavail::serve
