#include "serve/request.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <utility>

namespace swarmavail::serve {
namespace {

using std::string_view;

/// Largest integer window doubles represent exactly; integral wire fields
/// (ids, seeds, counts) are confined to it so parse -> serialize round-trips
/// bit-exactly.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

void fail(ServeError& error, string_view code, std::string message) {
    if (error.code.empty()) {
        error.code = std::string(code);
        error.message = std::move(message);
    }
}

/// Rejects members outside `allowed` so a typo'd parameter cannot silently
/// fall back to its default.
bool check_members(const JsonValue& obj, std::initializer_list<string_view> allowed,
                   ServeError& error) {
    for (const JsonMember& member : obj.members()) {
        bool known = false;
        for (const string_view name : allowed) {
            if (member.key == name) {
                known = true;
                break;
            }
        }
        if (!known) {
            fail(error, error_code::kBadRequest,
                 "unknown member \"" + member.key + "\"");
            return false;
        }
    }
    return true;
}

std::string format_range(double lo, double hi);

/// Optional finite double in [lo, hi] (lo exclusive when lo_exclusive).
bool read_number(const JsonValue& obj, string_view key, double lo, bool lo_exclusive,
                 double hi, double fallback, double& out, ServeError& error) {
    const JsonValue* field = obj.find(key);
    if (field == nullptr) {
        out = fallback;
        return true;
    }
    if (!field->is_number()) {
        fail(error, error_code::kBadRequest,
             "member \"" + std::string(key) + "\" must be a number");
        return false;
    }
    const double value = field->as_number();
    const bool above_lo = lo_exclusive ? value > lo : value >= lo;
    if (!std::isfinite(value) || !above_lo || value > hi) {
        std::string bound = lo_exclusive ? "(" : "[";
        bound += format_range(lo, hi);
        fail(error, error_code::kOutOfRange,
             "member \"" + std::string(key) + "\" = " + std::to_string(value) +
                 " outside " + bound + "]");
        return false;
    }
    out = value;
    return true;
}

/// Optional whole number in [lo, hi], exactly representable.
bool read_integer(const JsonValue& obj, string_view key, std::uint64_t lo,
                  std::uint64_t hi, std::uint64_t fallback, std::uint64_t& out,
                  ServeError& error) {
    const JsonValue* field = obj.find(key);
    if (field == nullptr) {
        out = fallback;
        return true;
    }
    if (!field->is_number()) {
        fail(error, error_code::kBadRequest,
             "member \"" + std::string(key) + "\" must be a number");
        return false;
    }
    const double value = field->as_number();
    if (!std::isfinite(value) || value < 0.0 || value > kMaxExactInteger ||
        std::floor(value) != value) {
        fail(error, error_code::kOutOfRange,
             "member \"" + std::string(key) + "\" must be a whole number in the "
             "exact-double window");
        return false;
    }
    const std::uint64_t integral = static_cast<std::uint64_t>(value);
    if (integral < lo || integral > hi) {
        fail(error, error_code::kOutOfRange,
             "member \"" + std::string(key) + "\" = " + std::to_string(integral) +
                 " outside [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
        return false;
    }
    out = integral;
    return true;
}

bool read_flag(const JsonValue& obj, string_view key, bool fallback, bool& out,
               ServeError& error) {
    const JsonValue* field = obj.find(key);
    if (field == nullptr) {
        out = fallback;
        return true;
    }
    if (!field->is_bool()) {
        fail(error, error_code::kBadRequest,
             "member \"" + std::string(key) + "\" must be a boolean");
        return false;
    }
    out = field->as_bool();
    return true;
}

/// Optional enumerated string; `mapping` pairs wire words with values.
template <typename Enum>
bool read_word(const JsonValue& obj, string_view key,
               std::initializer_list<std::pair<string_view, Enum>> mapping,
               Enum fallback, Enum& out, ServeError& error) {
    const JsonValue* field = obj.find(key);
    if (field == nullptr) {
        out = fallback;
        return true;
    }
    if (!field->is_string()) {
        fail(error, error_code::kBadRequest,
             "member \"" + std::string(key) + "\" must be a string");
        return false;
    }
    for (const auto& [word, value] : mapping) {
        if (field->as_string() == word) {
            out = value;
            return true;
        }
    }
    std::string options;
    for (const auto& [word, value] : mapping) {
        static_cast<void>(value);
        if (!options.empty()) {
            options += ", ";
        }
        options += "\"" + std::string(word) + "\"";
    }
    fail(error, error_code::kBadRequest,
         "member \"" + std::string(key) + "\" must be one of " + options);
    return false;
}

std::string format_range(double lo, double hi) {
    std::string out;
    append_json_number(lo, out);
    out += ", ";
    append_json_number(hi, out);
    return out;
}

/// Shared swarm-parameter block of EVAL/PLAN (lambda, size, mu, r, u, k,
/// scaling, model). The parameters have no defaults except k/scaling/model:
/// a point query must state its swarm.
bool read_eval_fields(const JsonValue& obj, const RequestPolicy& policy,
                      EvalRequest& out, ServeError& error) {
    struct Field {
        string_view key;
        double* slot;
    };
    const Field fields[] = {
        {"lambda", &out.params.peer_arrival_rate},
        {"size", &out.params.content_size},
        {"mu", &out.params.download_rate},
        {"r", &out.params.publisher_arrival_rate},
        {"u", &out.params.publisher_residence},
    };
    for (const Field& field : fields) {
        if (obj.find(field.key) == nullptr) {
            fail(error, error_code::kBadRequest,
                 "missing required member \"" + std::string(field.key) + "\"");
            return false;
        }
        if (!read_number(obj, field.key, 0.0, true, policy.max_rate, 0.0,
                         *field.slot, error)) {
            return false;
        }
    }
    std::uint64_t bundle = 1;
    if (!read_integer(obj, "k", 1, policy.max_bundle, 1, bundle, error)) {
        return false;
    }
    out.bundle = static_cast<std::size_t>(bundle);
    if (!read_word<model::PublisherScaling>(
            obj, "scaling",
            {{"constant", model::PublisherScaling::kConstant},
             {"proportional", model::PublisherScaling::kProportional}},
            model::PublisherScaling::kConstant, out.scaling, error)) {
        return false;
    }
    return read_word<AvailabilityModel>(
        obj, "model",
        {{"impatient", AvailabilityModel::kImpatient},
         {"publishers_only", AvailabilityModel::kPublishersOnly},
         {"peers_publishers", AvailabilityModel::kPeersPublishers}},
        AvailabilityModel::kImpatient, out.model, error);
}

bool parse_eval(const JsonValue& obj, const RequestPolicy& policy, Request& out,
                ServeError& error) {
    if (!check_members(obj,
                       {"verb", "id", "lambda", "size", "mu", "r", "u", "k",
                        "scaling", "model"},
                       error)) {
        return false;
    }
    return read_eval_fields(obj, policy, out.eval, error);
}

bool parse_plan(const JsonValue& obj, const RequestPolicy& policy, Request& out,
                ServeError& error) {
    if (!check_members(obj,
                       {"verb", "id", "lambda", "size", "mu", "r", "u", "k",
                        "scaling", "model", "variable", "target", "max_k", "lo",
                        "hi"},
                       error)) {
        return false;
    }
    PlanRequest& plan = out.plan;
    if (!read_eval_fields(obj, policy, plan.base, error)) {
        return false;
    }
    if (obj.find("variable") == nullptr || obj.find("target") == nullptr) {
        fail(error, error_code::kBadRequest,
             "PLAN requires members \"variable\" and \"target\"");
        return false;
    }
    if (!read_word<PlanRequest::Variable>(
            obj, "variable",
            {{"k", PlanRequest::Variable::kBundleSize},
             {"u", PlanRequest::Variable::kSeedUptime},
             {"r", PlanRequest::Variable::kPublisherBudget}},
            PlanRequest::Variable::kBundleSize, plan.variable, error)) {
        return false;
    }
    // target in (0, 1): an exact-zero or exact-one unavailability target is
    // unreachable / trivial respectively.
    if (!read_number(obj, "target", 0.0, true, 1.0, 0.5, plan.target_unavailability,
                     error)) {
        return false;
    }
    if (plan.target_unavailability >= 1.0) {
        fail(error, error_code::kOutOfRange, "member \"target\" must be below 1");
        return false;
    }
    std::uint64_t max_bundle = 4096;
    if (!read_integer(obj, "max_k", 1,
                      static_cast<std::uint64_t>(policy.max_bundle), 4096,
                      max_bundle, error)) {
        return false;
    }
    plan.max_bundle = static_cast<std::size_t>(max_bundle);
    // Bisection brackets, only meaningful for the u / r plans. Defaults
    // span the physically plausible decades and are clamped to the policy
    // ceiling. The u ceiling is deliberately modest: the mixed busy-period
    // series costs O(hump^2) with hump ~ lambda*K*u, so an evaluation at
    // u = 1e6 already takes minutes — a larger bracket must be requested
    // explicitly (and priced in) via "hi".
    const bool uptime = plan.variable == PlanRequest::Variable::kSeedUptime;
    const double default_lo = uptime ? 1.0e-3 : 1.0e-9;
    const double default_hi = std::min(uptime ? 1.0e5 : 1.0e3, policy.max_rate);
    if (!read_number(obj, "lo", 0.0, true, policy.max_rate, default_lo, plan.lo,
                     error) ||
        !read_number(obj, "hi", 0.0, true, policy.max_rate, default_hi, plan.hi,
                     error)) {
        return false;
    }
    if (plan.variable != PlanRequest::Variable::kBundleSize && plan.lo >= plan.hi) {
        fail(error, error_code::kOutOfRange,
             "PLAN bisection requires lo < hi");
        return false;
    }
    if (plan.variable == PlanRequest::Variable::kSeedUptime &&
        plan.base.model == AvailabilityModel::kPeersPublishers) {
        fail(error, error_code::kBadRequest,
             "model \"peers_publishers\" ignores u (publishers stay s/mu); "
             "planning u under it is meaningless");
        return false;
    }
    return true;
}

bool parse_refine(const JsonValue& obj, const RequestPolicy& policy, Request& out,
                  ServeError& error) {
    if (!check_members(obj,
                       {"verb", "id", "catalog", "policy", "k", "horizon", "seed",
                        "coverage", "patient", "linger", "stop_ci",
                        "stop_min_obs"},
                       error)) {
        return false;
    }
    RefineRequest& refine = out.refine;
    refine.catalog = policy.default_catalog;

    const JsonValue* cat = obj.find("catalog");
    if (cat != nullptr) {
        if (!cat->is_object()) {
            fail(error, error_code::kBadRequest,
                 "member \"catalog\" must be an object");
            return false;
        }
        if (!check_members(*cat,
                           {"files", "alpha", "demand", "size", "mu", "r", "u",
                            "assignment"},
                           error)) {
            return false;
        }
        catalog::CatalogConfig& cc = refine.catalog;
        std::uint64_t files = cc.num_files;
        if (!read_integer(*cat, "files", 1,
                          static_cast<std::uint64_t>(policy.max_files),
                          static_cast<std::uint64_t>(cc.num_files), files,
                          error)) {
            return false;
        }
        cc.num_files = static_cast<std::size_t>(files);
        if (!read_number(*cat, "alpha", 0.0, false, 16.0, cc.zipf_exponent,
                         cc.zipf_exponent, error) ||
            !read_number(*cat, "demand", 0.0, true, policy.max_rate,
                         cc.aggregate_demand, cc.aggregate_demand, error) ||
            !read_number(*cat, "size", 0.0, true, policy.max_rate, cc.file_size,
                         cc.file_size, error) ||
            !read_number(*cat, "mu", 0.0, true, policy.max_rate, cc.download_rate,
                         cc.download_rate, error) ||
            !read_number(*cat, "r", 0.0, true, policy.max_rate,
                         cc.publisher_arrival_rate, cc.publisher_arrival_rate,
                         error) ||
            !read_number(*cat, "u", 0.0, true, policy.max_rate,
                         cc.publisher_residence, cc.publisher_residence, error)) {
            return false;
        }
        if (!read_word<catalog::PublisherAssignment>(
                *cat, "assignment",
                {{"dedicated", catalog::PublisherAssignment::kDedicated},
                 {"partitioned", catalog::PublisherAssignment::kPartitionedBudget}},
                cc.publishers, cc.publishers, error)) {
            return false;
        }
    }

    const JsonValue* pol = obj.find("policy");
    if (pol != nullptr) {
        if (!pol->is_string()) {
            fail(error, error_code::kBadRequest,
                 "member \"policy\" must be a string");
            return false;
        }
        const std::string& name = pol->as_string();
        if (name != "none" && name != "fixedk" && name != "greedy") {
            fail(error, error_code::kBadRequest,
                 "member \"policy\" must be one of \"none\", \"fixedk\", "
                 "\"greedy\"");
            return false;
        }
        refine.policy = name;
    }

    std::uint64_t bundle = refine.bundle;
    if (!read_integer(obj, "k", 1,
                      static_cast<std::uint64_t>(refine.catalog.num_files),
                      static_cast<std::uint64_t>(refine.bundle), bundle, error)) {
        return false;
    }
    refine.bundle = static_cast<std::size_t>(bundle);
    if (!read_number(obj, "horizon", 0.0, true, policy.max_horizon, refine.horizon,
                     refine.horizon, error)) {
        return false;
    }
    if (!read_integer(obj, "seed", 0, static_cast<std::uint64_t>(kMaxExactInteger),
                      refine.seed, refine.seed, error)) {
        return false;
    }
    std::uint64_t coverage = refine.coverage_threshold;
    if (!read_integer(obj, "coverage", 1, 1000,
                      static_cast<std::uint64_t>(refine.coverage_threshold),
                      coverage, error)) {
        return false;
    }
    refine.coverage_threshold = static_cast<std::size_t>(coverage);
    if (!read_flag(obj, "patient", refine.patient_peers, refine.patient_peers,
                   error)) {
        return false;
    }
    if (!read_number(obj, "linger", 0.0, false, policy.max_rate, refine.linger_time,
                     refine.linger_time, error)) {
        return false;
    }
    if (!read_number(obj, "stop_ci", 0.0, false, 1.0, refine.stop_ci,
                     refine.stop_ci, error)) {
        return false;
    }
    std::uint64_t min_obs = refine.stop_min_observations;
    if (!read_integer(obj, "stop_min_obs", 2, 1000000,
                      static_cast<std::uint64_t>(refine.stop_min_observations),
                      min_obs, error)) {
        return false;
    }
    refine.stop_min_observations = static_cast<std::size_t>(min_obs);
    return true;
}

}  // namespace

RequestPolicy::RequestPolicy() {
    // Service-default catalog: a small Zipf catalog under a partitioned
    // publisher budget — the bundling-planning configuration of Section
    // 3.3; REFINE requests override any subset of it.
    default_catalog.num_files = 64;
    default_catalog.zipf_exponent = 1.0;
    default_catalog.aggregate_demand = 10.0;
    default_catalog.file_size = 1.0;
    default_catalog.download_rate = 1.25;
    default_catalog.publisher_arrival_rate = 0.05;
    default_catalog.publisher_residence = 1000.0;
    default_catalog.publishers = catalog::PublisherAssignment::kPartitionedBudget;
}

std::string_view verb_name(Verb verb) noexcept {
    switch (verb) {
        case Verb::kPing: return "PING";
        case Verb::kEval: return "EVAL";
        case Verb::kPlan: return "PLAN";
        case Verb::kRefine: return "REFINE";
        case Verb::kStats: return "STATS";
    }
    return "PING";
}

std::string_view verb_label(Verb verb) noexcept {
    switch (verb) {
        case Verb::kPing: return "ping";
        case Verb::kEval: return "eval";
        case Verb::kPlan: return "plan";
        case Verb::kRefine: return "refine";
        case Verb::kStats: return "stats";
    }
    return "ping";
}

Lane lane_of(Verb verb) noexcept {
    return verb == Verb::kRefine ? Lane::kSim : Lane::kModel;
}

Lane classify_lane(std::string_view payload) noexcept {
    // Cheap scan: find the "verb" member and check whether its value
    // starts with REFINE. Anything unparseable stays on the model lane so
    // its error response is produced without queueing behind simulations.
    const std::size_t at = payload.find("\"verb\"");
    if (at == std::string_view::npos) {
        return Lane::kModel;
    }
    std::size_t p = at + 6;
    while (p < payload.size() &&
           (payload[p] == ' ' || payload[p] == '\t' || payload[p] == '\n' ||
            payload[p] == '\r')) {
        ++p;
    }
    if (p >= payload.size() || payload[p] != ':') {
        return Lane::kModel;
    }
    ++p;
    while (p < payload.size() &&
           (payload[p] == ' ' || payload[p] == '\t' || payload[p] == '\n' ||
            payload[p] == '\r')) {
        ++p;
    }
    return payload.compare(p, 8, "\"REFINE\"") == 0 ? Lane::kSim : Lane::kModel;
}

bool parse_request(const JsonValue& payload, const RequestPolicy& policy,
                   Request& out, ServeError& error) {
    out = Request{};
    if (!payload.is_object()) {
        fail(error, error_code::kBadRequest, "request payload must be a JSON object");
        return false;
    }
    // The id is read first so every later failure — unknown verb included —
    // still echoes it in the structured error response.
    std::uint64_t id = 0;
    const bool has_id = payload.find("id") != nullptr;
    if (!read_integer(payload, "id", 0, static_cast<std::uint64_t>(kMaxExactInteger),
                      0, id, error)) {
        return false;
    }
    out.has_id = has_id;
    out.id = id;

    const JsonValue* verb = payload.find("verb");
    if (verb == nullptr || !verb->is_string()) {
        fail(error, error_code::kBadRequest,
             "request must carry a string member \"verb\"");
        return false;
    }
    const std::string& name = verb->as_string();
    if (name == "PING") {
        out.verb = Verb::kPing;
    } else if (name == "EVAL") {
        out.verb = Verb::kEval;
    } else if (name == "PLAN") {
        out.verb = Verb::kPlan;
    } else if (name == "REFINE") {
        out.verb = Verb::kRefine;
    } else if (name == "STATS") {
        out.verb = Verb::kStats;
    } else {
        fail(error, error_code::kUnknownVerb,
             "unknown verb \"" + name + "\" (expected PING, EVAL, PLAN, REFINE, "
             "or STATS)");
        return false;
    }

    switch (out.verb) {
        case Verb::kPing:
        case Verb::kStats:
            return check_members(payload, {"verb", "id"}, error);
        case Verb::kEval:
            return parse_eval(payload, policy, out, error);
        case Verb::kPlan:
            return parse_plan(payload, policy, out, error);
        case Verb::kRefine:
            return parse_refine(payload, policy, out, error);
    }
    return false;
}

namespace {

const char* scaling_word(model::PublisherScaling scaling) {
    return scaling == model::PublisherScaling::kProportional ? "proportional"
                                                             : "constant";
}

const char* model_word(AvailabilityModel model) {
    switch (model) {
        case AvailabilityModel::kImpatient: return "impatient";
        case AvailabilityModel::kPublishersOnly: return "publishers_only";
        case AvailabilityModel::kPeersPublishers: return "peers_publishers";
    }
    return "impatient";
}

JsonValue eval_semantics(const EvalRequest& request) {
    JsonValue obj = JsonValue::make_object();
    obj.insert("verb", JsonValue::make_string("EVAL"));
    obj.insert("lambda", JsonValue::make_number(request.params.peer_arrival_rate));
    obj.insert("size", JsonValue::make_number(request.params.content_size));
    obj.insert("mu", JsonValue::make_number(request.params.download_rate));
    obj.insert("r", JsonValue::make_number(request.params.publisher_arrival_rate));
    obj.insert("u", JsonValue::make_number(request.params.publisher_residence));
    obj.insert("k", JsonValue::make_number(static_cast<double>(request.bundle)));
    obj.insert("scaling", JsonValue::make_string(scaling_word(request.scaling)));
    obj.insert("model", JsonValue::make_string(model_word(request.model)));
    return obj;
}

}  // namespace

std::string canonical_eval_key(const EvalRequest& request) {
    return canonical_json(eval_semantics(request));
}

std::string canonical_plan_key(const PlanRequest& request) {
    JsonValue obj = eval_semantics(request.base);
    // Rewrite the verb: a PLAN shares the eval block but is its own key
    // space (insert() on a fresh object keeps keys unique; here we know
    // "verb" exists, so rebuild it via a dedicated member list).
    JsonValue out = JsonValue::make_object();
    for (const JsonMember& member : obj.members()) {
        if (member.key == "verb") {
            out.insert("verb", JsonValue::make_string("PLAN"));
        } else {
            out.insert(member.key, member.value);
        }
    }
    const char* variable = "k";
    if (request.variable == PlanRequest::Variable::kSeedUptime) {
        variable = "u";
    } else if (request.variable == PlanRequest::Variable::kPublisherBudget) {
        variable = "r";
    }
    out.insert("variable", JsonValue::make_string(variable));
    out.insert("target", JsonValue::make_number(request.target_unavailability));
    out.insert("max_k", JsonValue::make_number(static_cast<double>(request.max_bundle)));
    out.insert("lo", JsonValue::make_number(request.lo));
    out.insert("hi", JsonValue::make_number(request.hi));
    return canonical_json(out);
}

std::string canonical_refine_key(const RefineRequest& request) {
    JsonValue cat = JsonValue::make_object();
    cat.insert("files",
               JsonValue::make_number(static_cast<double>(request.catalog.num_files)));
    cat.insert("alpha", JsonValue::make_number(request.catalog.zipf_exponent));
    cat.insert("demand", JsonValue::make_number(request.catalog.aggregate_demand));
    cat.insert("size", JsonValue::make_number(request.catalog.file_size));
    cat.insert("mu", JsonValue::make_number(request.catalog.download_rate));
    cat.insert("r",
               JsonValue::make_number(request.catalog.publisher_arrival_rate));
    cat.insert("u", JsonValue::make_number(request.catalog.publisher_residence));
    cat.insert("assignment",
               JsonValue::make_string(
                   request.catalog.publishers ==
                           catalog::PublisherAssignment::kPartitionedBudget
                       ? "partitioned"
                       : "dedicated"));

    JsonValue obj = JsonValue::make_object();
    obj.insert("verb", JsonValue::make_string("REFINE"));
    obj.insert("catalog", std::move(cat));
    obj.insert("policy", JsonValue::make_string(request.policy));
    obj.insert("k", JsonValue::make_number(static_cast<double>(request.bundle)));
    obj.insert("horizon", JsonValue::make_number(request.horizon));
    obj.insert("seed", JsonValue::make_number(static_cast<double>(request.seed)));
    obj.insert("coverage", JsonValue::make_number(
                               static_cast<double>(request.coverage_threshold)));
    obj.insert("patient", JsonValue::make_bool(request.patient_peers));
    obj.insert("linger", JsonValue::make_number(request.linger_time));
    obj.insert("stop_ci", JsonValue::make_number(request.stop_ci));
    obj.insert("stop_min_obs",
               JsonValue::make_number(
                   static_cast<double>(request.stop_min_observations)));
    return canonical_json(obj);
}

}  // namespace swarmavail::serve
