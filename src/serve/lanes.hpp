// Bounded two-lane MPMC request queue of the planning server.
//
// One mutex + one condition variable over two bounded deques: a model
// lane (PING/EVAL/PLAN/STATS — microsecond work) and a sim lane (REFINE —
// milliseconds to seconds of simulation). Workers pop with a mode that
// encodes their lane affinity, so the server can guarantee the tentpole's
// scheduling property: model-path requests never wait behind simulation
// refinements, because at least one worker pops kModelOnly while sim work
// is drained by workers preferring (but not limited to) the sim lane.
//
// try_push never blocks: a full lane is the server's backpressure signal
// (--max-inflight), turned into a structured "overloaded" error by the
// acceptor. close() stops intake but lets pops drain what is queued —
// exactly the SIGTERM "finish in-flight, then exit" semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "serve/request.hpp"

namespace swarmavail::serve {

/// Which lanes a worker drains, and in what order of preference.
enum class PopMode {
    kModelOnly,    ///< dedicated model worker; never touches the sim lane
    kPreferModel,  ///< both lanes, model first (the single-worker mode)
    kPreferSim,    ///< both lanes, sim first (sim workers help when idle)
};

template <typename T>
class LaneQueues {
 public:
    explicit LaneQueues(std::size_t capacity_per_lane)
        : capacity_(capacity_per_lane == 0 ? 1 : capacity_per_lane) {}

    /// False when the lane is at capacity or the queue is closed.
    bool try_push(Lane lane, T item) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            std::deque<T>& queue = lane == Lane::kSim ? sim_ : model_;
            if (closed_ || queue.size() >= capacity_) {
                return false;
            }
            queue.push_back(std::move(item));
        }
        // notify_all, not notify_one: waiters are mode-selective, so one
        // notification can land on a kModelOnly worker that cannot take a
        // sim item — it re-waits and the wakeup is swallowed while the
        // sim-capable worker sleeps on. The herd is at most the worker
        // pool, and pushes are paced by socket io, so waking everyone is
        // cheap; losing a wakeup stalls a request until the next push.
        cv_.notify_all();
        return true;
    }

    /// Blocks until an item is available on an allowed lane or the queue
    /// is closed and the allowed lanes are empty (then returns false).
    bool pop(PopMode mode, T& out) {
        std::unique_lock<std::mutex> lock(mutex_);
        while (true) {
            std::deque<T>* first = &model_;
            std::deque<T>* second = mode == PopMode::kModelOnly ? nullptr : &sim_;
            if (mode == PopMode::kPreferSim) {
                first = &sim_;
                second = &model_;
            }
            if (!first->empty()) {
                out = std::move(first->front());
                first->pop_front();
                return true;
            }
            if (second != nullptr && !second->empty()) {
                out = std::move(second->front());
                second->pop_front();
                return true;
            }
            if (closed_) {
                return false;
            }
            cv_.wait(lock);
        }
    }

    /// Stops intake; queued items keep draining through pop().
    void close() {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] std::size_t depth(Lane lane) const {
        std::unique_lock<std::mutex> lock(mutex_);
        return lane == Lane::kSim ? sim_.size() : model_.size();
    }

    [[nodiscard]] bool empty() const {
        std::unique_lock<std::mutex> lock(mutex_);
        return model_.empty() && sim_.empty();
    }

 private:
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> model_;
    std::deque<T> sim_;
    bool closed_ = false;
};

}  // namespace swarmavail::serve
