// Request-lifecycle span tracing for the planning service.
//
// The serving path emits one compact POD SpanRecord per request stage —
// accept, frame decode, parse/canonicalize, cache probe, lane queue wait,
// compute, serialize, socket write — into per-thread rings owned by a
// SpanHub (ring 0 = the io thread, ring 1+i = worker i). Rings overwrite
// their oldest records, are merged in index order when drained, and flush
// through pluggable SpanSinks: JSONL (one object per line, lossless
// doubles), an in-memory vector, or /dev/null. A slow-query threshold
// routes the complete span breakdown of an offending request to a second
// sink the moment the request finishes, so the tail is attributable
// without draining anything.
//
// This file is an *observer* (swarmlint Layer::kObserver): it includes no
// service or engine headers — verbs and lanes travel as raw integers, and
// the serving layer maps them back to names. Cost model, by layer:
//   - compile time: SWARMAVAIL_SPANS_DISABLED (CMake:
//     -DSWARMAVAIL_ENABLE_SPANS=OFF, part of the trace-off preset) turns
//     the SWARMAVAIL_SPAN macro into a no-op and the serving layer's
//     guarded regions erase every hub touch; the types stay available.
//   - runtime, spans off (the default): route() dispatches to a
//     span-free instantiation — one branch per request, nothing else.
//   - runtime, spans on: a handful of steady_clock reads per request plus
//     one ring append per stage.
//
// Spans never mutate request handling state: responses are byte-identical
// with spans on or off at any thread count (pinned by tests/serve).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <type_traits>
#include <vector>

namespace swarmavail::serve {

/// Request lifecycle stages. Values are stable across runs (they appear in
/// serialized spans); append only.
enum class SpanStage : std::uint16_t {
    kAccept = 0,     ///< connection accepted (point event, t_start == t_end)
    kDecode = 1,     ///< frame decode on the io thread
    kParse = 2,      ///< UTF-8 validation + JSON parse + request parse
    kCache = 3,      ///< canonical key build + single-flight probe (brackets
                     ///< kCompute when this caller owned the computation)
    kQueueWait = 4,  ///< lane enqueue -> worker dequeue
    kCompute = 5,    ///< model/planning/simulation work (cache misses only)
    kSerialize = 6,  ///< response envelope assembly
    kWrite = 7,      ///< frame encode + socket send
};
inline constexpr std::size_t kSpanStageCount = 8;

/// Name used in serialized spans ("accept", "queue_wait", ...).
[[nodiscard]] constexpr const char* span_stage_name(SpanStage stage) noexcept {
    switch (stage) {
        case SpanStage::kAccept: return "accept";
        case SpanStage::kDecode: return "decode";
        case SpanStage::kParse: return "parse";
        case SpanStage::kCache: return "cache";
        case SpanStage::kQueueWait: return "queue_wait";
        case SpanStage::kCompute: return "compute";
        case SpanStage::kSerialize: return "serialize";
        case SpanStage::kWrite: return "write";
    }
    return "unknown";
}

/// Inverse of span_stage_name; returns false for unknown names.
[[nodiscard]] constexpr bool span_stage_from_name(std::string_view name,
                                                  SpanStage& out) noexcept {
    for (std::size_t i = 0; i < kSpanStageCount; ++i) {
        const auto stage = static_cast<SpanStage>(i);
        if (name == span_stage_name(stage)) {
            out = stage;
            return true;
        }
    }
    return false;
}

/// How the single-flight cache answered (kNone for uncached verbs).
enum class SpanCacheOutcome : std::uint32_t {
    kNone = 0,       ///< verb has no cache (PING/STATS) or request failed
    kHit = 1,        ///< completed entry found
    kMiss = 2,       ///< this request owned the computation
    kCoalesced = 3,  ///< joined another request's in-flight computation
};
inline constexpr std::size_t kSpanCacheOutcomeCount = 4;

[[nodiscard]] constexpr const char* span_cache_outcome_name(
    SpanCacheOutcome outcome) noexcept {
    switch (outcome) {
        case SpanCacheOutcome::kNone: return "none";
        case SpanCacheOutcome::kHit: return "hit";
        case SpanCacheOutcome::kMiss: return "miss";
        case SpanCacheOutcome::kCoalesced: return "coalesced";
    }
    return "unknown";
}

[[nodiscard]] constexpr bool span_cache_outcome_from_name(
    std::string_view name, SpanCacheOutcome& out) noexcept {
    for (std::size_t i = 0; i < kSpanCacheOutcomeCount; ++i) {
        const auto outcome = static_cast<SpanCacheOutcome>(i);
        if (name == span_cache_outcome_name(outcome)) {
            out = outcome;
            return true;
        }
    }
    return false;
}

/// One stage of one request. POD on purpose: records are ring-buffered and
/// copied in bulk, and sinks serialize them without touching the heap per
/// record. Verb and lane carry the serving layer's enum values as raw
/// integers so this observer needs no service includes (0 PING, 1 EVAL,
/// 2 PLAN, 3 REFINE, 4 STATS; lane 0 model, 1 sim).
struct SpanRecord {
    std::uint64_t request = 0;     ///< server-assigned monotone request index
    std::uint64_t connection = 0;  ///< accept-order connection id
    double t_start = 0.0;          ///< seconds since the hub's epoch
    double t_end = 0.0;            ///< seconds since the hub's epoch
    std::uint64_t bytes = 0;       ///< stage-specific byte count (0 when n/a)
    std::uint16_t stage = 0;       ///< SpanStage
    std::uint16_t verb = 0;        ///< serving-layer verb value
    std::uint16_t lane = 0;        ///< serving-layer lane value
    std::uint16_t worker = 0;      ///< ring index (0 = io thread, 1+i = worker i)
    std::uint32_t cache = 0;       ///< SpanCacheOutcome
    std::uint32_t reserved = 0;    ///< padding; always zero

    friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};
static_assert(std::is_trivially_copyable_v<SpanRecord>);
static_assert(sizeof(SpanRecord) == 56);

/// Where drained or slow-query records go. Sinks see records in the order
/// the hub hands them over (ring-index order on drain; whole requests at
/// once on the slow-query path).
class SpanSink {
 public:
    virtual ~SpanSink() = default;
    virtual void write(const SpanRecord* records, std::size_t count) = 0;
    /// Called once when the producer is done (SpanHub::drain / shutdown).
    virtual void finish() {}
};

/// Discards everything; for overhead measurement.
class NullSpanSink final : public SpanSink {
 public:
    void write(const SpanRecord* records, std::size_t count) override;
};

/// Buffers records in memory; for tests and in-process consumers.
class MemorySpanSink final : public SpanSink {
 public:
    void write(const SpanRecord* records, std::size_t count) override;

    [[nodiscard]] const std::vector<SpanRecord>& records() const noexcept {
        return records_;
    }

 private:
    std::vector<SpanRecord> records_;
};

/// One JSON object per line:
///   {"request":3,"conn":1,"stage":"cache","verb":1,"lane":0,"worker":2,
///    "t0":0.000123,"t1":0.000125,"bytes":0,"cache":"hit"}
/// Doubles use the shortest lossless form, so parsing the stream back
/// reproduces every record bit for bit (read_spans_jsonl). The slow-query
/// log is exactly this format, restricted to offending requests.
class JsonlSpanSink final : public SpanSink {
 public:
    /// The stream must outlive the sink; the sink never owns it.
    explicit JsonlSpanSink(std::ostream& os) : os_(os) {}
    void write(const SpanRecord* records, std::size_t count) override;
    void finish() override;

 private:
    std::ostream& os_;
};

/// Parses a JSONL span stream produced by JsonlSpanSink. Restricted to
/// that writer's output shape (this is a span reader, not a JSON
/// library); throws std::invalid_argument on malformed lines.
[[nodiscard]] std::vector<SpanRecord> read_spans_jsonl(std::istream& in);

/// Per-request scratch the serving path fills while a request moves
/// through its stages. Inline-only by design: touching it generates no
/// external symbols, so the router needs no preprocessor guards — its
/// call sites vanish through the SWARMAVAIL_SPAN macro alone.
struct RequestSpans {
    std::chrono::steady_clock::time_point epoch{};
    double t0[kSpanStageCount] = {};
    double t1[kSpanStageCount] = {};
    std::uint64_t stage_bytes[kSpanStageCount] = {};
    std::uint32_t seen = 0;  ///< bitmask of finished stages
    std::uint32_t cache = 0; ///< SpanCacheOutcome

    void set_epoch(std::chrono::steady_clock::time_point at) noexcept {
        epoch = at;
    }
    [[nodiscard]] double now() const noexcept {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             epoch)
            .count();
    }
    void begin(SpanStage stage) noexcept {
        t0[static_cast<std::size_t>(stage)] = now();
    }
    void end(SpanStage stage, std::uint64_t bytes = 0) noexcept {
        const auto i = static_cast<std::size_t>(stage);
        t1[i] = now();
        stage_bytes[i] = bytes;
        seen |= 1u << i;
    }
    /// Records a stage whose endpoints were measured elsewhere (the io
    /// thread stamps decode and enqueue times into the task).
    void note(SpanStage stage, double start, double stop,
              std::uint64_t bytes = 0) noexcept {
        const auto i = static_cast<std::size_t>(stage);
        t0[i] = start;
        t1[i] = stop;
        stage_bytes[i] = bytes;
        seen |= 1u << i;
    }
    void set_cache(SpanCacheOutcome outcome) noexcept {
        cache = static_cast<std::uint32_t>(outcome);
    }
    [[nodiscard]] bool has(SpanStage stage) const noexcept {
        return (seen & (1u << static_cast<std::size_t>(stage))) != 0;
    }
    [[nodiscard]] double duration(SpanStage stage) const noexcept {
        const auto i = static_cast<std::size_t>(stage);
        return has(stage) ? t1[i] - t0[i] : 0.0;
    }
};

struct SpanHubConfig {
    /// Ring count: 1 (io thread) + worker count.
    std::size_t rings = 1;
    /// Records retained per ring; the oldest are overwritten.
    std::size_t ring_capacity = 4096;
    /// Requests whose end-to-end latency (decode start -> write end)
    /// reaches this many seconds have their whole span breakdown written
    /// to the slow sink as they finish. 0 disables the slow-query log.
    double slow_threshold_s = 0.0;
};

/// Owns the per-thread span rings and the slow-query funnel. Each ring is
/// written by exactly one thread (its io thread or worker) but guarded by
/// a small mutex because drain() may race the owner. The hub's epoch is
/// its construction instant: every timestamp is seconds since then, on
/// the steady clock, so records from different threads share one axis.
class SpanHub {
 public:
    /// `slow_sink` (nullable) receives offending requests' records; it
    /// must outlive the hub.
    explicit SpanHub(SpanHubConfig config, SpanSink* slow_sink = nullptr);

    SpanHub(const SpanHub&) = delete;
    SpanHub& operator=(const SpanHub&) = delete;

    /// Runtime gate. Disabled, the serving path takes a span-free branch.
    void set_enabled(bool on) noexcept {
        enabled_.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::chrono::steady_clock::time_point epoch() const noexcept {
        return epoch_;
    }
    /// Seconds since the hub's epoch (steady clock).
    [[nodiscard]] double now() const noexcept {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             epoch_)
            .count();
    }

    /// Monotone 1-based request index; correlates one request's records
    /// across the io thread and whichever worker finishes it.
    [[nodiscard]] std::uint64_t next_request() noexcept {
        return request_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /// Appends one record to `ring` (oldest overwritten at capacity).
    void emit(std::size_t ring, const SpanRecord& record);

    /// Appends a finished request's records to `ring` and, when
    /// `total_seconds` reaches the slow threshold, forwards them to the
    /// slow sink as one contiguous block.
    void finish_request(std::size_t ring, const SpanRecord* records,
                        std::size_t count, double total_seconds);

    /// Writes every ring's retained records to `sink` — rings in index
    /// order, oldest record first within a ring — then clears the rings
    /// and calls sink.finish(). Deterministic given quiesced producers.
    void drain(SpanSink& sink);

    [[nodiscard]] std::uint64_t records_emitted() const noexcept {
        return emitted_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t records_dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t slow_requests() const noexcept {
        return slow_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double slow_threshold_s() const noexcept {
        return config_.slow_threshold_s;
    }
    [[nodiscard]] std::size_t rings() const noexcept { return rings_.size(); }

 private:
    struct Ring {
        std::mutex mutex;
        std::vector<SpanRecord> records;  ///< fixed capacity, circular
        std::size_t next = 0;             ///< write cursor
        bool wrapped = false;
    };

    void append_locked(Ring& ring, const SpanRecord& record);

    SpanHubConfig config_;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::unique_ptr<Ring>> rings_;
    SpanSink* slow_sink_;
    std::mutex slow_mutex_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> request_counter_{0};
    std::atomic<std::uint64_t> emitted_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> slow_{0};
};

}  // namespace swarmavail::serve

#if defined(SWARMAVAIL_SPANS_DISABLED)
#define SWARMAVAIL_SPAN(spans, ...) static_cast<void>(0)
#else
/// Serving-layer span call site: one null-pointer branch when spans are
/// off; compiled out entirely under SWARMAVAIL_SPANS_DISABLED.
#define SWARMAVAIL_SPAN(spans, ...)        \
    do {                                   \
        if ((spans) != nullptr) {          \
            (spans)->__VA_ARGS__;          \
        }                                  \
    } while (false)
#endif
