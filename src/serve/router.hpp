// RequestRouter: one decoded payload in, one response payload out.
//
// The router is the server's engine-facing half, usable without any
// socket: route() takes the JSON text of one frame and returns the JSON
// text of the response (bench_planning_qps drives it in-process; the
// PlanningServer wraps it with the acceptor/worker machinery). It is
// thread-safe — many workers call route() concurrently — and
// deterministic: the response bytes for a given request depend only on
// the request semantics and the router's configuration, never on thread
// interleaving (STATS, which reports live counters, is the deliberate
// exception and is excluded from the bit-identical-response contract).
//
// Warm state: two single-flight caches keyed by canonical request
// serializations — REFINE outcomes (simulation results with their
// determinism fingerprints) and model-path result fragments (EVAL/PLAN),
// which turns the 17 us..175 us closed-form series evaluations into
// sub-microsecond hash hits for repeated planning queries. Responses are
// assembled per request around the cached fragment, so a request id never
// leaks into the shared cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "serve/catalog_cache.hpp"
#include "serve/request.hpp"
#include "serve/span.hpp"

namespace swarmavail::serve {

struct RouterConfig {
    RequestPolicy policy{};
    JsonLimits json_limits{};
    std::size_t model_cache_entries = 4096;
    std::size_t refine_cache_entries = 256;
    /// Threads of the sharded catalog engine per refinement. Results are
    /// bit-identical at any value; forced to 1 when a StopRule is attached
    /// so the covered prefix is deterministic too.
    std::size_t refine_threads = 1;
};

/// One routed request's outcome.
struct RouteResult {
    std::string payload;       ///< response JSON text (no frame, no newline)
    Verb verb = Verb::kPing;   ///< parsed verb (kPing when parsing failed)
    bool ok = false;           ///< false when payload carries an error object
};

class RequestRouter {
 public:
    explicit RequestRouter(RouterConfig config = {});

    /// Handles one request payload. Never throws: every failure becomes a
    /// structured {"ok":false,"error":{...}} response.
    [[nodiscard]] RouteResult route(std::string_view payload);

    /// Same, with stage timing: when `spans` is non-null the parse, cache,
    /// compute, and serialize stages are recorded into it (serve/span.hpp).
    /// Spans never change the response bytes; null is the fast path (one
    /// branch per stage boundary).
    [[nodiscard]] RouteResult route(std::string_view payload, RequestSpans* spans);

    /// Builds a structured error response (also used by the server for
    /// frame-level and overload errors that never reach route()).
    [[nodiscard]] static std::string error_response(std::string_view code,
                                                    std::string_view message);

    /// Prometheus text exposition of the router's counters and caches,
    /// plus whatever the stats appender contributes (the server hooks its
    /// latency histograms and queue gauges in). Ends with a newline;
    /// structurally valid per telemetry::validate_prometheus_text.
    [[nodiscard]] std::string render_stats() const;

    /// Extra series appended to render_stats(); set before serving starts.
    void set_stats_appender(std::function<void(std::string&)> appender);

    [[nodiscard]] CatalogCache& refine_cache() noexcept { return refine_cache_; }
    [[nodiscard]] SingleFlightCache<std::string>& model_cache() noexcept {
        return model_cache_;
    }
    [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }

    [[nodiscard]] std::uint64_t requests(Verb verb) const noexcept;
    [[nodiscard]] std::uint64_t errors() const noexcept;

    /// XOR of the fingerprints of refinements actually computed (cache hits
    /// excluded, so a digest never cancels itself). The server maps this
    /// onto RunCounters::fingerprint_xor for the --prom-out exposition.
    [[nodiscard]] std::uint64_t refine_fingerprint_xor() const noexcept {
        return refine_fingerprint_xor_.load(std::memory_order_relaxed);
    }

 private:
    [[nodiscard]] std::string handle(const Request& request, ServeError& error,
                                     bool& ok, RequestSpans* spans);

    RouterConfig config_;
    SingleFlightCache<std::string> model_cache_;
    CatalogCache refine_cache_;
    std::function<void(std::string&)> stats_appender_;
    std::atomic<std::uint64_t> requests_[kVerbCount] = {};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> refine_fingerprint_xor_{0};
};

}  // namespace swarmavail::serve
