#include "serve/router.hpp"

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "catalog/bundling_policy.hpp"
#include "catalog/catalog.hpp"
#include "catalog/catalog_engine.hpp"
#include "catalog/report.hpp"
#include "serve/json.hpp"
#include "serve/planning.hpp"
#include "sim/fingerprint.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::serve {
namespace {

void append_uint(std::uint64_t value, std::string& out) {
    out += std::to_string(value);
}

void append_bool(bool value, std::string& out) { out += value ? "true" : "false"; }

/// Result fragment of an EVAL answer. Member order is fixed (not sorted):
/// response fragments are presentation, not cache keys, and a stable
/// schema-order read is friendlier to humans tailing the wire.
std::string eval_fragment(const model::AvailabilityResult& result) {
    std::string out;
    out.reserve(160);
    out += "{\"busy_period\":";
    append_json_number(result.busy_period, out);
    out += ",\"idle_period\":";
    append_json_number(result.idle_period, out);
    out += ",\"unavailability\":";
    append_json_number(result.unavailability, out);
    out += ",\"log_unavailability\":";
    append_json_number(result.log_unavailability, out);
    out += ",\"peers_per_busy_period\":";
    append_json_number(result.peers_per_busy_period, out);
    out += "}";
    return out;
}

const char* variable_word(PlanRequest::Variable variable) {
    switch (variable) {
        case PlanRequest::Variable::kSeedUptime:
            return "u";
        case PlanRequest::Variable::kPublisherBudget:
            return "r";
        case PlanRequest::Variable::kBundleSize:
            break;
    }
    return "k";
}

std::string plan_fragment(const PlanRequest& request, const PlanOutcome& outcome) {
    std::string out;
    out.reserve(256);
    out += "{\"variable\":\"";
    out += variable_word(request.variable);
    out += "\",\"feasible\":";
    append_bool(outcome.feasible, out);
    out += ",\"k\":";
    append_uint(outcome.bundle, out);
    out += ",\"value\":";
    // For a K plan the planned value IS the bundle size; publishing it under
    // "value" too gives clients one field to read regardless of variable.
    append_json_number(request.variable == PlanRequest::Variable::kBundleSize
                           ? static_cast<double>(outcome.bundle)
                           : outcome.value,
                       out);
    out += ",\"unavailability\":";
    append_json_number(outcome.achieved.unavailability, out);
    out += ",\"log_unavailability\":";
    append_json_number(outcome.achieved.log_unavailability, out);
    out += ",\"evaluations\":";
    append_uint(outcome.evaluations, out);
    out += "}";
    return out;
}

std::string refine_fragment(const RefineOutcome& outcome) {
    std::string out;
    out.reserve(512);
    out += "{\"arrivals\":";
    append_uint(outcome.arrivals, out);
    out += ",\"served\":";
    append_uint(outcome.served, out);
    out += ",\"lost\":";
    append_uint(outcome.lost, out);
    out += ",\"stranded\":";
    append_uint(outcome.stranded, out);
    out += ",\"demand_weighted_unavailability\":";
    append_json_number(outcome.demand_weighted_unavailability, out);
    out += ",\"mean_download_time\":";
    append_json_number(outcome.mean_download_time, out);
    out += ",\"demand_weighted_unavailable_time\":";
    append_json_number(outcome.demand_weighted_unavailable_time, out);
    out += ",\"mean_publisher_online_fraction\":";
    append_json_number(outcome.mean_publisher_online_fraction, out);
    out += ",\"expected_publisher_load\":";
    append_json_number(outcome.expected_publisher_load, out);
    out += ",\"publisher_up_transitions\":";
    append_uint(outcome.publisher_up_transitions, out);
    out += ",\"fingerprint\":\"";
    out += sim::fingerprint_hex(outcome.fingerprint);
    out += "\",\"swarms\":";
    append_uint(outcome.swarms, out);
    out += ",\"swarms_planned\":";
    append_uint(outcome.swarms_planned, out);
    out += ",\"stopped_early\":";
    append_bool(outcome.stopped_early, out);
    out += "}";
    return out;
}

/// Runs one catalog refinement: the deterministic sharded engine with the
/// fingerprint observer on. A StopRule forces serial execution so the
/// covered swarm prefix — and with it the cached outcome — is a pure
/// function of the request.
RefineOutcome run_refine(const RefineRequest& request, std::size_t refine_threads) {
    const catalog::Catalog cat = catalog::build_catalog(request.catalog);
    const auto policy = catalog::make_policy(request.policy, request.bundle);
    catalog::CatalogEngineConfig config;
    config.horizon = request.horizon;
    config.seed = request.seed;
    config.coverage_threshold = request.coverage_threshold;
    config.patient_peers = request.patient_peers;
    config.linger_time = request.linger_time;
    config.execution = catalog::ExecutionMode::kSharded;
    config.policy.threads = refine_threads == 0 ? 1 : refine_threads;
    if (request.stop_ci > 0.0) {
        config.stop_rule =
            telemetry::StopRule{request.stop_ci, request.stop_min_observations};
        config.policy = sim::ParallelPolicy::serial();
    }
    config.fingerprint = true;
    const catalog::CatalogReport report = run_catalog(cat, *policy, config);

    RefineOutcome outcome;
    outcome.arrivals = report.arrivals;
    outcome.served = report.served;
    outcome.lost = report.lost;
    outcome.stranded = report.stranded;
    outcome.demand_weighted_unavailability = report.demand_weighted_unavailability;
    outcome.mean_download_time = report.mean_download_time;
    outcome.demand_weighted_unavailable_time = report.demand_weighted_unavailable_time;
    outcome.mean_publisher_online_fraction = report.mean_publisher_online_fraction;
    outcome.expected_publisher_load = report.expected_publisher_load;
    outcome.publisher_up_transitions = report.publisher_up_transitions;
    outcome.fingerprint = report.fingerprint;
    outcome.swarms = report.swarms.size();
    outcome.swarms_planned = report.swarms_planned;
    outcome.stopped_early = report.stopped_early;
    return outcome;
}

/// {"id":N,}"ok":true,"verb":"...","result":<fragment>} — the id is
/// assembled per request around the shared cached fragment.
std::string success_response(const Request& request, const std::string& fragment) {
    std::string out;
    out.reserve(fragment.size() + 64);
    out += "{";
    if (request.has_id) {
        out += "\"id\":";
        append_uint(request.id, out);
        out += ",";
    }
    out += "\"ok\":true,\"verb\":\"";
    out += verb_name(request.verb);
    out += "\",\"result\":";
    out += fragment;
    out += "}";
    return out;
}

std::string error_payload(bool has_id, std::uint64_t id, std::string_view code,
                          std::string_view message) {
    std::string out;
    out.reserve(message.size() + 80);
    out += "{";
    if (has_id) {
        out += "\"id\":";
        append_uint(id, out);
        out += ",";
    }
    out += "\"ok\":false,\"error\":{\"code\":";
    append_json_string(code, out);
    out += ",\"message\":";
    append_json_string(message, out);
    out += "}}";
    return out;
}

/// Maps the cache's lookup report onto the span vocabulary. Unused when
/// spans are compiled out (the macro erases its one call site).
[[maybe_unused]] SpanCacheOutcome span_outcome(CacheLookup lookup) {
    switch (lookup) {
        case CacheLookup::kMiss:
            return SpanCacheOutcome::kMiss;
        case CacheLookup::kCoalesced:
            return SpanCacheOutcome::kCoalesced;
        case CacheLookup::kHit:
            break;
    }
    return SpanCacheOutcome::kHit;
}

void append_counter(std::string& out, std::string_view name, std::string_view help,
                    std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += " ";
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += " ";
    append_uint(value, out);
    out += "\n";
}

}  // namespace

RequestRouter::RequestRouter(RouterConfig config)
    : config_(std::move(config)),
      model_cache_(config_.model_cache_entries),
      refine_cache_(config_.refine_cache_entries) {}

std::string RequestRouter::error_response(std::string_view code,
                                          std::string_view message) {
    return error_payload(false, 0, code, message);
}

std::uint64_t RequestRouter::requests(Verb verb) const noexcept {
    return requests_[static_cast<std::size_t>(verb)].load(std::memory_order_relaxed);
}

std::uint64_t RequestRouter::errors() const noexcept {
    return errors_.load(std::memory_order_relaxed);
}

void RequestRouter::set_stats_appender(std::function<void(std::string&)> appender) {
    stats_appender_ = std::move(appender);
}

std::string RequestRouter::handle(const Request& request, ServeError& error,
                                  bool& ok,
                                  [[maybe_unused]] RequestSpans* spans) {
    ok = true;
    switch (request.verb) {
        case Verb::kPing:
            return "{\"service\":\"swarmavail-planning\",\"protocol\":1}";
        case Verb::kEval: {
            SWARMAVAIL_SPAN(spans, begin(SpanStage::kCache));
            const std::string key = canonical_eval_key(request.eval);
            CacheLookup lookup = CacheLookup::kHit;
            std::string fragment = model_cache_.get_or_compute(
                key,
                [&] {
                    SWARMAVAIL_SPAN(spans, begin(SpanStage::kCompute));
                    std::string out = eval_fragment(evaluate_model(request.eval));
                    SWARMAVAIL_SPAN(spans, end(SpanStage::kCompute));
                    return out;
                },
                &lookup);
            SWARMAVAIL_SPAN(spans, end(SpanStage::kCache));
            SWARMAVAIL_SPAN(spans, set_cache(span_outcome(lookup)));
            return fragment;
        }
        case Verb::kPlan: {
            SWARMAVAIL_SPAN(spans, begin(SpanStage::kCache));
            const std::string key = canonical_plan_key(request.plan);
            CacheLookup lookup = CacheLookup::kHit;
            std::string fragment = model_cache_.get_or_compute(
                key,
                [&] {
                    SWARMAVAIL_SPAN(spans, begin(SpanStage::kCompute));
                    std::string out =
                        plan_fragment(request.plan, run_plan(request.plan));
                    SWARMAVAIL_SPAN(spans, end(SpanStage::kCompute));
                    return out;
                },
                &lookup);
            SWARMAVAIL_SPAN(spans, end(SpanStage::kCache));
            SWARMAVAIL_SPAN(spans, set_cache(span_outcome(lookup)));
            return fragment;
        }
        case Verb::kRefine: {
            SWARMAVAIL_SPAN(spans, begin(SpanStage::kCache));
            const std::string key = canonical_refine_key(request.refine);
            const std::size_t threads = config_.refine_threads;
            CacheLookup lookup = CacheLookup::kHit;
            const RefineOutcome outcome = refine_cache_.get_or_compute(
                key,
                [&] {
                    SWARMAVAIL_SPAN(spans, begin(SpanStage::kCompute));
                    RefineOutcome computed = run_refine(request.refine, threads);
                    refine_fingerprint_xor_.fetch_xor(computed.fingerprint,
                                                      std::memory_order_relaxed);
                    SWARMAVAIL_SPAN(spans, end(SpanStage::kCompute));
                    return computed;
                },
                &lookup);
            SWARMAVAIL_SPAN(spans, end(SpanStage::kCache));
            SWARMAVAIL_SPAN(spans, set_cache(span_outcome(lookup)));
            return refine_fragment(outcome);
        }
        case Verb::kStats: {
            std::string text = "{\"prometheus\":";
            append_json_string(render_stats(), text);
            text += "}";
            return text;
        }
    }
    ok = false;
    error = {std::string(error_code::kInternal), "unhandled verb"};
    return {};
}

RouteResult RequestRouter::route(std::string_view payload) {
    return route(payload, nullptr);
}

RouteResult RequestRouter::route(std::string_view payload, RequestSpans* spans) {
    RouteResult result;
    ServeError error;
    Request request;
    bool parsed = false;

    SWARMAVAIL_SPAN(spans, begin(SpanStage::kParse));
    if (!validate_utf8(payload)) {
        error = {std::string(error_code::kBadUtf8),
                 "request payload is not valid UTF-8"};
    } else {
        JsonValue value;
        std::string json_error;
        if (!parse_json(payload, value, &json_error, config_.json_limits)) {
            error = {std::string(error_code::kBadJson), json_error};
        } else if (parse_request(value, config_.policy, request, error)) {
            parsed = true;
        }
        // parse_request reads "id" before the per-verb members, so even a
        // failed parse echoes the id when one was present and in range.
    }
    SWARMAVAIL_SPAN(spans, end(SpanStage::kParse, payload.size()));

    if (parsed) {
        requests_[static_cast<std::size_t>(request.verb)].fetch_add(
            1, std::memory_order_relaxed);
        result.verb = request.verb;
        try {
            bool ok = true;
            std::string fragment = handle(request, error, ok, spans);
            if (ok) {
                result.ok = true;
                SWARMAVAIL_SPAN(spans, begin(SpanStage::kSerialize));
                result.payload = success_response(request, fragment);
                SWARMAVAIL_SPAN(spans,
                                end(SpanStage::kSerialize, result.payload.size()));
                return result;
            }
        } catch (const std::invalid_argument& e) {
            // Engine-layer contract violation the request checks let through
            // (e.g. a parameter combination the model rejects).
            error = {std::string(error_code::kOutOfRange), e.what()};
        } catch (const std::exception& e) {
            error = {std::string(error_code::kInternal), e.what()};
        }
    }

    errors_.fetch_add(1, std::memory_order_relaxed);
    result.ok = false;
    SWARMAVAIL_SPAN(spans, begin(SpanStage::kSerialize));
    result.payload = error_payload(request.has_id, request.id, error.code,
                                   error.message);
    SWARMAVAIL_SPAN(spans, end(SpanStage::kSerialize, result.payload.size()));
    return result;
}

std::string RequestRouter::render_stats() const {
    std::string out;
    out.reserve(2048);

    out += "# HELP swarmavail_server_requests_total Requests routed, by verb.\n";
    out += "# TYPE swarmavail_server_requests_total counter\n";
    for (std::size_t i = 0; i < kVerbCount; ++i) {
        out += "swarmavail_server_requests_total{verb=\"";
        out += verb_label(static_cast<Verb>(i));
        out += "\"} ";
        append_uint(requests_[i].load(std::memory_order_relaxed), out);
        out += "\n";
    }
    append_counter(out, "swarmavail_server_errors_total",
                   "Requests answered with a structured error.", errors());
    append_counter(out, "swarmavail_server_model_cache_hits_total",
                   "EVAL/PLAN answers served from the warm fragment cache.",
                   model_cache_.hits());
    append_counter(out, "swarmavail_server_model_cache_misses_total",
                   "EVAL/PLAN answers computed from the closed-form models.",
                   model_cache_.misses());
    append_counter(out, "swarmavail_server_model_cache_evictions_total",
                   "Model fragments dropped by the FIFO capacity bound.",
                   model_cache_.evictions());
    append_counter(out, "swarmavail_server_model_cache_coalesced_total",
                   "EVAL/PLAN requests that joined an in-flight computation "
                   "(single-flight).",
                   model_cache_.coalesced());
    append_counter(out, "swarmavail_server_refine_cache_hits_total",
                   "REFINE answers served from the catalog cache.",
                   refine_cache_.hits());
    append_counter(out, "swarmavail_server_refine_cache_misses_total",
                   "REFINE answers computed by the catalog engine.",
                   refine_cache_.misses());
    append_counter(out, "swarmavail_server_refine_cache_evictions_total",
                   "Refine outcomes dropped by the FIFO capacity bound.",
                   refine_cache_.evictions());
    append_counter(out, "swarmavail_server_refine_cache_coalesced_total",
                   "REFINE requests that joined an in-flight simulation "
                   "(single-flight).",
                   refine_cache_.coalesced());

    out += "# HELP swarmavail_server_model_cache_entries Entries held by the "
           "model fragment cache.\n";
    out += "# TYPE swarmavail_server_model_cache_entries gauge\n";
    out += "swarmavail_server_model_cache_entries ";
    append_uint(model_cache_.size(), out);
    out += "\n";
    out += "# HELP swarmavail_server_refine_cache_entries Entries held by the "
           "catalog cache.\n";
    out += "# TYPE swarmavail_server_refine_cache_entries gauge\n";
    out += "swarmavail_server_refine_cache_entries ";
    append_uint(refine_cache_.size(), out);
    out += "\n";

    if (stats_appender_) {
        stats_appender_(out);
    }
    return out;
}

}  // namespace swarmavail::serve
