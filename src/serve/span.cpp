#include "serve/span.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/error.hpp"
#include "util/table.hpp"

namespace swarmavail::serve {

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
    throw std::invalid_argument("span parse error at line " +
                                std::to_string(line_no) + ": " + why);
}

/// Minimal scanner over one JSONL line as emitted by JsonlSpanSink. Like
/// sim/trace.cpp's reader, it only accepts the writer's own shape, which
/// keeps the round-trip contract narrow and testable.
class SpanLineScanner {
 public:
    SpanLineScanner(std::string_view line, std::size_t line_no)
        : line_(line), line_no_(line_no) {}

    void expect(char ch) {
        if (pos_ >= line_.size() || line_[pos_] != ch) {
            parse_fail(line_no_, std::string("expected '") + ch + "'");
        }
        ++pos_;
    }

    void expect_key(std::string_view key) {
        expect('"');
        if (line_.substr(pos_, key.size()) != key) {
            parse_fail(line_no_, "expected key \"" + std::string(key) + "\"");
        }
        pos_ += key.size();
        expect('"');
        expect(':');
    }

    [[nodiscard]] double read_double() {
        double value = 0.0;
        const char* begin = line_.data() + pos_;
        const char* end = line_.data() + line_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{}) {
            parse_fail(line_no_, "bad number");
        }
        pos_ = static_cast<std::size_t>(ptr - line_.data());
        return value;
    }

    [[nodiscard]] std::uint64_t read_u64() {
        std::uint64_t value = 0;
        const char* begin = line_.data() + pos_;
        const char* end = line_.data() + line_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{}) {
            parse_fail(line_no_, "bad integer");
        }
        pos_ = static_cast<std::size_t>(ptr - line_.data());
        return value;
    }

    /// Reads a bare name between quotes (stage and cache-outcome names
    /// contain no escapes by construction).
    [[nodiscard]] std::string_view read_name() {
        expect('"');
        const std::size_t start = pos_;
        while (pos_ < line_.size() && line_[pos_] != '"') {
            ++pos_;
        }
        if (pos_ >= line_.size()) {
            parse_fail(line_no_, "unterminated string");
        }
        const std::string_view name = line_.substr(start, pos_ - start);
        ++pos_;
        return name;
    }

    void expect_end() {
        if (pos_ != line_.size()) {
            parse_fail(line_no_, "trailing characters");
        }
    }

 private:
    std::string_view line_;
    std::size_t line_no_;
    std::size_t pos_ = 0;
};

}  // namespace

void NullSpanSink::write(const SpanRecord* records, std::size_t count) {
    static_cast<void>(records);
    static_cast<void>(count);
}

void MemorySpanSink::write(const SpanRecord* records, std::size_t count) {
    records_.insert(records_.end(), records, records + count);
}

void JsonlSpanSink::write(const SpanRecord* records, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
        const SpanRecord& r = records[i];
        os_ << "{\"request\":" << r.request << ",\"conn\":" << r.connection
            << ",\"stage\":\"" << span_stage_name(static_cast<SpanStage>(r.stage))
            << "\",\"verb\":" << r.verb << ",\"lane\":" << r.lane
            << ",\"worker\":" << r.worker
            << ",\"t0\":" << format_double_exact(r.t_start)
            << ",\"t1\":" << format_double_exact(r.t_end)
            << ",\"bytes\":" << r.bytes << ",\"cache\":\""
            << span_cache_outcome_name(static_cast<SpanCacheOutcome>(r.cache))
            << "\"}\n";
    }
}

void JsonlSpanSink::finish() { os_.flush(); }

std::vector<SpanRecord> read_spans_jsonl(std::istream& in) {
    std::vector<SpanRecord> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        SpanLineScanner scan(line, line_no);
        SpanRecord r;
        scan.expect('{');
        scan.expect_key("request");
        r.request = scan.read_u64();
        scan.expect(',');
        scan.expect_key("conn");
        r.connection = scan.read_u64();
        scan.expect(',');
        scan.expect_key("stage");
        const std::string_view stage_name = scan.read_name();
        SpanStage stage = SpanStage::kAccept;
        if (!span_stage_from_name(stage_name, stage)) {
            parse_fail(line_no, "unknown stage '" + std::string(stage_name) + "'");
        }
        r.stage = static_cast<std::uint16_t>(stage);
        scan.expect(',');
        scan.expect_key("verb");
        r.verb = static_cast<std::uint16_t>(scan.read_u64());
        scan.expect(',');
        scan.expect_key("lane");
        r.lane = static_cast<std::uint16_t>(scan.read_u64());
        scan.expect(',');
        scan.expect_key("worker");
        r.worker = static_cast<std::uint16_t>(scan.read_u64());
        scan.expect(',');
        scan.expect_key("t0");
        r.t_start = scan.read_double();
        scan.expect(',');
        scan.expect_key("t1");
        r.t_end = scan.read_double();
        scan.expect(',');
        scan.expect_key("bytes");
        r.bytes = scan.read_u64();
        scan.expect(',');
        scan.expect_key("cache");
        const std::string_view cache_name = scan.read_name();
        SpanCacheOutcome outcome = SpanCacheOutcome::kNone;
        if (!span_cache_outcome_from_name(cache_name, outcome)) {
            parse_fail(line_no,
                       "unknown cache outcome '" + std::string(cache_name) + "'");
        }
        r.cache = static_cast<std::uint32_t>(outcome);
        scan.expect('}');
        scan.expect_end();
        out.push_back(r);
    }
    return out;
}

SpanHub::SpanHub(SpanHubConfig config, SpanSink* slow_sink)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      slow_sink_(slow_sink) {
    require(config_.rings >= 1, "SpanHub: needs at least one ring");
    require(config_.ring_capacity >= 1, "SpanHub: ring_capacity must be >= 1");
    rings_.reserve(config_.rings);
    for (std::size_t i = 0; i < config_.rings; ++i) {
        auto ring = std::make_unique<Ring>();
        ring->records.resize(config_.ring_capacity);
        rings_.push_back(std::move(ring));
    }
}

void SpanHub::append_locked(Ring& ring, const SpanRecord& record) {
    if (ring.wrapped) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    ring.records[ring.next] = record;
    ring.next += 1;
    if (ring.next == ring.records.size()) {
        ring.next = 0;
        ring.wrapped = true;
    }
    emitted_.fetch_add(1, std::memory_order_relaxed);
}

void SpanHub::emit(std::size_t ring_index, const SpanRecord& record) {
    require(ring_index < rings_.size(), "SpanHub: ring index out of range");
    Ring& ring = *rings_[ring_index];
    std::unique_lock<std::mutex> lock(ring.mutex);
    append_locked(ring, record);
}

void SpanHub::finish_request(std::size_t ring_index, const SpanRecord* records,
                             std::size_t count, double total_seconds) {
    require(ring_index < rings_.size(), "SpanHub: ring index out of range");
    {
        Ring& ring = *rings_[ring_index];
        std::unique_lock<std::mutex> lock(ring.mutex);
        for (std::size_t i = 0; i < count; ++i) {
            append_locked(ring, records[i]);
        }
    }
    if (slow_sink_ != nullptr && config_.slow_threshold_s > 0.0 &&
        total_seconds >= config_.slow_threshold_s) {
        std::unique_lock<std::mutex> lock(slow_mutex_);
        slow_sink_->write(records, count);
        slow_.fetch_add(1, std::memory_order_relaxed);
    }
}

void SpanHub::drain(SpanSink& sink) {
    for (const std::unique_ptr<Ring>& ring_ptr : rings_) {
        Ring& ring = *ring_ptr;
        std::unique_lock<std::mutex> lock(ring.mutex);
        if (ring.wrapped) {
            sink.write(ring.records.data() + ring.next,
                       ring.records.size() - ring.next);
            sink.write(ring.records.data(), ring.next);
        } else if (ring.next > 0) {
            sink.write(ring.records.data(), ring.next);
        }
        ring.next = 0;
        ring.wrapped = false;
    }
    sink.finish();
}

}  // namespace swarmavail::serve
