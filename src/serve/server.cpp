#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "serve/json.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::serve {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Latency histogram shape shared by every per-worker slot (shapes must
/// match for the index-order merge): log2 bins from 100 ns to 10 s.
constexpr double kLatencyLo = 1.0e-7;
constexpr double kLatencyHi = 10.0;
constexpr std::size_t kLatencyBins = 27;

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void close_fd(int& fd) noexcept {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw_errno("fcntl(O_NONBLOCK)");
    }
}

/// Writes one byte; async-signal-safe, best-effort (a full pipe already
/// guarantees the reader will wake).
void poke(int fd) noexcept {
    if (fd >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

void drain_pipe(int fd) noexcept {
    std::array<char, 64> sink{};
    while (::read(fd, sink.data(), sink.size()) > 0) {
    }
}

std::string histogram_metric_name(Verb verb) {
    return "server.latency_s." + std::string(verb_label(verb));
}

std::string stage_metric_name(SpanStage stage) {
    return "server.stage_s." + std::string(span_stage_name(stage));
}

}  // namespace

/// One client connection. The io thread owns the read side; workers write
/// responses under write_mutex. The fd closes when the last reference
/// (io map or in-flight task) drops, so a write never races a close.
struct PlanningServer::Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::mutex write_mutex;
    std::uint64_t id = 0;  ///< accept-order id (spans correlate on it)
    bool broken = false;  ///< decoder poisoned or peer gone (io thread only)

    explicit Connection(int socket_fd, const ProtocolLimits& limits)
        : fd(socket_fd), decoder(limits) {}
    ~Connection() {
        if (fd >= 0) {
            ::close(fd);
        }
    }
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;
};

PlanningServer::PlanningServer(ServerConfig config)
    : config_(std::move(config)),
      router_(config_.router),
      queues_(config_.max_inflight) {
    SWARMAVAIL_REQUIRE(config_.threads >= 1,
                       "PlanningServer: requires at least one worker thread");
    router_.set_stats_appender([this](std::string& out) { append_server_stats(out); });
}

PlanningServer::~PlanningServer() { stop(); }

void PlanningServer::start() {
    SWARMAVAIL_REQUIRE(!started_, "PlanningServer: start() called twice");

    if (::pipe(wake_pipe_) != 0 || ::pipe(stop_pipe_) != 0) {
        throw_errno("pipe");
    }
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(stop_pipe_[0]);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw_errno("socket");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback-only service
    addr.sin_port = htons(config_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        throw_errno("bind");
    }
    if (::listen(listen_fd_, 64) != 0) {
        throw_errno("listen");
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
    set_nonblocking(listen_fd_);

    if (!config_.prom_out.empty()) {
        prom_exporter_ =
            std::make_unique<telemetry::PrometheusTextExporter>(config_.prom_out);
        telemetry::TelemetryConfig telemetry_config;
        telemetry_config.interval_s = config_.prom_interval_s;
        telemetry_config.exporters = {prom_exporter_.get()};
        telemetry_ = std::make_unique<telemetry::TelemetrySession>(telemetry_config);
        telemetry_->start();
    }

    // Lane plan: one worker prefers the model lane; with T >= 2 the pool
    // splits into max(1, T/2) sim-preferring workers and model-only ones,
    // so model-path queries never queue behind a simulation.
    const std::size_t threads = config_.threads;
    std::vector<PopMode> modes;
    if (threads == 1) {
        modes.push_back(PopMode::kPreferModel);
    } else {
        const std::size_t sim_workers = threads / 2 == 0 ? 1 : threads / 2;
        for (std::size_t i = 0; i < threads; ++i) {
            modes.push_back(i < sim_workers ? PopMode::kPreferSim
                                            : PopMode::kModelOnly);
        }
    }

    slots_.clear();
    slots_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        auto slot = std::make_unique<WorkerSlot>();
        for (std::size_t v = 0; v < kVerbCount; ++v) {
            slot->latency[v] = &slot->registry.histogram(
                histogram_metric_name(static_cast<Verb>(v)), kLatencyLo, kLatencyHi,
                kLatencyBins, HistogramScale::kLog2);
        }
        // Stage histograms exist in every build and run (all-zero when
        // spans are off) so the STATS exposition keeps one shape; kAccept
        // is a point event on the io thread and has no histogram.
        for (std::size_t s = 1; s < kSpanStageCount; ++s) {
            slot->stage[s] = &slot->registry.histogram(
                stage_metric_name(static_cast<SpanStage>(s)), kLatencyLo,
                kLatencyHi, kLatencyBins, HistogramScale::kLog2);
        }
        slots_.push_back(std::move(slot));
    }

#if !defined(SWARMAVAIL_SPANS_DISABLED)
    const bool want_spans =
        config_.spans || config_.slow_query_seconds > 0.0 ||
        !config_.span_out.empty() || !config_.slow_query_log.empty() ||
        config_.span_sink != nullptr || config_.slow_query_sink != nullptr;
    if (want_spans) {
        if (!config_.span_out.empty() && config_.span_sink == nullptr) {
            span_out_stream_ = std::make_unique<std::ofstream>(config_.span_out);
            if (!*span_out_stream_) {
                throw std::runtime_error("PlanningServer: cannot open span log " +
                                         config_.span_out);
            }
            span_out_sink_ = std::make_unique<JsonlSpanSink>(*span_out_stream_);
        }
        SpanSink* slow = config_.slow_query_sink;
        if (slow == nullptr && !config_.slow_query_log.empty()) {
            slow_log_stream_ =
                std::make_unique<std::ofstream>(config_.slow_query_log);
            if (!*slow_log_stream_) {
                throw std::runtime_error(
                    "PlanningServer: cannot open slow-query log " +
                    config_.slow_query_log);
            }
            slow_log_sink_ = std::make_unique<JsonlSpanSink>(*slow_log_stream_);
            slow = slow_log_sink_.get();
        }
        SpanHubConfig hub_config;
        hub_config.rings = threads + 1;  // ring 0 = io thread
        hub_config.ring_capacity = config_.span_ring_capacity;
        hub_config.slow_threshold_s = config_.slow_query_seconds;
        span_hub_ = std::make_unique<SpanHub>(hub_config, slow);
        span_hub_->set_enabled(true);
    }
#endif

    started_ = true;
    stopped_ = false;
    io_thread_ = std::thread([this] { io_loop(); });
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i, mode = modes[i]] { worker_loop(i, mode); });
    }
}

void PlanningServer::request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_release);
    poke(wake_pipe_[1]);
    poke(stop_pipe_[1]);
}

void PlanningServer::wait_until_stop_requested() {
    while (!stop_requested_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = stop_pipe_[0];
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, 500);
        if (rc > 0) {
            drain_pipe(stop_pipe_[0]);
        }
    }
}

void PlanningServer::stop() {
    if (!started_ || stopped_) {
        return;
    }
    stopped_ = true;

    // 1. Stop intake: wake the io thread, which closes the listening
    //    socket and stops reading connections, then join it.
    request_stop();
    if (io_thread_.joinable()) {
        io_thread_.join();
    }
    // 2. Finish in-flight work: close the queue (no more pushes, queued
    //    tasks keep draining) and join the workers.
    queues_.close();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    workers_.clear();
#if !defined(SWARMAVAIL_SPANS_DISABLED)
    // Producers are quiesced: drain the span rings (index order) into the
    // configured sink, then release the file-backed sinks.
    if (span_hub_ != nullptr) {
        if (config_.span_sink != nullptr) {
            span_hub_->drain(*config_.span_sink);
        } else if (span_out_sink_ != nullptr) {
            span_hub_->drain(*span_out_sink_);
        }
        span_hub_.reset();
        span_out_sink_.reset();
        span_out_stream_.reset();
        slow_log_sink_.reset();
        slow_log_stream_.reset();
    }
#endif
    // 3. Flush exporters: the final snapshot rewrites --prom-out.
    if (telemetry_ != nullptr) {
        publish_telemetry();
        telemetry_->stop();
        telemetry_.reset();
        prom_exporter_.reset();
    }
    // 4. Close every socket (responses are all written by now).
    connections_.clear();
    close_fd(listen_fd_);
    close_fd(wake_pipe_[0]);
    close_fd(wake_pipe_[1]);
    close_fd(stop_pipe_[0]);
    close_fd(stop_pipe_[1]);
    started_ = false;
}

void PlanningServer::send_frame(Connection& connection, std::string_view payload) {
    const std::string frame = encode_frame(payload);
    std::unique_lock<std::mutex> lock(connection.write_mutex);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(connection.fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;  // peer vanished; nothing useful to do with the error
        }
        sent += static_cast<std::size_t>(n);
    }
}

void PlanningServer::handle_frames(const std::shared_ptr<Connection>& connection) {
    std::string payload;
    std::string decode_error;
#if !defined(SWARMAVAIL_SPANS_DISABLED)
    SpanHub* hub = (span_hub_ != nullptr && span_hub_->enabled())
                       ? span_hub_.get()
                       : nullptr;
#endif
    while (true) {
        double decode_t0 = 0.0;
        double decode_t1 = 0.0;
#if !defined(SWARMAVAIL_SPANS_DISABLED)
        if (hub != nullptr) {
            decode_t0 = hub->now();
        }
#endif
        const FrameDecoder::Status status =
            connection->decoder.next(payload, decode_error);
        if (status == FrameDecoder::Status::kNeedMore) {
            return;
        }
        if (status == FrameDecoder::Status::kError) {
            // Framing is unrecoverable: answer once, then drop the
            // connection (the decoder stays poisoned).
            bad_frames_.fetch_add(1, std::memory_order_relaxed);
            send_frame(*connection,
                       RequestRouter::error_response(error_code::kBadFrame,
                                                     decode_error));
            connection->broken = true;
            return;
        }
#if !defined(SWARMAVAIL_SPANS_DISABLED)
        if (hub != nullptr) {
            decode_t1 = hub->now();
        }
#else
        static_cast<void>(decode_t0);
        static_cast<void>(decode_t1);
#endif
        const Lane lane = classify_lane(payload);
        Task task{connection, std::move(payload)};
#if !defined(SWARMAVAIL_SPANS_DISABLED)
        if (hub != nullptr) {
            task.request_index = hub->next_request();
            task.connection_id = connection->id;
            task.decode_t0 = decode_t0;
            task.decode_t1 = decode_t1;
            task.enqueue_t = hub->now();
        }
#endif
        if (!queues_.try_push(lane, std::move(task))) {
            overloaded_.fetch_add(1, std::memory_order_relaxed);
            send_frame(*connection,
                       RequestRouter::error_response(
                           error_code::kOverloaded,
                           "request queue is full; retry after in-flight "
                           "requests drain"));
        }
        payload.clear();
        publish_telemetry();
    }
}

void PlanningServer::io_loop() {
    std::vector<pollfd> pollfds;
    std::array<char, kReadChunk> buffer{};

    while (!stop_requested_.load(std::memory_order_acquire)) {
        pollfds.clear();
        pollfds.push_back({wake_pipe_[0], POLLIN, 0});
        pollfds.push_back({listen_fd_, POLLIN, 0});
        for (const auto& connection : connections_) {
            pollfds.push_back({connection->fd, POLLIN, 0});
        }
        const int rc = ::poll(pollfds.data(), pollfds.size(), 1000);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if ((pollfds[0].revents & POLLIN) != 0) {
            drain_pipe(wake_pipe_[0]);
            continue;  // re-check the stop flag
        }
        // Connections accepted below were not part of this round's poll;
        // only the first `polled` entries of connections_ have revents.
        const std::size_t polled = pollfds.size() - 2;
        if ((pollfds[1].revents & POLLIN) != 0) {
            while (true) {
                const int client = ::accept(listen_fd_, nullptr, nullptr);
                if (client < 0) {
                    break;  // EAGAIN: accepted everything pending
                }
                const std::uint64_t id =
                    accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
                auto connection =
                    std::make_shared<Connection>(client, config_.protocol);
                connection->id = id;
#if !defined(SWARMAVAIL_SPANS_DISABLED)
                if (span_hub_ != nullptr && span_hub_->enabled()) {
                    SpanRecord record{};
                    record.connection = id;
                    record.stage =
                        static_cast<std::uint16_t>(SpanStage::kAccept);
                    record.t_start = span_hub_->now();
                    record.t_end = record.t_start;
                    span_hub_->emit(0, record);
                }
#endif
                connections_.push_back(std::move(connection));
            }
        }
        for (std::size_t i = 0; i < polled; ++i) {
            const short revents = pollfds[i + 2].revents;
            if (revents == 0) {
                continue;
            }
            const std::shared_ptr<Connection>& connection = connections_[i];
            if ((revents & POLLIN) != 0) {
                const ssize_t n = ::recv(connection->fd, buffer.data(),
                                         buffer.size(), 0);
                if (n > 0) {
                    connection->decoder.feed(
                        std::string_view(buffer.data(), static_cast<std::size_t>(n)));
                    handle_frames(connection);
                } else if (n == 0) {
                    // EOF. Bytes stuck mid-frame mean the client truncated a
                    // frame; it may still be reading (shutdown(SHUT_WR)), so
                    // answer before dropping the connection.
                    if (!connection->broken &&
                        connection->decoder.pending_bytes() > 0) {
                        bad_frames_.fetch_add(1, std::memory_order_relaxed);
                        send_frame(*connection,
                                   RequestRouter::error_response(
                                       error_code::kBadFrame,
                                       "connection closed inside a frame "
                                       "(truncated payload)"));
                    }
                    connection->broken = true;
                } else if (errno != EINTR && errno != EAGAIN) {
                    connection->broken = true;
                }
            }
            if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
                connection->broken = true;
            }
        }
        // Drop broken connections; in-flight tasks keep their Connection
        // alive until the response is written.
        std::size_t kept = 0;
        for (auto& connection : connections_) {
            if (!connection->broken) {
                connections_[kept++] = std::move(connection);
            }
        }
        connections_.resize(kept);
    }
    // Stop accepting immediately; established connections stay open until
    // stop() finished draining the queue.
    close_fd(listen_fd_);
}

void PlanningServer::worker_loop(std::size_t slot_index, PopMode mode) {
    WorkerSlot& slot = *slots_[slot_index];
    Task task;
    while (queues_.pop(mode, task)) {
        const auto started = std::chrono::steady_clock::now();
#if !defined(SWARMAVAIL_SPANS_DISABLED)
        SpanHub* hub = (span_hub_ != nullptr && span_hub_->enabled() &&
                        task.request_index != 0)
                           ? span_hub_.get()
                           : nullptr;
        RequestSpans spans;
        RequestSpans* spans_ptr = nullptr;
        if (hub != nullptr) {
            spans.set_epoch(hub->epoch());
            spans.note(SpanStage::kDecode, task.decode_t0, task.decode_t1,
                       task.payload.size());
            spans.note(SpanStage::kQueueWait, task.enqueue_t, hub->now());
            spans_ptr = &spans;
        }
        const RouteResult result = router_.route(task.payload, spans_ptr);
#else
        const RouteResult result = router_.route(task.payload);
#endif
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        {
            std::unique_lock<std::mutex> lock(slot.mutex);
            slot.latency[static_cast<std::size_t>(result.verb)]->add(seconds);
        }
#if !defined(SWARMAVAIL_SPANS_DISABLED)
        double write_t0 = 0.0;
        if (hub != nullptr) {
            write_t0 = hub->now();
        }
#endif
        send_frame(*task.connection, result.payload);
#if !defined(SWARMAVAIL_SPANS_DISABLED)
        if (hub != nullptr) {
            spans.note(SpanStage::kWrite, write_t0, hub->now(),
                       result.payload.size());
            finish_request_spans(slot, slot_index, task, result.verb, spans);
        }
#endif
        task.connection.reset();
        publish_telemetry();
    }
}

#if !defined(SWARMAVAIL_SPANS_DISABLED)
void PlanningServer::finish_request_spans(WorkerSlot& slot, std::size_t slot_index,
                                          const Task& task, Verb verb,
                                          const RequestSpans& spans) {
    const auto worker = static_cast<std::uint16_t>(slot_index + 1);
    const auto verb_id = static_cast<std::uint16_t>(verb);
    const auto lane_id = static_cast<std::uint16_t>(lane_of(verb));

    SpanRecord records[kSpanStageCount];
    std::size_t count = 0;
    for (std::size_t s = 0; s < kSpanStageCount; ++s) {
        const auto stage = static_cast<SpanStage>(s);
        if (!spans.has(stage)) {
            continue;
        }
        SpanRecord& record = records[count++];
        record = SpanRecord{};
        record.request = task.request_index;
        record.connection = task.connection_id;
        record.t_start = spans.t0[s];
        record.t_end = spans.t1[s];
        record.bytes = spans.stage_bytes[s];
        record.stage = static_cast<std::uint16_t>(s);
        record.verb = verb_id;
        record.lane = lane_id;
        record.worker = worker;
        record.cache = spans.cache;
    }

    // Feed the per-stage histograms; the cache probe excludes the compute
    // it brackets, so probe cost and compute cost separate cleanly.
    {
        std::unique_lock<std::mutex> lock(slot.mutex);
        for (std::size_t i = 0; i < count; ++i) {
            const SpanRecord& record = records[i];
            HistogramMetric* histogram = slot.stage[record.stage];
            if (histogram == nullptr) {
                continue;
            }
            double duration = record.t_end - record.t_start;
            if (record.stage == static_cast<std::uint16_t>(SpanStage::kCache)) {
                duration -= spans.duration(SpanStage::kCompute);
            }
            histogram->add(duration < 0.0 ? 0.0 : duration);
        }
    }

    // End-to-end latency (decode start -> write end) drives the
    // slow-query funnel.
    const double total = spans.has(SpanStage::kDecode)
                             ? spans.t1[static_cast<std::size_t>(
                                   SpanStage::kWrite)] -
                                   spans.t0[static_cast<std::size_t>(
                                       SpanStage::kDecode)]
                             : 0.0;
    span_hub_->finish_request(worker, records, count, total);
}
#endif

void PlanningServer::publish_telemetry() {
    if (telemetry_ == nullptr) {
        return;
    }
    telemetry::RunCounters& counters = telemetry_->counters();
    std::uint64_t handled = 0;
    for (std::size_t v = 0; v < kVerbCount; ++v) {
        handled += router_.requests(static_cast<Verb>(v));
    }
    counters.events_dispatched.store(handled, std::memory_order_relaxed);
    counters.queue_depth.store(
        static_cast<double>(queues_.depth(Lane::kModel) + queues_.depth(Lane::kSim)),
        std::memory_order_relaxed);
    counters.fingerprint_xor.store(router_.refine_fingerprint_xor(),
                                   std::memory_order_relaxed);
}

void PlanningServer::append_server_stats(std::string& out) {
    out += "# HELP swarmavail_server_connections_accepted_total Connections "
           "accepted since start.\n";
    out += "# TYPE swarmavail_server_connections_accepted_total counter\n";
    out += "swarmavail_server_connections_accepted_total " +
           std::to_string(connections_accepted()) + "\n";
    out += "# HELP swarmavail_server_overloaded_total Requests rejected because "
           "a lane was at --max-inflight.\n";
    out += "# TYPE swarmavail_server_overloaded_total counter\n";
    out += "swarmavail_server_overloaded_total " + std::to_string(overloaded()) + "\n";
    out += "# HELP swarmavail_server_bad_frames_total Connections dropped for "
           "unrecoverable framing.\n";
    out += "# TYPE swarmavail_server_bad_frames_total counter\n";
    out += "swarmavail_server_bad_frames_total " +
           std::to_string(bad_frames_.load(std::memory_order_relaxed)) + "\n";

    out += "# HELP swarmavail_server_queue_depth Queued requests, by lane.\n";
    out += "# TYPE swarmavail_server_queue_depth gauge\n";
    out += "swarmavail_server_queue_depth{lane=\"model\"} " +
           std::to_string(queues_.depth(Lane::kModel)) + "\n";
    out += "swarmavail_server_queue_depth{lane=\"sim\"} " +
           std::to_string(queues_.depth(Lane::kSim)) + "\n";

    // Per-verb latency histograms, merged over the single-owner worker
    // slots in index order (the registry merge discipline).
    for (std::size_t v = 0; v < kVerbCount; ++v) {
        HistogramMetric merged(kLatencyLo, kLatencyHi, kLatencyBins,
                               HistogramScale::kLog2);
        for (const auto& slot : slots_) {
            std::unique_lock<std::mutex> lock(slot->mutex);
            merged.merge(*slot->latency[v]);
        }
        const std::string family = "swarmavail_server_latency_seconds_" +
                                   std::string(verb_label(static_cast<Verb>(v)));
        out += "# HELP " + family + " Request latency, seconds.\n";
        out += "# TYPE " + family + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t bin = 0; bin < merged.bins(); ++bin) {
            cumulative += merged.bin_count(bin);
            out += family + "_bucket{le=\"" + format_double_exact(merged.bin_hi(bin)) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        out += family + "_bucket{le=\"+Inf\"} " + std::to_string(merged.total()) +
               "\n";
        out += family + "_sum " + format_double_exact(merged.stats().sum()) + "\n";
        out += family + "_count " + std::to_string(merged.total()) + "\n";
    }

    // Per-stage latency histograms, same merge discipline. Fed by request
    // spans; present (all-zero) even when spans are off or compiled out,
    // so the exposition's shape never depends on the observer.
    for (std::size_t s = 1; s < kSpanStageCount; ++s) {
        HistogramMetric merged(kLatencyLo, kLatencyHi, kLatencyBins,
                               HistogramScale::kLog2);
        for (const auto& slot : slots_) {
            std::unique_lock<std::mutex> lock(slot->mutex);
            merged.merge(*slot->stage[s]);
        }
        const std::string family =
            "swarmavail_server_stage_seconds_" +
            std::string(span_stage_name(static_cast<SpanStage>(s)));
        out += "# HELP " + family + " Request stage latency, seconds.\n";
        out += "# TYPE " + family + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t bin = 0; bin < merged.bins(); ++bin) {
            cumulative += merged.bin_count(bin);
            out += family + "_bucket{le=\"" + format_double_exact(merged.bin_hi(bin)) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        out += family + "_bucket{le=\"+Inf\"} " + std::to_string(merged.total()) +
               "\n";
        out += family + "_sum " + format_double_exact(merged.stats().sum()) + "\n";
        out += family + "_count " + std::to_string(merged.total()) + "\n";
    }

    // Span bookkeeping counters (zeros whenever no hub is running).
    std::uint64_t span_records = 0;
    std::uint64_t span_dropped = 0;
    std::uint64_t span_slow = 0;
#if !defined(SWARMAVAIL_SPANS_DISABLED)
    if (span_hub_ != nullptr) {
        span_records = span_hub_->records_emitted();
        span_dropped = span_hub_->records_dropped();
        span_slow = span_hub_->slow_requests();
    }
#endif
    out += "# HELP swarmavail_server_span_records_total Span records emitted "
           "into the per-thread rings.\n";
    out += "# TYPE swarmavail_server_span_records_total counter\n";
    out += "swarmavail_server_span_records_total " + std::to_string(span_records) +
           "\n";
    out += "# HELP swarmavail_server_span_records_dropped_total Span records "
           "overwritten before a drain (ring capacity).\n";
    out += "# TYPE swarmavail_server_span_records_dropped_total counter\n";
    out += "swarmavail_server_span_records_dropped_total " +
           std::to_string(span_dropped) + "\n";
    out += "# HELP swarmavail_server_slow_queries_total Requests at or above "
           "the --slow-ms threshold.\n";
    out += "# TYPE swarmavail_server_slow_queries_total counter\n";
    out += "swarmavail_server_slow_queries_total " + std::to_string(span_slow) +
           "\n";
}

}  // namespace swarmavail::serve
