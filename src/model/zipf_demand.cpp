#include "model/zipf_demand.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/error.hpp"

namespace swarmavail::model {

std::vector<double> zipf_popularities(std::size_t n, double delta) {
    // Guard the edge cases explicitly instead of relying on caller
    // discipline: n = 0 would return an empty (unnormalizable) vector, and
    // a negative or NaN exponent silently inverts the popularity ranking.
    // delta == 0 stays valid (uniform popularity).
    SWARMAVAIL_REQUIRE(n >= 1, "zipf_popularities: requires n >= 1");
    SWARMAVAIL_REQUIRE(std::isfinite(delta),
                       "zipf_popularities: requires a finite exponent");
    SWARMAVAIL_REQUIRE(delta >= 0.0, "zipf_popularities: requires delta >= 0");
    std::vector<double> p(n);
    double total = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
        p[k - 1] = std::pow(static_cast<double>(k), -delta);
        total += p[k - 1];
    }
    for (auto& v : p) {
        v /= total;
    }
    return p;
}

std::vector<PerFileComparison> compare_isolated_vs_bundle(
    const SwarmParams& base, const HeterogeneousDemandConfig& config) {
    SWARMAVAIL_REQUIRE(!config.lambdas.empty(),
                       "compare_isolated_vs_bundle: requires at least one file");
    for (double l : config.lambdas) {
        SWARMAVAIL_REQUIRE(std::isfinite(l) && l > 0.0,
                           "compare_isolated_vs_bundle: demands must be finite and > 0");
    }

    auto evaluate = [&](const SwarmParams& params) {
        return config.single_publisher
                   ? download_time_single_publisher(params, config.coverage_threshold)
                   : download_time_patient(params);
    };

    // The bundle: aggregate demand, K-fold content size, same publisher.
    SwarmParams bundle = base;
    bundle.peer_arrival_rate = 0.0;
    for (double l : config.lambdas) {
        bundle.peer_arrival_rate += l;
    }
    bundle.content_size = base.content_size * static_cast<double>(config.lambdas.size());
    const double bundled_time = evaluate(bundle).download_time;

    std::vector<PerFileComparison> out;
    out.reserve(config.lambdas.size());
    for (std::size_t i = 0; i < config.lambdas.size(); ++i) {
        SwarmParams isolated = base;
        isolated.peer_arrival_rate = config.lambdas[i];
        PerFileComparison cmp;
        cmp.file = i + 1;
        cmp.lambda = config.lambdas[i];
        cmp.isolated_time = evaluate(isolated).download_time;
        cmp.bundled_time = bundled_time;
        cmp.gain = cmp.isolated_time - cmp.bundled_time;
        out.push_back(cmp);
    }
    return out;
}

}  // namespace swarmavail::model
