// Download-time formulas for patient peers (Sections 3.3.2 and 3.3.3).
//
// A patient peer's download time is the idle wait (if it arrives while the
// content is unavailable) plus the active service time:
//
//     E[T] = s/mu + P / r            (Lemma 3.2, eq. 11)
//
// where P is the probability of arriving during an idle period and 1/r the
// mean residual wait for the next publisher. Section 3.3.3 generalizes P to
// a coverage threshold m via residual busy periods (Theorem 3.3, eq. 14),
// and Section 4.3.1 adapts it to a single on/off publisher (eq. 16).
#pragma once

#include <cstddef>

#include "model/params.hpp"

namespace swarmavail::model {

/// Download-time metrics for one swarm (individual file or bundle).
struct DownloadTimeResult {
    double service_time = 0.0;    ///< s/mu: active download component (s)
    double waiting_time = 0.0;    ///< P/r: expected idle wait component (s)
    double download_time = 0.0;   ///< E[T] = service + waiting (s)
    double unavailability = 0.0;  ///< P used in the waiting term
    double busy_period = 0.0;     ///< E[B] underlying P (s); may be +infinity
};

/// Mean download time with patient peers (Lemma 3.2): busy period from
/// eq. 9 with beta = lambda + r, alpha1 = s/mu, q1 = lambda/(lambda + r),
/// alpha2 = theta = u; then E[T] = s/mu + P/r.
[[nodiscard]] DownloadTimeResult download_time_patient(const SwarmParams& params);

/// Mean download time with a coverage threshold m (Theorem 3.3):
/// P = exp(-r (u + B(m))) where B(m) is the steady-state residual busy
/// period sustained by peers alone (eq. 13); E[T] = s/mu + P/r.
[[nodiscard]] DownloadTimeResult download_time_threshold(const SwarmParams& params,
                                                         std::size_t coverage_threshold);

/// Single intermittent publisher variant (eq. 16, used to predict the
/// PlanetLab experiments of Section 4.3): the publisher alternates on
/// (mean u) and off (mean 1/r); peers alone must bridge the off periods.
///
///     P = exp(-r * B(m)) / (u r + 1),        E[T] = s/mu + P/r
[[nodiscard]] DownloadTimeResult download_time_single_publisher(
    const SwarmParams& params, std::size_t coverage_threshold);

}  // namespace swarmavail::model
