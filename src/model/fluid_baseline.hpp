// Baseline comparator: the Qiu-Srikant fluid model (SIGCOMM'04), which the
// paper contrasts against in Related Work: "A naive adaptation of the fluid
// model in [17] to bundles suggests strictly longer download times under
// bundling, whereas our model shows that bundling can decrease download
// times by improving availability."
//
// The fluid model tracks leecher/seed populations
//
//     dx/dt = lambda - theta x - min(c x, mu (eta x + y))
//     dy/dt = min(c x, mu (eta x + y)) - gamma y
//
// (x leechers, y seeds, lambda arrivals, c download cap, mu upload
// capacity, eta sharing effectiveness, gamma seed departure rate; rates are
// file-normalized, i.e. mu is in copies/s). Its steady state assumes the
// swarm never empties -- availability simply is not in the state space --
// so bundling K files only multiplies the work per peer and the predicted
// download time grows ~K. These functions implement the steady state and
// the naive bundle adaptation so benches can quantify exactly where the
// baseline breaks.
#pragma once

#include <cstddef>

namespace swarmavail::model {

/// Parameters of the fluid model, file-normalized (mu, c in copies/s).
struct FluidParams {
    double lambda = 0.0;  ///< peer arrival rate (1/s)
    double mu = 0.0;      ///< per-node upload capacity (copies/s)
    double c = 0.0;       ///< per-node download capacity (copies/s)
    double eta = 1.0;     ///< leecher sharing effectiveness, in (0, 1]
    double gamma = 0.0;   ///< seed departure rate (1/s)
    double theta = 0.0;   ///< leecher abandonment rate (1/s), usually 0
};

/// Steady-state outcome of the fluid model.
struct FluidSteadyState {
    double leechers = 0.0;       ///< x*
    double seeds = 0.0;          ///< y*
    double download_time = 0.0;  ///< T = x*/lambda_effective (Little)
    bool upload_constrained = false;  ///< binding constraint at equilibrium
};

/// Computes the Qiu-Srikant steady state. With theta = 0 the classic
/// closed form is T = max(1/c, (1/eta)(1/mu - 1/gamma)); a positive theta
/// is handled by the same balance equations. Requires positive lambda, mu,
/// c, gamma and eta in (0, 1].
[[nodiscard]] FluidSteadyState fluid_steady_state(const FluidParams& params);

/// Naive bundle adaptation: K files = K-fold content, so per-copy upload
/// and download rates shrink by K while demand aggregates to K lambda.
/// Returns the predicted download time for the K-bundle -- strictly
/// increasing in K, since the fluid model cannot see availability.
[[nodiscard]] double fluid_bundle_download_time(const FluidParams& params,
                                                std::size_t bundle_size);

/// Numerically integrates the fluid ODEs from an empty swarm (forward
/// Euler with the given step) and returns the state at `horizon`. Used by
/// tests to confirm the closed-form equilibrium is the ODE attractor.
[[nodiscard]] FluidSteadyState fluid_integrate(const FluidParams& params, double horizon,
                                               double step);

}  // namespace swarmavail::model
