// Heterogeneous (Zipf-skewed) per-file demand, Section 3.3.1's skewed
// preferences and the Figure 6(c) experiment design.
//
// Given K contents and an aggregate demand Lambda, content k attracts
// lambda_k = p_k Lambda with p_k = c / k^delta (Zipf's law). Bundling serves
// every request with the whole bundle, so peers of the popular files pay a
// service cost while peers of unpopular files gain availability; these
// helpers quantify both sides per file.
#pragma once

#include <cstddef>
#include <vector>

#include "model/download_time.hpp"
#include "model/params.hpp"

namespace swarmavail::model {

/// Normalized Zipf popularity weights p_k = c / k^delta, k = 1..n
/// (sum to 1). Requires n >= 1 and a finite delta >= 0 (delta = 0 is the
/// uniform distribution); violations throw std::invalid_argument.
[[nodiscard]] std::vector<double> zipf_popularities(std::size_t n, double delta);

/// Per-file outcome of a heterogeneous-demand bundling decision.
struct PerFileComparison {
    std::size_t file = 0;            ///< 1-based file rank
    double lambda = 0.0;             ///< per-file demand (1/s)
    double isolated_time = 0.0;      ///< E[T] downloading the file alone (s)
    double bundled_time = 0.0;       ///< E[T] downloading the bundle (s)
    double gain = 0.0;               ///< isolated - bundled (s); > 0 means bundling wins
};

/// Configuration for the heterogeneous-demand comparison.
struct HeterogeneousDemandConfig {
    /// Per-file demands lambda_k (1/s); files share size/capacity/publisher
    /// parameters from `base` (whose own peer_arrival_rate is ignored).
    std::vector<double> lambdas;
    /// Coverage threshold m for the single-publisher model.
    std::size_t coverage_threshold = 1;
    /// If true, evaluate with the single-publisher model (eq. 16) as in
    /// Section 4.3; otherwise the patient-peer model (eq. 11).
    bool single_publisher = true;
};

/// Compares each file downloaded in isolation against the all-files bundle
/// (demand sum(lambda_k), size K s): the model-side analogue of the
/// Figure 6(c) experiment.
[[nodiscard]] std::vector<PerFileComparison> compare_isolated_vs_bundle(
    const SwarmParams& base, const HeterogeneousDemandConfig& config);

}  // namespace swarmavail::model
