#include "model/download_time.hpp"

#include <cmath>

#include "model/availability.hpp"
#include "queueing/busy_period.hpp"

namespace swarmavail::model {
namespace {

DownloadTimeResult assemble(const SwarmParams& params, double unavailability,
                            double busy_period) {
    DownloadTimeResult out;
    out.service_time = params.service_time();
    out.unavailability = unavailability;
    out.busy_period = busy_period;
    // A peer arriving during an idle period waits a mean 1/r (memoryless
    // publisher arrivals) for the busy period that will serve it.
    out.waiting_time = unavailability / params.publisher_arrival_rate;
    out.download_time = out.service_time + out.waiting_time;
    return out;
}

}  // namespace

DownloadTimeResult download_time_patient(const SwarmParams& params) {
    params.validate();
    const auto availability = availability_impatient(params);
    return assemble(params, availability.unavailability, availability.busy_period);
}

DownloadTimeResult download_time_threshold(const SwarmParams& params,
                                           std::size_t coverage_threshold) {
    params.validate();
    const queueing::ResidualParams residual{params.peer_arrival_rate,
                                            params.service_time()};
    const double bm =
        queueing::steady_state_residual_busy_period(coverage_threshold, residual);
    // eq. 14: each publisher visit extends availability by its stay u plus
    // the peer-sustained residual B(m); the number of publisher cycles per
    // busy period is geometric, giving P = exp(-r (u + B(m))).
    const double p = std::isinf(bm)
                         ? 0.0
                         : std::exp(-params.publisher_arrival_rate *
                                    (params.publisher_residence + bm));
    return assemble(params, p, bm);
}

DownloadTimeResult download_time_single_publisher(const SwarmParams& params,
                                                  std::size_t coverage_threshold) {
    params.validate();
    const queueing::ResidualParams residual{params.peer_arrival_rate,
                                            params.service_time()};
    const double bm =
        queueing::steady_state_residual_busy_period(coverage_threshold, residual);
    const double r = params.publisher_arrival_rate;
    const double u = params.publisher_residence;
    // eq. 16: with a single on/off publisher the fraction of time the
    // publisher is off is 1/(u r + 1); peers bridge off periods of mean
    // B(m), surviving one with probability exp(-r B(m)) per cycle.
    const double p = std::isinf(bm) ? 0.0 : std::exp(-r * bm) / (u * r + 1.0);
    return assemble(params, p, bm);
}

}  // namespace swarmavail::model
