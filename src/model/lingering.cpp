#include "model/lingering.hpp"

#include <cmath>

#include "queueing/busy_period.hpp"
#include "util/error.hpp"
#include "util/series.hpp"

namespace swarmavail::model {
namespace {

queueing::BusyPeriodResult lingering_busy_period(const SwarmParams& params,
                                                 double linger_time) {
    queueing::MixedBusyPeriodParams mixed;
    mixed.beta = params.peer_arrival_rate + params.publisher_arrival_rate;
    mixed.theta = params.publisher_residence;
    mixed.q1 = params.peer_arrival_rate / mixed.beta;
    mixed.alpha1 = params.service_time() + linger_time;
    mixed.alpha2 = params.publisher_residence;
    return queueing::busy_period_mixed(mixed);
}

}  // namespace

AvailabilityResult availability_lingering(const SwarmParams& params,
                                          double linger_time) {
    params.validate();
    require(linger_time >= 0.0, "availability_lingering: requires linger_time >= 0");
    const auto busy = lingering_busy_period(params, linger_time);

    AvailabilityResult out;
    out.busy_period = busy.value;
    out.idle_period = 1.0 / params.publisher_arrival_rate;
    const double log_idle = std::log(out.idle_period);
    const double log_cycle = log_add_exp(busy.log_value, log_idle);
    out.log_unavailability = log_idle - log_cycle;
    out.unavailability = std::exp(out.log_unavailability);
    out.peers_per_busy_period = params.peer_arrival_rate * busy.value;
    return out;
}

DownloadTimeResult download_time_lingering(const SwarmParams& params,
                                           double linger_time) {
    require(linger_time >= 0.0, "download_time_lingering: linger_time must be >= 0");
    require(params.publisher_arrival_rate > 0.0,
            "download_time_lingering: publisher arrival rate must be > 0");
    const auto availability = availability_lingering(params, linger_time);
    DownloadTimeResult out;
    out.service_time = params.service_time();
    out.unavailability = availability.unavailability;
    out.busy_period = availability.busy_period;
    out.waiting_time = availability.unavailability / params.publisher_arrival_rate;
    out.download_time = out.service_time + out.waiting_time;
    return out;
}

double lingering_time_for_bundle_parity(double s1, double s2, double lambda1,
                                        double lambda2, double mu) {
    require(s1 > 0.0 && s2 > 0.0, "lingering parity: sizes must be > 0");
    require(lambda1 > 0.0 && lambda2 >= 0.0, "lingering parity: demands must be valid");
    require(mu > 0.0, "lingering parity: mu must be > 0");
    // Solve s1 l1/mu + l1/gamma = (l1 + l2)(s1 + s2)/mu for 1/gamma.
    const double bundle_load = (lambda1 + lambda2) * (s1 + s2) / mu;
    const double solo_service_load = s1 * lambda1 / mu;
    const double inverse_gamma = (bundle_load - solo_service_load) / lambda1;
    require(inverse_gamma >= 0.0,
            "lingering parity: bundle load below solo load; no lingering needed");
    return inverse_gamma;
}

// swarmlint-allow(contract-require-numeric): all five parameters are validated by the delegated lingering_time_for_bundle_parity call
double residence_with_parity_lingering(double s1, double s2, double lambda1,
                                       double lambda2, double mu) {
    return s1 / mu + lingering_time_for_bundle_parity(s1, s2, lambda1, lambda2, mu);
}

double bundle_download_time(double s1, double s2, double mu) {
    require(s1 > 0.0 && s2 > 0.0, "bundle_download_time: sizes must be > 0");
    require(mu > 0.0, "bundle_download_time: mu must be > 0");
    return (s1 + s2) / mu;
}

}  // namespace swarmavail::model
