#include "model/bundling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace swarmavail::model {

std::vector<BundleSweepPoint> sweep_bundle_sizes(const SwarmParams& base,
                                                 const BundleSweepConfig& config) {
    base.validate();
    require(config.max_k >= 1, "sweep_bundle_sizes: requires max_k >= 1");

    std::vector<BundleSweepPoint> sweep;
    sweep.reserve(config.max_k);
    for (std::size_t k = 1; k <= config.max_k; ++k) {
        const SwarmParams bundle = make_bundle(base, k, config.scaling);
        BundleSweepPoint point;
        point.k = k;

        DownloadTimeResult dt;
        switch (config.model) {
            case DownloadModel::kPatient:
                dt = download_time_patient(bundle);
                break;
            case DownloadModel::kThreshold:
                dt = download_time_threshold(bundle, config.coverage_threshold);
                break;
            case DownloadModel::kSinglePublisher:
                dt = download_time_single_publisher(bundle, config.coverage_threshold);
                break;
        }
        point.busy_period = dt.busy_period;
        point.unavailability = dt.unavailability;
        point.download_time = dt.download_time;
        point.service_time = dt.service_time;
        point.waiting_time = dt.waiting_time;

        // log P from the impatient-availability computation keeps asymptotic
        // information when P underflows (only defined for the eq. 9 models).
        if (config.model == DownloadModel::kPatient) {
            point.log_unavailability = availability_impatient(bundle).log_unavailability;
        } else {
            point.log_unavailability =
                dt.unavailability > 0.0 ? std::log(dt.unavailability)
                                        : -std::numeric_limits<double>::infinity();
        }
        sweep.push_back(point);
    }
    return sweep;
}

std::size_t optimal_bundle_size(const std::vector<BundleSweepPoint>& sweep) {
    require(!sweep.empty(), "optimal_bundle_size: requires non-empty sweep");
    const auto it = std::min_element(
        sweep.begin(), sweep.end(), [](const BundleSweepPoint& a, const BundleSweepPoint& b) {
            return a.download_time < b.download_time;
        });
    return it->k;
}

std::vector<Figure3Curve> figure3_curves(const SwarmParams& base,
                                         const std::vector<double>& publisher_interarrivals,
                                         std::size_t max_k) {
    require(!publisher_interarrivals.empty(),
            "figure3_curves: requires at least one publisher interarrival");
    std::vector<Figure3Curve> curves;
    curves.reserve(publisher_interarrivals.size());
    for (double inv_r : publisher_interarrivals) {
        require(inv_r > 0.0, "figure3_curves: publisher interarrivals must be > 0");
        SwarmParams params = base;
        params.publisher_arrival_rate = 1.0 / inv_r;

        Figure3Curve curve;
        curve.publisher_interarrival = inv_r;
        BundleSweepConfig config;
        config.max_k = max_k;
        config.scaling = PublisherScaling::kConstant;
        config.model = DownloadModel::kPatient;
        curve.points = sweep_bundle_sizes(params, config);
        curve.optimal_k = optimal_bundle_size(curve.points);
        curves.push_back(std::move(curve));
    }
    return curves;
}

}  // namespace swarmavail::model
