#include "model/asymptotics.hpp"

#include <cmath>

#include "model/availability.hpp"
#include "util/error.hpp"

namespace swarmavail::model {

std::vector<GrowthPoint> growth_diagnostics(const SwarmParams& base, std::size_t max_k,
                                            PublisherScaling scaling) {
    base.validate();
    require(max_k >= 1, "growth_diagnostics: requires max_k >= 1");
    std::vector<GrowthPoint> points;
    points.reserve(max_k);
    for (std::size_t k = 1; k <= max_k; ++k) {
        const SwarmParams bundle = make_bundle(base, k, scaling);
        const auto busy = mixed_busy_period(bundle);
        const auto avail = availability_impatient(bundle);
        GrowthPoint point;
        point.k = k;
        point.log_busy_period = busy.log_value;
        point.neg_log_unavailability = -avail.log_unavailability;
        const auto k2 = static_cast<double>(k) * static_cast<double>(k);
        point.busy_ratio = point.log_busy_period / k2;
        point.unavail_ratio = point.neg_log_unavailability / k2;
        points.push_back(point);
    }
    return points;
}

double least_squares_slope(const std::vector<double>& x, const std::vector<double>& y) {
    require(x.size() == y.size(), "least_squares_slope: size mismatch");
    require(x.size() >= 2, "least_squares_slope: requires >= 2 points");
    const auto n = static_cast<double>(x.size());
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    require(std::abs(denom) > 0.0, "least_squares_slope: degenerate x values");
    return (n * sxy - sx * sy) / denom;
}

double fitted_k2_coefficient(const std::vector<GrowthPoint>& points) {
    require(points.size() >= 4, "fitted_k2_coefficient: requires >= 4 points");
    std::vector<double> x;
    std::vector<double> y;
    // Use the tail half of the run where the Theta(K^2) term dominates.
    for (std::size_t i = points.size() / 2; i < points.size(); ++i) {
        const auto k = static_cast<double>(points[i].k);
        x.push_back(k * k);
        y.push_back(points[i].log_busy_period);
    }
    return least_squares_slope(x, y);
}

}  // namespace swarmavail::model
