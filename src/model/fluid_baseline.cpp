#include "model/fluid_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace swarmavail::model {
namespace {

void validate(const FluidParams& p) {
    require(p.lambda > 0.0, "fluid model: lambda must be > 0");
    require(p.mu > 0.0, "fluid model: mu must be > 0");
    require(p.c > 0.0, "fluid model: c must be > 0");
    require(p.eta > 0.0 && p.eta <= 1.0, "fluid model: eta must lie in (0, 1]");
    require(p.gamma > 0.0, "fluid model: gamma must be > 0");
    require(p.theta >= 0.0, "fluid model: theta must be >= 0");
}

}  // namespace

FluidSteadyState fluid_steady_state(const FluidParams& p) {
    validate(p);
    FluidSteadyState state;

    // Try the download-constrained equilibrium first: completions at c x*.
    {
        const double x = p.lambda / (p.theta + p.c);
        const double completions = p.c * x;
        const double y = completions / p.gamma;
        if (p.c * x <= p.mu * (p.eta * x + y) + 1e-12) {
            state.leechers = x;
            state.seeds = y;
            state.download_time = 1.0 / p.c;
            state.upload_constrained = false;
            return state;
        }
    }

    // Upload-constrained: completions d = mu (eta x + y), y = d / gamma.
    // d (1 - mu/gamma) = mu eta x requires gamma > mu, else the seed pool
    // alone absorbs the load and the system is download-constrained (the
    // branch above would have accepted).
    require(p.gamma > p.mu,
            "fluid model: inconsistent equilibrium (gamma <= mu should be "
            "download-constrained)");
    const double d_per_x = p.mu * p.eta / (1.0 - p.mu / p.gamma);
    const double x = p.lambda / (p.theta + d_per_x);
    const double d = d_per_x * x;
    state.leechers = x;
    state.seeds = d / p.gamma;
    state.download_time = x / p.lambda;  // Little's law (mean sojourn)
    state.upload_constrained = true;
    return state;
}

double fluid_bundle_download_time(const FluidParams& p, std::size_t bundle_size) {
    validate(p);
    require(bundle_size >= 1, "fluid_bundle_download_time: bundle size >= 1");
    FluidParams bundle = p;
    const auto k = static_cast<double>(bundle_size);
    // K-fold content: per-copy service rates shrink by K; demand aggregates.
    bundle.mu = p.mu / k;
    bundle.c = p.c / k;
    bundle.lambda = p.lambda * k;
    return fluid_steady_state(bundle).download_time;
}

FluidSteadyState fluid_integrate(const FluidParams& p, double horizon, double step) {
    validate(p);
    require(horizon > 0.0 && step > 0.0 && step < horizon,
            "fluid_integrate: invalid horizon/step");
    double x = 0.0;
    double y = 1.0;  // the publisher's seed starts the swarm
    const auto steps = static_cast<std::size_t>(horizon / step);
    for (std::size_t i = 0; i < steps; ++i) {
        const double service = std::min(p.c * x, p.mu * (p.eta * x + y));
        const double dx = p.lambda - p.theta * x - service;
        const double dy = service - p.gamma * y;
        x = std::max(0.0, x + step * dx);
        y = std::max(0.0, y + step * dy);
    }
    FluidSteadyState state;
    state.leechers = x;
    state.seeds = y;
    state.download_time = x / p.lambda;
    state.upload_constrained = p.c * x > p.mu * (p.eta * x + y);
    return state;
}

}  // namespace swarmavail::model
