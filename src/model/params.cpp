#include "model/params.hpp"

#include <cmath>

#include "util/error.hpp"

namespace swarmavail::model {

void SwarmParams::validate() const {
    require(peer_arrival_rate > 0.0, "SwarmParams: peer arrival rate must be > 0");
    require(content_size > 0.0, "SwarmParams: content size must be > 0");
    require(download_rate > 0.0, "SwarmParams: download rate must be > 0");
    require(publisher_arrival_rate > 0.0,
            "SwarmParams: publisher arrival rate must be > 0");
    require(publisher_residence > 0.0, "SwarmParams: publisher residence must be > 0");
}

SwarmParams make_bundle(const SwarmParams& base, std::size_t k,
                        PublisherScaling scaling) {
    require(k >= 1, "make_bundle: requires k >= 1");
    base.validate();
    SwarmParams bundle = base;
    const auto kd = static_cast<double>(k);
    bundle.peer_arrival_rate = kd * base.peer_arrival_rate;
    bundle.content_size = kd * base.content_size;
    if (scaling == PublisherScaling::kProportional) {
        bundle.publisher_arrival_rate = kd * base.publisher_arrival_rate;
        bundle.publisher_residence = kd * base.publisher_residence;
    }
    return bundle;
}

SwarmParams make_bundle(const std::vector<SwarmParams>& constituents,
                        double publisher_arrival_rate, double publisher_residence) {
    require(!constituents.empty(), "make_bundle: requires at least one constituent");
    require(publisher_arrival_rate > 0.0,
            "make_bundle: publisher arrival rate must be > 0");
    require(publisher_residence > 0.0, "make_bundle: publisher residence must be > 0");

    SwarmParams bundle;
    bundle.download_rate = constituents.front().download_rate;
    for (const auto& c : constituents) {
        c.validate();
        require(std::abs(c.download_rate - bundle.download_rate) <
                    1e-9 * bundle.download_rate,
                "make_bundle: constituent download rates must agree");
        bundle.peer_arrival_rate += c.peer_arrival_rate;
        bundle.content_size += c.content_size;
    }
    bundle.publisher_arrival_rate = publisher_arrival_rate;
    bundle.publisher_residence = publisher_residence;
    return bundle;
}

}  // namespace swarmavail::model
