#include "model/partitioning.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "model/download_time.hpp"
#include "util/error.hpp"

namespace swarmavail::model {
namespace {

void validate(const SwarmParams& base, const PartitionConfig& config) {
    base.validate();
    require(!config.lambdas.empty(), "partitioning: requires at least one file");
    for (double l : config.lambdas) {
        require(l > 0.0, "partitioning: demands must be > 0");
    }
    require(config.per_extra_file_penalty >= 0.0,
            "partitioning: penalty must be >= 0");
}

}  // namespace

double bundle_cost(const SwarmParams& base, double aggregate_lambda,
                   std::size_t bundle_files, const PartitionConfig& config) {
    require(bundle_files >= 1, "bundle_cost: requires at least one file");
    require(aggregate_lambda > 0.0, "bundle_cost: aggregate demand must be > 0");
    SwarmParams bundle = base;
    bundle.peer_arrival_rate = aggregate_lambda;
    bundle.content_size = base.content_size * static_cast<double>(bundle_files);
    const double time = download_time_patient(bundle).download_time;
    return time + config.per_extra_file_penalty *
                      static_cast<double>(bundle_files - 1);
}

double partition_cost(const SwarmParams& base, const Partition& partition,
                      const PartitionConfig& config) {
    validate(base, config);
    require(!partition.empty(), "partition_cost: requires a non-empty partition");
    double total_demand = 0.0;
    double weighted = 0.0;
    std::vector<bool> seen(config.lambdas.size(), false);
    for (const auto& bundle : partition) {
        require(!bundle.empty(), "partition_cost: empty bundle");
        double aggregate = 0.0;
        for (std::size_t file : bundle) {
            require(file < config.lambdas.size(), "partition_cost: file out of range");
            require(!seen[file], "partition_cost: file assigned twice");
            seen[file] = true;
            aggregate += config.lambdas[file];
        }
        const double cost = bundle_cost(base, aggregate, bundle.size(), config);
        weighted += aggregate * cost;
        total_demand += aggregate;
    }
    for (bool assigned : seen) {
        require(assigned, "partition_cost: partition must cover every file");
    }
    return weighted / total_demand;
}

Partition optimal_partition_exhaustive(const SwarmParams& base,
                                       const PartitionConfig& config) {
    validate(base, config);
    const std::size_t n = config.lambdas.size();
    require(n <= 10, "optimal_partition_exhaustive: too many files (Bell growth)");

    // Enumerate set partitions via restricted growth strings.
    std::vector<std::size_t> assignment(n, 0);
    Partition best;
    double best_cost = std::numeric_limits<double>::infinity();

    const auto evaluate = [&]() {
        const std::size_t blocks =
            1 + *std::max_element(assignment.begin(), assignment.end());
        Partition partition(blocks);
        for (std::size_t file = 0; file < n; ++file) {
            partition[assignment[file]].push_back(file);
        }
        const double cost = partition_cost(base, partition, config);
        if (cost < best_cost) {
            best_cost = cost;
            best = std::move(partition);
        }
    };

    // Recursive restricted-growth enumeration.
    const std::function<void(std::size_t, std::size_t)> recurse =
        [&](std::size_t index, std::size_t max_used) {
            if (index == n) {
                evaluate();
                return;
            }
            for (std::size_t block = 0; block <= max_used + 1 && block < n; ++block) {
                assignment[index] = block;
                recurse(index + 1, std::max(max_used, block));
            }
        };
    assignment[0] = 0;
    if (n == 1) {
        evaluate();
    } else {
        recurse(1, 0);
    }
    return best;
}

Partition optimal_partition_contiguous(const SwarmParams& base,
                                       const PartitionConfig& config) {
    validate(base, config);
    const std::size_t n = config.lambdas.size();

    // Sort files by descending demand; bundles are contiguous runs.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return config.lambdas[a] > config.lambdas[b];
    });

    // prefix demand sums over the sorted order
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + config.lambdas[order[i]];
    }

    // dp[i]: minimal weighted cost of covering sorted files [0, i).
    std::vector<double> dp(n + 1, std::numeric_limits<double>::infinity());
    std::vector<std::size_t> cut(n + 1, 0);
    dp[0] = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            const double aggregate = prefix[i] - prefix[j];
            const double cost = bundle_cost(base, aggregate, i - j, config);
            const double candidate = dp[j] + aggregate * cost;
            if (candidate < dp[i]) {
                dp[i] = candidate;
                cut[i] = j;
            }
        }
    }

    Partition partition;
    std::size_t end = n;
    while (end > 0) {
        const std::size_t begin = cut[end];
        std::vector<std::size_t> bundle;
        for (std::size_t i = begin; i < end; ++i) {
            bundle.push_back(order[i]);
        }
        partition.push_back(std::move(bundle));
        end = begin;
    }
    std::reverse(partition.begin(), partition.end());
    return partition;
}

}  // namespace swarmavail::model
