// Mixed vs pure bundling (the Section 5 "Economics of bundling" analysis).
//
// Pure bundling (a zip archive) forces every requester to take the whole
// bundle. Mixed bundling publishes the individual-file torrents alongside a
// bundle torrent and lets each peer choose: a fraction q of requesters opts
// into the bundle (future viewing, recommendations), the rest fetch just
// their file.
//
// Under mixed bundling, file k's demand splits: the individual swarm keeps
// (1-q) lambda_k while the bundle swarm aggregates q Lambda. A request for
// file k is served if *either* swarm is in a busy period; with independent
// publisher/peer processes the unavailability multiplies:
//
//     P_k(mixed) = P_k,individual((1-q) lambda_k) * P_bundle(q Lambda)
//
// The paper's claim -- "even a small fraction of users opting to download
// more content than they strictly sought can significantly improve
// availability" -- falls out of the bundle factor's e^{-Theta(q K^2)}
// behaviour.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.hpp"

namespace swarmavail::model {

/// Per-file outcome of a mixed-bundling configuration.
struct MixedBundlingResult {
    std::size_t file = 0;          ///< 1-based index
    double lambda = 0.0;           ///< total demand for the file (1/s)
    double p_individual = 0.0;     ///< unavailability of its individual swarm
    double p_bundle = 0.0;         ///< unavailability of the bundle swarm
    double p_mixed = 0.0;          ///< combined: p_individual * p_bundle
    /// Mean download time of a peer that fetches only file k but may be
    /// served by either swarm (waits for whichever returns first; the
    /// individual-swarm publisher process is used for the residual wait).
    double download_time_single = 0.0;
    /// Mean download time of a bundle-opting peer (downloads everything).
    double download_time_bundle = 0.0;
};

/// Configuration: per-file demands, shared file parameters, and the opt-in
/// fraction q in [0, 1]. q = 1 recovers pure bundling, q = 0 isolated
/// swarms.
struct MixedBundlingConfig {
    std::vector<double> lambdas;   ///< per-file total demand (1/s)
    double bundle_opt_in = 0.2;    ///< q
};

/// Evaluates mixed bundling for files sharing `base`'s size/capacity and
/// publisher process (each swarm, individual or bundle, has its own
/// independent publisher process equal to base's).
[[nodiscard]] std::vector<MixedBundlingResult> evaluate_mixed_bundling(
    const SwarmParams& base, const MixedBundlingConfig& config);

/// Aggregate unavailability seen by a random request under the config
/// (demand-weighted over files, counting bundle opt-ins against the bundle
/// swarm alone).
[[nodiscard]] double request_unavailability(const std::vector<MixedBundlingResult>& rows,
                                            double bundle_opt_in);

}  // namespace swarmavail::model
