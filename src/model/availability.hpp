// Content-availability formulas of the paper (Sections 3.2 and 3.3.1).
//
// Availability is the long-run probability that an arriving peer finds the
// content available. The swarm alternates busy periods (mean E[B]) and idle
// periods (mean 1/r, the wait for the next publisher), so by renewal-reward
//
//     P{unavailable} = (1/r) / (E[B] + 1/r).
//
// The different model variants differ only in what sustains a busy period:
// publishers alone (simple model), publishers plus actively downloading
// peers (eq. 7), or the full mixed-class busy period of eq. 9.
#pragma once

#include "model/params.hpp"
#include "queueing/busy_period.hpp"

namespace swarmavail::model {

/// Availability metrics of one swarm (individual file or bundle).
struct AvailabilityResult {
    double busy_period = 0.0;     ///< E[B], seconds (may be +infinity)
    double idle_period = 0.0;     ///< 1/r, seconds
    double unavailability = 0.0;  ///< P, probability an arrival finds no content
    /// log(P); finite even when P underflows to zero, used by the
    /// Theta(K^2) asymptotic analyses (Theorem 3.1).
    double log_unavailability = 0.0;
    /// Mean number of peers served per busy period, E[N] = lambda E[B].
    double peers_per_busy_period = 0.0;
};

/// Simple model, publishers only (Section 3.2, eqs. 1-2): content is
/// available iff a publisher is online; busy periods are those of an
/// M/M/infinity queue fed by publishers alone.
[[nodiscard]] AvailabilityResult availability_publishers_only(const SwarmParams& params);

/// Publishers and peers jointly sustain availability, with publishers
/// staying exactly one service time u = s/mu (Section 3.2, eqs. 7-8):
/// busy period of an M/M/infinity queue at rate lambda + r, residence s/mu.
/// `params.publisher_residence` is ignored by construction.
[[nodiscard]] AvailabilityResult availability_peers_and_publishers(
    const SwarmParams& params);

/// Full model with impatient peers (Section 3.3.1, eq. 10): publishers stay
/// u independent of the service time; the busy period is the two-class
/// mixture of eq. 9 with beta = lambda + r, theta = alpha2 = u,
/// alpha1 = s/mu, q1 = lambda / (lambda + r). Arrivals during idle periods
/// leave unserved; `unavailability` is the loss probability.
[[nodiscard]] AvailabilityResult availability_impatient(const SwarmParams& params);

/// The eq.-9 busy period parameterized as in Section 3.3.1/3.3.2; shared by
/// the availability and download-time computations.
[[nodiscard]] queueing::BusyPeriodResult mixed_busy_period(const SwarmParams& params);

}  // namespace swarmavail::model
