// Altruistic lingering (Section 3.3.4): peers stay online as seeds for a
// mean 1/gamma after completing their download, either out of altruism or
// because the publisher provides incentives.
//
// The busy period is the eq. 9 mixture with the peer class's residence
// extended from s/mu to s/mu + 1/gamma (the technical report's general
// parameterization, with the two-stage peer residence approximated by an
// exponential of the same mean -- the busy period of an M/G/infinity queue
// is insensitive to the residence distribution beyond its mean in eq. 17's
// integrated-tail form only through (9)'s parameterization, and tests
// validate the approximation against simulation).
//
// Section 3.3.4 also compares an unpopular file kept available by lingering
// against bundling it with a popular file (eq. 15): the lingering time
// needed for parity grows unboundedly as the unpopular file's demand
// vanishes, while bundling achieves the same availability at a marginal
// cost to the popular file's peers.
#pragma once

#include "model/availability.hpp"
#include "model/download_time.hpp"
#include "model/params.hpp"

namespace swarmavail::model {

/// Availability with lingering peers: eq. 9 with alpha1 = s/mu + 1/gamma.
/// `linger_time` is 1/gamma in seconds (>= 0; 0 recovers the selfish model).
[[nodiscard]] AvailabilityResult availability_lingering(const SwarmParams& params,
                                                        double linger_time);

/// Mean download time with patient peers when completed peers linger.
/// Lingering lengthens busy periods (shrinking the waiting term) but does
/// not change the active service time.
[[nodiscard]] DownloadTimeResult download_time_lingering(const SwarmParams& params,
                                                         double linger_time);

/// eq. 15 setup: two files with sizes s1, s2 and demands lambda1, lambda2
/// share capacity mu. Returns the lingering time 1/gamma that makes the
/// isolated swarm-1 offered load match the bundle's:
///
///     s1 lambda1/mu + lambda1/gamma = (lambda1 + lambda2)(s1 + s2)/mu
///
/// i.e. 1/gamma = (s1+s2)(1 + lambda2/lambda1)/mu - s1/mu, which diverges
/// as lambda1 -> 0: an unpopular file needs unbounded lingering to match
/// what bundling provides for free.
[[nodiscard]] double lingering_time_for_bundle_parity(double s1, double s2,
                                                      double lambda1, double lambda2,
                                                      double mu);

/// Mean residence of a swarm-1 requester under the parity lingering above
/// (left side of eq. 15): s1/mu + 1/gamma.
[[nodiscard]] double residence_with_parity_lingering(double s1, double s2,
                                                     double lambda1, double lambda2,
                                                     double mu);

/// Mean download time of any peer in the two-file bundle: (s1 + s2)/mu.
[[nodiscard]] double bundle_download_time(double s1, double s2, double mu);

}  // namespace swarmavail::model
