// Parameter types describing swarms and bundles (Table 1 of the paper).
//
// A swarm is characterized by the peer arrival rate lambda, content size s,
// effective swarm capacity mu, publisher arrival rate r, and mean publisher
// residence time u. Bundling K files multiplies demand and content size
// (Lambda = K lambda, S = K s) while the publisher process scales according
// to a policy: proportional (R = K r, U = K u, Section 3.2) or constant
// (R = r, U = u, Section 3.3.1 / Lemma 3.1).
#pragma once

#include <cstddef>
#include <vector>

namespace swarmavail::model {

/// Parameters of a single swarm (lower-case letters of Table 1).
struct SwarmParams {
    double peer_arrival_rate = 0.0;       ///< lambda, peers/s
    double content_size = 0.0;            ///< s, bits
    double download_rate = 0.0;           ///< mu, bits/s (effective capacity)
    double publisher_arrival_rate = 0.0;  ///< r, publishers/s
    double publisher_residence = 0.0;     ///< u, seconds

    /// Mean time a peer spends actively downloading: s / mu seconds.
    [[nodiscard]] double service_time() const noexcept {
        return content_size / download_rate;
    }

    /// Offered peer load rho = lambda * s / mu (mean peers online in the
    /// M/G/infinity steady state).
    [[nodiscard]] double offered_load() const noexcept {
        return peer_arrival_rate * service_time();
    }

    /// Throws std::invalid_argument unless all rates/sizes are positive.
    void validate() const;
};

/// How the publisher process scales when K files are bundled.
enum class PublisherScaling {
    /// R = K r, U = K u: publishers of all constituents serve the bundle
    /// (Section 3.2's special case).
    kProportional,
    /// R = r, U = u: the bundle has a single publisher process no better
    /// than an individual file's (Section 3.3.1, Lemma 3.1; the
    /// conservative case under which bundling still wins e^{Theta(K^2)}).
    kConstant,
};

/// Parameters of a K-file bundle built from homogeneous constituents.
/// Demand aggregates (Lambda = K lambda) and content concatenates (S = K s);
/// the publisher process follows `scaling`.
[[nodiscard]] SwarmParams make_bundle(const SwarmParams& base, std::size_t k,
                                      PublisherScaling scaling);

/// Parameters of a bundle of heterogeneous files: demand and size aggregate
/// across constituents; the publisher process is supplied explicitly.
/// Requires a non-empty constituent list whose download rates agree.
[[nodiscard]] SwarmParams make_bundle(const std::vector<SwarmParams>& constituents,
                                      double publisher_arrival_rate,
                                      double publisher_residence);

}  // namespace swarmavail::model
