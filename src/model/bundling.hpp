// Bundling analysis (Sections 3.2-3.4): sweep the bundle size K, compute
// availability and download time per constituent file, and locate the
// optimal K -- the machinery behind Figure 3 and the model curves of
// Figure 6.
#pragma once

#include <cstddef>
#include <vector>

#include "model/availability.hpp"
#include "model/download_time.hpp"
#include "model/params.hpp"

namespace swarmavail::model {

/// Which download-time model evaluates each bundle size.
enum class DownloadModel {
    kPatient,          ///< Lemma 3.2 (eq. 11), coverage threshold 1
    kThreshold,        ///< Theorem 3.3 (eq. 14), coverage threshold m
    kSinglePublisher,  ///< eq. 16, one on/off publisher, threshold m
};

/// Metrics of one bundle size in a sweep.
struct BundleSweepPoint {
    std::size_t k = 1;            ///< bundle size
    double busy_period = 0.0;     ///< E[B] of the bundled swarm (s)
    double unavailability = 0.0;  ///< P of the bundled swarm
    double log_unavailability = 0.0;
    double download_time = 0.0;   ///< E[T] per peer for the whole bundle (s)
    double service_time = 0.0;    ///< S/mu component (s)
    double waiting_time = 0.0;    ///< P/R component (s)
};

/// Configuration of a bundle-size sweep.
struct BundleSweepConfig {
    std::size_t max_k = 10;
    PublisherScaling scaling = PublisherScaling::kConstant;
    DownloadModel model = DownloadModel::kPatient;
    std::size_t coverage_threshold = 1;  ///< m (threshold / single-publisher models)
};

/// Evaluates bundle sizes K = 1..max_k starting from homogeneous
/// constituents with parameters `base`.
[[nodiscard]] std::vector<BundleSweepPoint> sweep_bundle_sizes(
    const SwarmParams& base, const BundleSweepConfig& config);

/// The K minimizing mean download time within a sweep. Requires a
/// non-empty sweep.
[[nodiscard]] std::size_t optimal_bundle_size(const std::vector<BundleSweepPoint>& sweep);

/// One curve of Figure 3: download time vs K for a given publisher
/// interarrival time 1/R (publisher process held constant in K).
struct Figure3Curve {
    double publisher_interarrival = 0.0;  ///< 1/R (s)
    std::vector<BundleSweepPoint> points;
    std::size_t optimal_k = 1;
};

/// Reproduces Figure 3: for each 1/R in `publisher_interarrivals`, sweeps
/// K = 1..max_k with the patient-peer model (eq. 11 over eq. 9).
[[nodiscard]] std::vector<Figure3Curve> figure3_curves(
    const SwarmParams& base, const std::vector<double>& publisher_interarrivals,
    std::size_t max_k);

}  // namespace swarmavail::model
