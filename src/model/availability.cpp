#include "model/availability.hpp"

#include <cmath>
#include <limits>

#include "util/series.hpp"

namespace swarmavail::model {
namespace {

/// Combines a busy-period result with the idle period 1/r into the renewal
/// availability metrics.
AvailabilityResult combine(const queueing::BusyPeriodResult& busy,
                           const SwarmParams& params) {
    AvailabilityResult out;
    out.busy_period = busy.value;
    out.idle_period = 1.0 / params.publisher_arrival_rate;
    const double log_idle = std::log(out.idle_period);
    // log P = log(1/r) - log(E[B] + 1/r), computed in log space so that the
    // e^{Theta(K^2)} busy periods of large bundles do not flush P to 0.
    const double log_cycle = log_add_exp(busy.log_value, log_idle);
    out.log_unavailability = log_idle - log_cycle;
    out.unavailability = std::exp(out.log_unavailability);
    out.peers_per_busy_period = params.peer_arrival_rate * busy.value;
    return out;
}

}  // namespace

AvailabilityResult availability_publishers_only(const SwarmParams& params) {
    params.validate();
    const auto busy = queueing::busy_period_exponential(params.publisher_arrival_rate,
                                                        params.publisher_residence);
    return combine(busy, params);
}

AvailabilityResult availability_peers_and_publishers(const SwarmParams& params) {
    params.validate();
    const double beta = params.peer_arrival_rate + params.publisher_arrival_rate;
    const auto busy = queueing::busy_period_exponential(beta, params.service_time());
    return combine(busy, params);
}

queueing::BusyPeriodResult mixed_busy_period(const SwarmParams& params) {
    params.validate();
    queueing::MixedBusyPeriodParams mixed;
    mixed.beta = params.peer_arrival_rate + params.publisher_arrival_rate;
    mixed.theta = params.publisher_residence;
    mixed.q1 = params.peer_arrival_rate / mixed.beta;
    mixed.alpha1 = params.service_time();
    mixed.alpha2 = params.publisher_residence;
    return queueing::busy_period_mixed(mixed);
}

AvailabilityResult availability_impatient(const SwarmParams& params) {
    return combine(mixed_busy_period(params), params);
}

}  // namespace swarmavail::model
