// Asymptotic diagnostics for the paper's Theta(K^2) results (Lemma 3.1,
// Theorems 3.1 and 3.2): fit log E[B] and -log P against K^2 and report how
// stable the ratio is, so tests and benches can check the exponential-in-K^2
// availability gain quantitatively rather than eyeballing it.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.hpp"

namespace swarmavail::model {

/// One point of an asymptotic growth diagnostic.
struct GrowthPoint {
    std::size_t k = 1;
    double log_busy_period = 0.0;      ///< log E[B] for the K-bundle
    double neg_log_unavailability = 0.0;  ///< -log P for the K-bundle
    double busy_ratio = 0.0;           ///< log E[B] / K^2
    double unavail_ratio = 0.0;        ///< -log P / K^2
};

/// Computes log E[B(K)] and -log P(K) for K = 1..max_k under the impatient
/// model with the given publisher scaling.
[[nodiscard]] std::vector<GrowthPoint> growth_diagnostics(const SwarmParams& base,
                                                          std::size_t max_k,
                                                          PublisherScaling scaling);

/// Least-squares slope of y against x. Requires >= 2 points.
[[nodiscard]] double least_squares_slope(const std::vector<double>& x,
                                         const std::vector<double>& y);

/// Fits log E[B(K)] = a + b K^2 over the tail half of a diagnostic run and
/// returns b: by Lemma 3.1 it should approach lambda s / mu (the per-file
/// offered load) for constant publisher scaling.
[[nodiscard]] double fitted_k2_coefficient(const std::vector<GrowthPoint>& points);

}  // namespace swarmavail::model
