#include "model/mixed_bundling.hpp"

#include <cmath>

#include "model/availability.hpp"
#include "model/download_time.hpp"
#include "util/error.hpp"

namespace swarmavail::model {

std::vector<MixedBundlingResult> evaluate_mixed_bundling(
    const SwarmParams& base, const MixedBundlingConfig& config) {
    base.validate();
    require(!config.lambdas.empty(), "evaluate_mixed_bundling: requires files");
    require(config.bundle_opt_in >= 0.0 && config.bundle_opt_in <= 1.0,
            "evaluate_mixed_bundling: opt-in fraction must lie in [0, 1]");
    for (double l : config.lambdas) {
        require(l > 0.0, "evaluate_mixed_bundling: demands must be > 0");
    }

    const double q = config.bundle_opt_in;
    const auto k = config.lambdas.size();
    double aggregate = 0.0;
    for (double l : config.lambdas) {
        aggregate += l;
    }

    // The bundle swarm: q of every file's demand, K-fold content.
    double p_bundle = 1.0;
    double bundle_time = static_cast<double>(k) * base.service_time();
    if (q > 0.0) {
        SwarmParams bundle = base;
        bundle.peer_arrival_rate = q * aggregate;
        bundle.content_size = static_cast<double>(k) * base.content_size;
        const auto bundle_avail = availability_impatient(bundle);
        p_bundle = bundle_avail.unavailability;
        bundle_time = download_time_patient(bundle).download_time;
    }

    std::vector<MixedBundlingResult> rows;
    rows.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        MixedBundlingResult row;
        row.file = i + 1;
        row.lambda = config.lambdas[i];
        row.p_bundle = p_bundle;
        row.download_time_bundle = bundle_time;

        if (q < 1.0) {
            SwarmParams individual = base;
            individual.peer_arrival_rate = (1.0 - q) * config.lambdas[i];
            row.p_individual = availability_impatient(individual).unavailability;
        } else {
            row.p_individual = 1.0;  // no individual swarm exists
        }
        // Independent swarms: the file is unavailable only if both are.
        row.p_mixed = row.p_individual * row.p_bundle;
        // A single-file requester waits only when both swarms are idle; the
        // residual wait is governed by the faster of two independent
        // publisher processes (rate 2r while both are down).
        const double wait_rate = q > 0.0 && q < 1.0
                                     ? 2.0 * base.publisher_arrival_rate
                                     : base.publisher_arrival_rate;
        row.download_time_single = base.service_time() + row.p_mixed / wait_rate;
        rows.push_back(row);
    }
    return rows;
}

double request_unavailability(const std::vector<MixedBundlingResult>& rows,
                              double bundle_opt_in) {
    require(!rows.empty(), "request_unavailability: requires rows");
    require(bundle_opt_in >= 0.0 && bundle_opt_in <= 1.0,
            "request_unavailability: opt-in fraction must lie in [0, 1]");
    double total_demand = 0.0;
    double weighted = 0.0;
    for (const auto& row : rows) {
        total_demand += row.lambda;
        const double per_request = bundle_opt_in * row.p_bundle +
                                   (1.0 - bundle_opt_in) * row.p_mixed;
        weighted += row.lambda * per_request;
    }
    return weighted / total_demand;
}

}  // namespace swarmavail::model
