// Optimal catalog partitioning -- the paper's future-work question: "more
// work is needed to understand how a content provider should optimally
// bundle files to meet performance or cost objectives".
//
// Given a catalog of files with individual demands, a publisher must
// partition them into disjoint bundles (each published as one torrent).
// Each candidate bundle's mean download time comes from the Section 3
// model; the objective is the demand-weighted mean download time across the
// catalog.
//
// Two solvers are provided:
//  - exhaustive search over all set partitions (exact, n <= ~10), and
//  - dynamic programming over *contiguous* partitions of the
//    popularity-sorted catalog (O(n^2) bundle evaluations). Contiguity is
//    a natural restriction -- bundling a popular file with very unpopular
//    ones taxes its peers most -- and the tests check DP's optimum matches
//    the exhaustive one on small instances in the common regimes.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.hpp"

namespace swarmavail::model {

/// A partition of file indices (0-based) into bundles.
using Partition = std::vector<std::vector<std::size_t>>;

/// Objective configuration for partitioning.
struct PartitionConfig {
    /// Per-file demands lambda_k (1/s). Files share `base`'s size,
    /// capacity, and publisher process.
    std::vector<double> lambdas;
    /// Extra penalty per downloaded file beyond the requested one, in
    /// seconds of equivalent download time per file (models traffic cost /
    /// user annoyance; 0 = pure mean-download-time objective).
    double per_extra_file_penalty = 0.0;
};

/// Mean download time experienced by a requester of any file in a bundle
/// holding `bundle_files` files with aggregate demand `aggregate_lambda`
/// (patient-peer model, eq. 11), plus the extra-file penalty.
[[nodiscard]] double bundle_cost(const SwarmParams& base, double aggregate_lambda,
                                 std::size_t bundle_files,
                                 const PartitionConfig& config);

/// Demand-weighted objective of a full partition.
[[nodiscard]] double partition_cost(const SwarmParams& base, const Partition& partition,
                                    const PartitionConfig& config);

/// Exact optimum by exhaustive enumeration of set partitions (Bell-number
/// growth: requires lambdas.size() <= 10).
[[nodiscard]] Partition optimal_partition_exhaustive(const SwarmParams& base,
                                                     const PartitionConfig& config);

/// Optimum over contiguous partitions of the files sorted by descending
/// demand; O(n^2) bundle evaluations via dynamic programming.
[[nodiscard]] Partition optimal_partition_contiguous(const SwarmParams& base,
                                                     const PartitionConfig& config);

}  // namespace swarmavail::model
