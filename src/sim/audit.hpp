// Runtime invariant-audit checks for the discrete-event simulators.
//
// Each function verifies one invariant of a simulator's bookkeeping and
// throws swarmavail::CheckFailure (with file/line/message) when the state is
// corrupt. The simulators call these at every event when their config's
// `debug_audit` flag is on; tests call them directly with deliberately
// corrupted values to prove the audit layer detects each violation class.
//
// The checks are built on SWARMAVAIL_INVARIANT, so they are active in every
// build type -- the cost is paid only when debug_audit is enabled.
#pragma once

#include <cstdint>

#include "sim/calendar.hpp"

namespace swarmavail::sim::audit {

/// Simulation time must never decrease: the event popped from the queue may
/// not precede the current clock. Throws CheckFailure if `next < previous`.
void check_monotone_time(SimTime previous, SimTime next);

/// A population counter (peers online, publishers online, lingering seeds)
/// must stay non-negative. Deltas are applied in signed arithmetic before
/// the check so an underflow of an unsigned counter is caught as the
/// negative value it logically is. Throws CheckFailure if `count < 0`.
void check_nonnegative_count(const char* what, std::int64_t count);

/// Peer conservation across arrivals and departures: every peer that ever
/// arrived is either served, lost, or still in the system.
/// Throws CheckFailure unless `arrivals == served + lost + in_system`.
void check_peer_conservation(std::uint64_t arrivals, std::uint64_t served,
                             std::uint64_t lost, std::uint64_t in_system);

/// Calendar-queue bucket routing: an entry stored in `bucket` must route
/// there under the window's arithmetic, i.e. `bucket` must equal
/// floor((when - window_start) / width) and lie inside the window. Uses
/// the same floating-point expression as the queue's routing so boundary
/// rounding can never make the audit disagree with the structure.
/// Throws CheckFailure on a routing violation.
void check_calendar_bucket(SimTime when, SimTime window_start, SimTime width,
                           std::uint64_t num_buckets, std::uint64_t bucket);

/// Calendar-queue ladder horizon: an entry parked in the overflow ladder
/// must route past the window end (floor((when - window_start) / width)
/// >= num_buckets). Throws CheckFailure if the entry belongs in a bucket.
void check_ladder_horizon(SimTime when, SimTime window_start, SimTime width,
                          std::uint64_t num_buckets);

}  // namespace swarmavail::sim::audit
