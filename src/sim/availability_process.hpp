// One swarm's busy-period process, attachable to a caller-owned EventQueue.
//
// AvailabilityProcess is the engine behind run_availability_sim, factored
// out so many statistically independent swarms can be multiplexed onto one
// shared queue (the catalog engine's shared-queue mode). Each process owns
// its Rng (seeded from its config), draws randomness only inside its own
// event handlers, and schedules only its own events — so a process's sample
// path depends solely on its config, never on what else shares the queue.
// Interleaving N processes on one queue therefore reproduces, bit for bit,
// the results of running each in isolation (see DESIGN.md §11).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/availability_sim.hpp"

namespace swarmavail::sim {

class EventQueue;

/// A single swarm's availability dynamics running on an external queue.
///
/// Lifecycle: construct against a queue, start() to schedule the arrival
/// and publisher processes, drive the queue (typically
/// `queue.run_until(config.horizon)`), then finish() exactly once to close
/// the open busy/idle/publisher intervals at the horizon and collect the
/// result. The process must outlive every event it has scheduled, i.e.
/// keep it alive until the queue has run past the horizon.
class AvailabilityProcess {
 public:
    /// Validates `config` (same contract as run_availability_sim). The
    /// queue must outlive the process. `config.debug_audit` gates this
    /// process's state audits only; auditing the queue itself is the
    /// owner's call (`queue.set_audit`).
    AvailabilityProcess(EventQueue& queue, const AvailabilitySimConfig& config);
    ~AvailabilityProcess();

    AvailabilityProcess(AvailabilityProcess&&) noexcept;
    AvailabilityProcess& operator=(AvailabilityProcess&&) noexcept;
    AvailabilityProcess(const AvailabilityProcess&) = delete;
    AvailabilityProcess& operator=(const AvailabilityProcess&) = delete;

    /// Schedules the peer-arrival and publisher processes up to the
    /// config's horizon. Call once, before driving the queue.
    void start();

    /// Closes the final availability/publisher intervals at the config's
    /// horizon, flushes the attached tracer (if any), and returns the
    /// aggregate result. Call once, after the queue ran past the horizon.
    [[nodiscard]] AvailabilitySimResult finish();

    [[nodiscard]] const AvailabilitySimConfig& config() const noexcept;

    /// Digest of the events folded so far (0 when fingerprinting is off or
    /// compiled out). Safe to poll between run_until slices: this is how
    /// divergence_hunt takes checkpoint fingerprints without perturbing
    /// the run.
    [[nodiscard]] std::uint64_t fingerprint_digest() const noexcept;

 private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace swarmavail::sim
