#include "sim/calendar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/audit.hpp"
#include "util/check.hpp"

namespace swarmavail::sim {

void CalendarLadder::push(const CalendarEntry& entry) {
    ++entries_;
    if (!have_window_) {
        ladder_.push_back(entry);
        return;
    }
    // Routing arithmetic is the single source of truth for bucket
    // membership: floor((when - win_start) / width) is monotone in `when`,
    // so the partition preserves the (when, seq) order across buckets.
    const double offset = (entry.when - win_start_) * inv_width_;
    if (offset >= static_cast<double>(num_buckets_)) {
        ++stats_.ladder_spills;
        ladder_.push_back(entry);
        return;
    }
    const auto bucket = offset > 0.0 ? static_cast<std::size_t>(offset) : 0;
    if (bucket <= cur_bucket_) {
        stage(entry);
        return;
    }
    buckets_[bucket].push_back(entry);
    set_bit(bucket);
}

void CalendarLadder::stage(const CalendarEntry& entry) {
    staged_.push_back(entry);
    staged_min_when_ = std::min(staged_min_when_, entry.when);
}

const CalendarEntry* CalendarLadder::peek() {
    for (;;) {
        if (entries_ == 0) {
            return nullptr;
        }
        if (!have_window_) {
            rewindow();
            continue;
        }
        std::vector<CalendarEntry>& bucket = buckets_[cur_bucket_];
        if (cursor_ < bucket.size()) {
            // A staged insert preempts the head only with a strictly
            // earlier time: staged seqs are newer than anything already
            // sorted, so on equal times the in-place head stays first.
            if (staged_min_when_ < bucket[cursor_].when) {
                merge_staged();
            }
            return &bucket[cursor_];
        }
        if (!staged_.empty()) {
            activate_staged();
            continue;
        }
        bucket.clear();
        clear_bit(cur_bucket_);
        const std::size_t next = next_occupied(cur_bucket_ + 1);
        if (next < num_buckets_) {
            cur_bucket_ = next;
            cursor_ = 0;
            sort_bucket(next);
            continue;
        }
        have_window_ = false;  // window drained; remaining entries ladder out
    }
}

CalendarEntry CalendarLadder::pop() {
    std::vector<CalendarEntry>& bucket = buckets_[cur_bucket_];
    SWARMAVAIL_INVARIANT(have_window_ && cursor_ < bucket.size(),
                         "CalendarLadder::pop without a positioned head");
    --entries_;
    return bucket[cursor_++];
}

void CalendarLadder::merge_staged() {
    std::vector<CalendarEntry>& bucket = buckets_[cur_bucket_];
    ++stats_.staged_merges;
    if (staged_.size() <= kSmallMerge) {
        ++stats_.insertion_merges;
        // The common shape: an event handler scheduled one or two
        // entries that preempt the head. Splicing them into the sorted
        // remainder is a binary search plus a short memmove — the full
        // re-sort below would dwarf the work it orders.
        for (const CalendarEntry& entry : staged_) {
            const auto pos = std::upper_bound(
                bucket.begin() + static_cast<std::ptrdiff_t>(cursor_),
                bucket.end(), entry,
                [](const CalendarEntry& a, const CalendarEntry& b) {
                    return calendar_earlier(a, b);
                });
            bucket.insert(pos, entry);
        }
    } else {
        bucket.erase(bucket.begin(),
                     bucket.begin() + static_cast<std::ptrdiff_t>(cursor_));
        bucket.insert(bucket.end(), staged_.begin(), staged_.end());
        cursor_ = 0;
        sort_bucket(cur_bucket_);
    }
    staged_.clear();
    staged_min_when_ = std::numeric_limits<SimTime>::infinity();
}

void CalendarLadder::activate_staged() {
    std::vector<CalendarEntry>& bucket = buckets_[cur_bucket_];
    bucket.clear();
    bucket.swap(staged_);
    staged_min_when_ = std::numeric_limits<SimTime>::infinity();
    cursor_ = 0;
    set_bit(cur_bucket_);
    sort_bucket(cur_bucket_);
}

void CalendarLadder::rewindow() {
    SWARMAVAIL_INVARIANT(!ladder_.empty(),
                         "CalendarLadder: rewindow with an empty ladder");
    ++stats_.rewindows;
    const std::size_t count = ladder_.size();
    if (count <= kSmallLadder) {
        ++stats_.small_rewindows;
        // Small-ladder fast path. Tiny queues (the catalog engine's
        // sharded mode runs thousands of mostly-idle per-swarm queues
        // with a handful of live events each) would otherwise rewindow
        // every couple of pops: near-half sizing windows in only half
        // the ladder, so the window drains almost immediately. A queue
        // this size gains nothing from density-adaptive sizing — the
        // skew pathology the median split guards against needs a dense
        // head worth splitting — so span the full range, window in
        // everything, and make the next rewindow a full drain away.
        SimTime lo = ladder_[0].when;
        SimTime hi = lo;
        for (const CalendarEntry& entry : ladder_) {
            lo = std::min(lo, entry.when);
            hi = std::max(hi, entry.when);
        }
        SWARMAVAIL_INVARIANT(std::isfinite(lo) && std::isfinite(hi),
                             "CalendarLadder: non-finite event time in ladder");
        num_buckets_ = kMinBuckets;
        // A width that puts the max in the last bucket keeps every entry
        // inside the window while still spreading the batch, so pushes
        // arriving mid-drain usually land in a later bucket instead of
        // the active one (staging an active-bucket push costs a re-sort).
        // Routing stays monotone for any width, so pop order is
        // unaffected.
        SimTime width = (hi - lo) / static_cast<double>(kMinBuckets - 1);
        if (!(width > 0.0) || !std::isfinite(width)) {
            width = 1.0;
        }
        build_window(lo, width);
        return;
    }
    // Partition the ladder around its time median. Sizing the window from
    // the density of the *near half* instead of the full span keeps a few
    // far-future outliers (peer/publisher churn scheduled orders of
    // magnitude out) from stretching the bucket width until the dense head
    // collapses into one giant bucket -- the classic calendar-queue skew
    // pathology, where every near-future push then lands in the active
    // bucket and forces a staged-merge re-sort. Internal ladder order is
    // irrelevant to pop order (every bucket is fully sorted by (when, seq)
    // before it is consumed), so the nth_element shuffle is invisible.
    const std::size_t mid = (count - 1) / 2;
    std::nth_element(ladder_.begin(),
                     ladder_.begin() + static_cast<std::ptrdiff_t>(mid),
                     ladder_.end(),
                     [](const CalendarEntry& a, const CalendarEntry& b) {
                         return a.when < b.when;
                     });
    const SimTime t_mid = ladder_[mid].when;
    // The global minimum sits in the near partition.
    SimTime lo = t_mid;
    for (std::size_t i = 0; i < mid; ++i) {
        lo = std::min(lo, ladder_[i].when);
    }
    SWARMAVAIL_INVARIANT(std::isfinite(lo) && std::isfinite(t_mid),
                         "CalendarLadder: non-finite event time in ladder");
    // ~kTargetPerBucket entries per bucket over the near-half span, so the
    // window covers roughly the soonest half of the ladder and the far
    // tail rungs out to later rewindows. A degenerate near-half (all
    // entries at one instant) falls back to the full span, then to unit
    // width; ties never force merges (staged preemption is strict).
    SimTime width = (t_mid - lo) * static_cast<double>(2 * kTargetPerBucket) /
                    static_cast<double>(count);
    if (!(width > 0.0) || !std::isfinite(width)) {
        SimTime hi = t_mid;
        for (std::size_t i = mid + 1; i < count; ++i) {
            hi = std::max(hi, ladder_[i].when);
        }
        SWARMAVAIL_INVARIANT(std::isfinite(hi),
                             "CalendarLadder: non-finite event time in ladder");
        width = (hi - lo) * static_cast<double>(kTargetPerBucket) /
                static_cast<double>(count);
        if (!(width > 0.0) || !std::isfinite(width)) {
            width = 1.0;
        }
    }
    const std::size_t want =
        std::bit_ceil(count / (2 * kTargetPerBucket) | std::size_t{1});
    num_buckets_ = std::clamp(want, kMinBuckets, kMaxBuckets);
    build_window(lo, width);
}

void CalendarLadder::build_window(SimTime lo, SimTime width) {
    win_start_ = lo;
    width_ = width;
    inv_width_ = 1.0 / width;
    if (buckets_.size() < num_buckets_) {
        buckets_.resize(num_buckets_);
    }
    occupancy_.assign((num_buckets_ + 63) / 64, 0);
    scratch_.clear();
    for (const CalendarEntry& entry : ladder_) {
        const double offset = (entry.when - win_start_) * inv_width_;
        if (offset < static_cast<double>(num_buckets_)) {
            const auto bucket = static_cast<std::size_t>(offset);
            buckets_[bucket].push_back(entry);
            set_bit(bucket);
        } else {
            scratch_.push_back(entry);
        }
    }
    ladder_.swap(scratch_);
    stats_.ladder_spills += ladder_.size();  // rewindow leftovers past the window
    // The ladder minimum routes to bucket 0, so the window is never empty.
    cur_bucket_ = next_occupied(0);
    cursor_ = 0;
    sort_bucket(cur_bucket_);
    have_window_ = true;
}

void CalendarLadder::sort_bucket(std::size_t index) {
    std::vector<CalendarEntry>& bucket = buckets_[index];
    // Occupancy is observed at activation (the only moment a bucket's full
    // content is in hand anyway), so the hot push path stays untouched.
    stats_.max_bucket_occupancy =
        std::max<std::uint64_t>(stats_.max_bucket_occupancy, bucket.size());
    // Lambda (not the function's address) so the comparator inlines.
    std::sort(bucket.begin(), bucket.end(),
              [](const CalendarEntry& a, const CalendarEntry& b) {
                  return calendar_earlier(a, b);
              });
}

std::size_t CalendarLadder::next_occupied(std::size_t from) const noexcept {
    std::size_t word = from >> 6U;
    const std::size_t words = occupancy_.size();
    if (word >= words) {
        return num_buckets_;
    }
    std::uint64_t bits = occupancy_[word] >> (from & 63U);
    if (bits != 0) {
        return from + static_cast<std::size_t>(std::countr_zero(bits));
    }
    for (++word; word < words; ++word) {
        bits = occupancy_[word];
        if (bits != 0) {
            return (word << 6U) + static_cast<std::size_t>(std::countr_zero(bits));
        }
    }
    return num_buckets_;
}

void CalendarLadder::audit_structure() const {
    std::size_t counted = staged_.size() + ladder_.size();
    if (have_window_) {
        for (std::size_t b = 0; b < num_buckets_; ++b) {
            const std::vector<CalendarEntry>& bucket = buckets_[b];
            if (b < cur_bucket_) {
                SWARMAVAIL_INVARIANT(bucket.empty(),
                                     "CalendarLadder: drained bucket not empty");
                continue;
            }
            if (b == cur_bucket_) {
                SWARMAVAIL_INVARIANT(cursor_ <= bucket.size(),
                                     "CalendarLadder: cursor past active bucket");
                counted += bucket.size() - cursor_;
                for (std::size_t i = cursor_ + 1; i < bucket.size(); ++i) {
                    SWARMAVAIL_INVARIANT(
                        calendar_earlier(bucket[i - 1], bucket[i]),
                        "CalendarLadder: active bucket out of (when, seq) order");
                }
                continue;
            }
            counted += bucket.size();
            SWARMAVAIL_INVARIANT(bucket.empty() || test_bit(b),
                                 "CalendarLadder: occupied bucket missing its bit");
            for (const CalendarEntry& entry : bucket) {
                audit::check_calendar_bucket(entry.when, win_start_, width_,
                                             num_buckets_, b);
            }
        }
        for (const CalendarEntry& entry : ladder_) {
            audit::check_ladder_horizon(entry.when, win_start_, width_,
                                        num_buckets_);
        }
        SimTime staged_min = std::numeric_limits<SimTime>::infinity();
        for (const CalendarEntry& entry : staged_) {
            staged_min = std::min(staged_min, entry.when);
        }
        SWARMAVAIL_INVARIANT(staged_min == staged_min_when_,
                             "CalendarLadder: staged minimum cache out of sync");
    } else {
        SWARMAVAIL_INVARIANT(staged_.empty(),
                             "CalendarLadder: staged entries without a window");
        for (const std::vector<CalendarEntry>& bucket : buckets_) {
            SWARMAVAIL_INVARIANT(bucket.empty(),
                                 "CalendarLadder: bucket entries without a window");
        }
    }
    SWARMAVAIL_INVARIANT(counted == entries_,
                         "CalendarLadder: entry count drifted");
}

}  // namespace swarmavail::sim
