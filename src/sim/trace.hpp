// Structured event tracing for the simulation engines.
//
// The simulators emit POD TraceRecords (sim-time, kind, entity id, two
// payload doubles) into a Tracer, which ring-buffers them and flushes to a
// pluggable TraceSink: JSONL (one object per line, lossless doubles), CSV
// (via the util/table quoting rules), an in-memory vector, or /dev/null.
// This is the longitudinal-telemetry substrate the paper's time-resolved
// observables (busy periods, seed-absence intervals, per-peer download
// times) are extracted from — see examples/trace_inspect.cpp.
//
// Cost model, by layer:
//   - compile time: building with SWARMAVAIL_TRACING_DISABLED (CMake:
//     -DSWARMAVAIL_ENABLE_TRACING=OFF) removes every engine call site; the
//     Tracer/sink types remain available for direct use.
//   - runtime, no tracer attached (the default): the SWARMAVAIL_TRACE macro
//     is a null-pointer check — one branch per call site.
//   - runtime, tracer attached but disabled: one additional flag branch.
//
// Tracing never draws randomness or mutates simulator state, so enabling
// it cannot change any simulation result.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace swarmavail {
class CheckFailure;
}  // namespace swarmavail

namespace swarmavail::sim {

/// What a trace record describes. Values are stable across runs (they
/// appear in serialized traces); append only.
enum class TraceKind : std::uint32_t {
    kPeerArrival = 0,     ///< entity=peer id, a=capacity (swarm) / unused
    kPeerCompletion = 1,  ///< entity=peer id, a=download time, b=waited time
    kPeerLost = 2,        ///< entity=peer id (impatient peer left unserved)
    kPeerStranded = 3,    ///< entity=peer id (interrupted by a busy-period end)
    kPublisherUp = 4,     ///< entity=online publisher count after the change
    kPublisherDown = 5,   ///< entity=online publisher count after the change
    kAvailabilityBegin = 6,  ///< content became available (busy period opens)
    kAvailabilityEnd = 7,    ///< a=interval begin time, b=peers served in it
    kTransferStart = 8,      ///< entity=transfer id, a=piece, b=duration
    kTransferComplete = 9,   ///< entity=transfer id, a=piece, b=destination peer
    kCustom = 10,            ///< free-form; payload meaning is caller-defined
};

/// Name used in serialized traces ("peer_arrival", ...).
[[nodiscard]] const char* trace_kind_name(TraceKind kind) noexcept;
/// Inverse of trace_kind_name; returns false for unknown names.
[[nodiscard]] bool trace_kind_from_name(std::string_view name, TraceKind& out) noexcept;

/// One trace event. POD on purpose: records are buffered and copied in
/// bulk, and sinks serialize them without touching the heap per record.
struct TraceRecord {
    double time = 0.0;           ///< sim-time (seconds)
    TraceKind kind = TraceKind::kCustom;
    std::uint32_t reserved = 0;  ///< padding; always zero
    std::uint64_t entity = 0;    ///< peer/transfer/publisher id (kind-specific)
    double a = 0.0;              ///< payload (kind-specific)
    double b = 0.0;              ///< payload (kind-specific)

    friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};
static_assert(std::is_trivially_copyable_v<TraceRecord>);
static_assert(sizeof(TraceRecord) == 40);

/// Where flushed records go. Sinks see records in emission order.
class TraceSink {
 public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceRecord* records, std::size_t count) = 0;
    /// Out-of-band diagnostic line (invariant-audit failures carry their
    /// message through here with the sim-time attached). Default: dropped.
    virtual void annotate(double time, std::string_view text);
    /// Called once when the producer is done (Tracer destructor).
    virtual void finish() {}
};

/// Discards everything; for overhead measurement and "metrics only" runs.
class NullTraceSink final : public TraceSink {
 public:
    void write(const TraceRecord* records, std::size_t count) override;
};

/// Buffers records (and annotations) in memory; for tests and in-process
/// consumers like examples/swarm_timeline.cpp.
class MemoryTraceSink final : public TraceSink {
 public:
    void write(const TraceRecord* records, std::size_t count) override;
    void annotate(double time, std::string_view text) override;

    [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] const std::vector<std::pair<double, std::string>>& annotations()
        const noexcept {
        return annotations_;
    }

 private:
    std::vector<TraceRecord> records_;
    std::vector<std::pair<double, std::string>> annotations_;
};

/// One JSON object per line:
///   {"t":12.5,"kind":"peer_arrival","entity":7,"a":0,"b":0}
/// Doubles use the shortest lossless form, so parsing the stream back
/// reproduces every record bit for bit. Annotations become
///   {"t":...,"kind":"annotation","text":"..."} with JSON string escaping.
class JsonlTraceSink final : public TraceSink {
 public:
    /// The stream must outlive the sink; the sink never owns it.
    explicit JsonlTraceSink(std::ostream& os) : os_(os) {}
    void write(const TraceRecord* records, std::size_t count) override;
    void annotate(double time, std::string_view text) override;
    void finish() override;

 private:
    std::ostream& os_;
};

/// CSV with header "time,kind,entity,a,b" (util/table quoting rules,
/// lossless doubles). Annotations are written as kind "annotation" rows
/// with the text in the `a` column position — see read_trace_csv.
class CsvTraceSink final : public TraceSink {
 public:
    explicit CsvTraceSink(std::ostream& os);
    void write(const TraceRecord* records, std::size_t count) override;
    void annotate(double time, std::string_view text) override;
    void finish() override;

 private:
    std::ostream& os_;
};

/// Ring-buffering front end the simulators write through. Owned by the
/// caller and attached to a run via the config's `tracer` pointer; one
/// tracer serves one simulator at a time (no internal locking).
class Tracer {
 public:
    /// `sink` must outlive the tracer. `buffer_capacity` records are
    /// buffered between flushes (>= 1).
    explicit Tracer(TraceSink& sink, std::size_t buffer_capacity = 4096);
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Runtime gate. Disabled (the default), record() is a single branch.
    void set_enabled(bool on) noexcept { enabled_ = on; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    void record(TraceKind kind, double time, std::uint64_t entity = 0, double a = 0.0,
                double b = 0.0) {
        if (!enabled_) {
            return;
        }
        buffer_.push_back(TraceRecord{time, kind, 0, entity, a, b});
        if (buffer_.size() >= capacity_) {
            flush();
        }
    }

    /// Flushes buffered records, then forwards the annotation so the sink
    /// sees it in order. Annotations bypass the enabled() gate: they carry
    /// failure diagnostics that must not be lost.
    void annotate(double time, std::string_view text);

    /// Pushes buffered records to the sink. The simulators flush at the
    /// end of a run; call this before reading a sink mid-run.
    void flush();

    [[nodiscard]] std::uint64_t records_emitted() const noexcept { return emitted_; }

 private:
    TraceSink& sink_;
    std::vector<TraceRecord> buffer_;
    std::size_t capacity_;
    std::uint64_t emitted_ = 0;
    bool enabled_ = false;
};

/// Annotation parsed back from a serialized trace.
struct TraceAnnotation {
    double time = 0.0;
    std::string text;
};

/// A deserialized trace: records plus out-of-band annotations.
struct ParsedTrace {
    std::vector<TraceRecord> records;
    std::vector<TraceAnnotation> annotations;
};

/// Parses a JSONL trace produced by JsonlTraceSink. Restricted to that
/// writer's output shape (this is a trace reader, not a JSON library);
/// throws std::invalid_argument on malformed lines.
[[nodiscard]] ParsedTrace read_trace_jsonl(std::istream& in);

/// Parses a CSV trace produced by CsvTraceSink (header required).
[[nodiscard]] ParsedTrace read_trace_csv(std::istream& in);

/// Routes an invariant-audit failure through the structured sink: emits an
/// annotation at `sim_time` carrying the check's file, line, and message.
/// Null tracer is a no-op, so call sites stay unconditional.
void trace_check_failure(Tracer* tracer, double sim_time, const CheckFailure& failure);

}  // namespace swarmavail::sim

#if defined(SWARMAVAIL_TRACING_DISABLED)
#define SWARMAVAIL_TRACE(tracer, ...) static_cast<void>(0)
#else
/// Engine-side trace call site: one null-pointer branch when no tracer is
/// attached; compiled out entirely under SWARMAVAIL_TRACING_DISABLED.
#define SWARMAVAIL_TRACE(tracer, ...)          \
    do {                                       \
        if ((tracer) != nullptr) {             \
            (tracer)->record(__VA_ARGS__);     \
        }                                      \
    } while (false)
#endif
