#include "sim/fingerprint.hpp"

namespace swarmavail::sim {

void Fingerprint::fold_event(double when, std::uint64_t seq,
                             std::uint32_t kind) noexcept {
    std::uint64_t x = state_ + std::bit_cast<std::uint64_t>(when);
    x = mix(x) + seq;
    x = mix(x) + kind;
    state_ = mix(x);
    ++events_;
}

std::string fingerprint_hex(std::uint64_t digest) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (std::size_t i = 0; i < 16; ++i) {
        out[15 - i] = kHex[digest & 0xFU];
        digest >>= 4U;
    }
    return out;
}

}  // namespace swarmavail::sim
