// Generic replication/sweep harness used by benches and downstream users:
// run a stochastic experiment over independent seeds, accumulate samples,
// and report means with confidence intervals -- the scaffolding every
// Section 4-style experiment needs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace swarmavail::sim {

/// Summary of one experiment cell (one parameter setting).
struct ExperimentCell {
    std::string label;
    SampleSet samples;          ///< pooled per-peer (or per-event) samples
    StreamingStats run_means;   ///< per-replication means (for run-level CIs)
    std::size_t replications = 0;

    /// Mean of the pooled samples (0 if empty).
    [[nodiscard]] double mean() const {
        return samples.empty() ? 0.0 : samples.mean();
    }
    /// Half-width of the ~95% CI over replication means: the honest
    /// uncertainty when samples within a run are correlated.
    [[nodiscard]] double ci95() const { return run_means.ci95_halfwidth(); }
};

/// One replication's output: a batch of samples (may be empty).
using Replication = std::function<std::vector<double>(std::uint64_t seed)>;

/// Runs `replications` independent seeds (seed, seed+1, ...) of `body` and
/// pools the results. Requires replications >= 1.
[[nodiscard]] ExperimentCell run_replications(const std::string& label,
                                              const Replication& body,
                                              std::size_t replications,
                                              std::uint64_t seed);

/// A one-dimensional sweep: runs `body(value, seed)` for every value.
struct SweepPoint {
    double value = 0.0;
    ExperimentCell cell;
};

using SweepBody = std::function<std::vector<double>(double value, std::uint64_t seed)>;

[[nodiscard]] std::vector<SweepPoint> run_sweep(const std::vector<double>& values,
                                                const SweepBody& body,
                                                std::size_t replications,
                                                std::uint64_t seed);

/// The sweep point with the smallest pooled mean; ties break toward the
/// earlier value. Requires a non-empty sweep with non-empty samples.
[[nodiscard]] const SweepPoint& best_point(const std::vector<SweepPoint>& sweep);

}  // namespace swarmavail::sim
