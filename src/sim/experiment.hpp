// Generic replication/sweep harness used by benches and downstream users:
// run a stochastic experiment over independent seeds, accumulate samples,
// and report means with confidence intervals -- the scaffolding every
// Section 4-style experiment needs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/parallel.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::sim {

/// Summary of one experiment cell (one parameter setting).
struct ExperimentCell {
    std::string label;
    SampleSet samples;          ///< pooled per-peer (or per-event) samples
    StreamingStats run_means;   ///< per-replication means (for run-level CIs)
    std::size_t replications = 0;          ///< replications requested
    std::size_t completed_replications = 0;  ///< replications actually run
    bool stopped_early = false;  ///< a StopRule ended the batch before all ran
    /// Determinism fingerprint of the batch (see sim/fingerprint.hpp):
    /// each replication's sample bits digested worker-side, the digests
    /// folded in index order. Bit-identical for every thread count; 0 when
    /// the build defines SWARMAVAIL_FINGERPRINT_DISABLED.
    std::uint64_t fingerprint = 0;

    /// Mean of the pooled samples (0 if empty).
    [[nodiscard]] double mean() const {
        return samples.empty() ? 0.0 : samples.mean();
    }
    /// Half-width of the ~95% CI over replication means: the honest
    /// uncertainty when samples within a run are correlated.
    [[nodiscard]] double ci95() const { return run_means.ci95_halfwidth(); }
};

/// Optional run-time controls for a replication batch: threading policy,
/// an attached telemetry session (observer only — never changes results),
/// and an optional early-stop rule over the per-replication run means.
///
/// With a stop rule set, workers stop claiming new replications once the
/// rule is satisfied by the run means observed so far (in completion
/// order). The cell then reports completed_replications < replications and
/// stopped_early = true, and its statistics pool exactly the replications
/// that ran. Under ParallelPolicy{1} the stopped prefix is deterministic
/// (seed, seed+1, ..., seed+k); with more threads the cut point depends on
/// scheduling, which is why the decision is recorded in the cell.
struct RunControl {
    ParallelPolicy policy{};
    telemetry::TelemetrySession* telemetry = nullptr;
    std::optional<telemetry::StopRule> stop_rule{};
};

/// One replication's output: a batch of samples (may be empty).
using Replication = std::function<std::vector<double>(std::uint64_t seed)>;

/// Runs `replications` independent seeds (seed, seed+1, ...) of `body` and
/// pools the results. Requires replications >= 1.
///
/// Replications run in parallel according to `policy` (default: all
/// hardware threads, overridable via SWARMAVAIL_THREADS; ParallelPolicy{1}
/// is the serial path). Per-replication results are buffered per index and
/// merged in index order, so the returned cell is bit-identical for every
/// thread count. Under any policy other than ParallelPolicy{1}, `body`
/// must be safe to invoke concurrently from multiple threads (each call
/// should derive all randomness and state from its seed argument).
[[nodiscard]] ExperimentCell run_replications(const std::string& label,
                                              const Replication& body,
                                              std::size_t replications,
                                              std::uint64_t seed,
                                              const ParallelPolicy& policy = {});

/// RunControl form: same contract as above, plus live telemetry (progress
/// counters, per-cell run-mean convergence tracking under the cell label)
/// and optional early stopping. Without a stop rule the returned cell is
/// bit-identical to the ParallelPolicy overload, telemetry attached or not.
[[nodiscard]] ExperimentCell run_replications(const std::string& label,
                                              const Replication& body,
                                              std::size_t replications,
                                              std::uint64_t seed,
                                              const RunControl& control);

/// A replication body that also records into a per-replication metrics
/// registry (each call gets its own, so recording needs no synchronization).
using MetricsReplication =
    std::function<std::vector<double>(std::uint64_t seed, MetricsRegistry& metrics)>;

/// Like run_replications, but additionally folds each replication's private
/// metrics registry into `merged_metrics` strictly in index order — the
/// merged counters, gauges, and histograms are bit-identical for every
/// thread count, like the sample statistics.
[[nodiscard]] ExperimentCell run_replications(const std::string& label,
                                              const MetricsReplication& body,
                                              std::size_t replications,
                                              std::uint64_t seed,
                                              MetricsRegistry& merged_metrics,
                                              const ParallelPolicy& policy = {});

/// RunControl form of the metrics overload; see the Replication variant.
/// Under a stop rule, only the registries of replications that ran are
/// merged (skipped registries are empty).
[[nodiscard]] ExperimentCell run_replications(const std::string& label,
                                              const MetricsReplication& body,
                                              std::size_t replications,
                                              std::uint64_t seed,
                                              MetricsRegistry& merged_metrics,
                                              const RunControl& control);

/// A one-dimensional sweep: runs `body(value, seed)` for every value.
struct SweepPoint {
    double value = 0.0;
    ExperimentCell cell;
};

using SweepBody = std::function<std::vector<double>(double value, std::uint64_t seed)>;

/// Seeds are assigned per cell before any cell runs, so results do not
/// depend on the policy; see run_replications for the threading contract.
[[nodiscard]] std::vector<SweepPoint> run_sweep(const std::vector<double>& values,
                                                const SweepBody& body,
                                                std::size_t replications,
                                                std::uint64_t seed,
                                                const ParallelPolicy& policy = {});

/// The sweep point with the smallest pooled mean; ties break toward the
/// earlier value. Requires a non-empty sweep with non-empty samples.
[[nodiscard]] const SweepPoint& best_point(const std::vector<SweepPoint>& sweep);

}  // namespace swarmavail::sim
