// Stochastic processes that drive the simulators: Poisson arrivals,
// on/off (alternating renewal) sources, and trace-driven arrivals.
#pragma once

#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/random.hpp"

namespace swarmavail::sim {

/// Poisson arrival process: invokes `on_arrival` at exponentially spaced
/// times until stop() is called or the horizon passed to start() is hit.
class PoissonProcess {
 public:
    /// `rate` in events/s, must be > 0.
    PoissonProcess(EventQueue& queue, Rng& rng, double rate,
                   std::function<void()> on_arrival);

    /// Schedules the first arrival; events self-reschedule until `horizon`.
    void start(SimTime horizon);

    /// Stops generating further arrivals (the pending one is cancelled).
    void stop();

 private:
    void schedule_next();

    EventQueue& queue_;
    Rng& rng_;
    double rate_;
    std::function<void()> on_arrival_;
    SimTime horizon_ = 0.0;
    EventId pending_ = 0;
    bool running_ = false;
};

/// On/off alternating-renewal source (the intermittent publisher of
/// Section 4.3): exponentially distributed on and off durations, with
/// callbacks at each transition. Starts in the "on" state.
class OnOffProcess {
 public:
    /// Mean durations in seconds, both > 0.
    OnOffProcess(EventQueue& queue, Rng& rng, double mean_on, double mean_off,
                 std::function<void()> on_up, std::function<void()> on_down);

    /// Fires `on_up` immediately (entering the on state) and schedules the
    /// alternation until `horizon`.
    void start(SimTime horizon);
    void stop();

    [[nodiscard]] bool is_on() const noexcept { return on_; }

 private:
    void schedule_transition();

    EventQueue& queue_;
    Rng& rng_;
    double mean_on_;
    double mean_off_;
    std::function<void()> on_up_;
    std::function<void()> on_down_;
    SimTime horizon_ = 0.0;
    EventId pending_ = 0;
    bool on_ = false;
    bool running_ = false;
};

/// Trace-driven arrivals: fires `on_arrival` at each absolute time in the
/// trace (sorted ascending). Used for the Section 4.3.4 sensitivity study
/// with measured/synthetic arrival patterns instead of Poisson.
class TraceArrivalProcess {
 public:
    TraceArrivalProcess(EventQueue& queue, std::vector<SimTime> arrival_times,
                        std::function<void()> on_arrival);

    /// Schedules every trace arrival up front (they are already known).
    void start();

 private:
    EventQueue& queue_;
    std::vector<SimTime> times_;
    std::function<void()> on_arrival_;
};

/// Samples a non-homogeneous Poisson process with exponentially decaying
/// rate lambda(t) = lambda0 * exp(-t / tau) over [0, horizon] by thinning.
/// Models the flash-crowd arrivals of a newly published swarm (Figure 7a).
[[nodiscard]] std::vector<SimTime> sample_decaying_poisson(Rng& rng, double lambda0,
                                                           double tau, SimTime horizon);

/// Samples a homogeneous Poisson process over [0, horizon]: the steady
/// arrivals of an old swarm (Figure 7b).
[[nodiscard]] std::vector<SimTime> sample_homogeneous_poisson(Rng& rng, double rate,
                                                              SimTime horizon);

}  // namespace swarmavail::sim
