#include "sim/availability_process.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/fingerprint.hpp"
#include "sim/processes.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/random.hpp"

namespace swarmavail::sim {
namespace {

/// Shared bucket shape for the "avail.*" duration histograms: geometric
/// bins covering [1s, 2^20 s) — six decades of busy/idle/download scales.
constexpr double kDurationHistLo = 1.0;
constexpr double kDurationHistHi = 1048576.0;
constexpr std::size_t kDurationHistBins = 20;

/// Per-peer bookkeeping while the peer is in the system. Records live in a
/// flat vector ordered by id (ids are handed out monotonically and erases
/// preserve order), so lookups are a binary search over one or two cache
/// lines instead of a hash probe, and entering/leaving the system never
/// allocates. The old layout — two unordered_maps (peer state plus a
/// separate downloading index) — cost two node allocations per served peer
/// and scattered the per-swarm state across the heap, which dominated the
/// shared-queue catalog profile where thousands of mostly-idle swarms each
/// touch their state once per event.
struct PeerState {
    std::uint64_t id = 0;
    SimTime arrival = 0.0;
    double waited = 0.0;      ///< idle time accumulated so far
    SimTime wait_start = 0.0; ///< when the current wait began (if blocked)
    EventId completion = 0;   ///< pending completion event (if downloading)
    bool downloading = false; ///< has a pending completion event
};

/// Fingerprint event kinds, one per event handler of this process. The
/// codes feed serialized digests, so they are stable: append only.
enum FpKind : std::uint32_t {
    kFpPeerArrival = 1,
    kFpCompletion = 2,
    kFpPublisherArrival = 3,
    kFpPublisherDeparture = 4,
    kFpLingerEnd = 5,
    kFpPublisherUp = 6,
    kFpPublisherDown = 7,
};

/// Validates the config before any member construction, so a bad config
/// fails with the simulator's own message rather than a process ctor's.
const AvailabilitySimConfig& validated(const AvailabilitySimConfig& config) {
    config.params.validate();
    require(config.coverage_threshold >= 1,
            "AvailabilitySim: coverage threshold must be >= 1");
    require(config.linger_time >= 0.0, "AvailabilitySim: linger_time must be >= 0");
    require(config.horizon > 0.0, "AvailabilitySim: horizon must be > 0");
    return config;
}

}  // namespace

/// The full simulation state machine for one swarm. Every random draw
/// happens inside this process's event handlers using its private rng_, and
/// every scheduled event belongs to this process, so the sample path is a
/// function of the config alone — co-tenants on a shared queue cannot
/// perturb it (cross-swarm determinism; pinned by the catalog-engine tests).
struct AvailabilityProcess::Impl {
    Impl(EventQueue& queue, const AvailabilitySimConfig& config)
        : config_(validated(config)),
          rng_(config.seed),
          queue_(queue),
          peer_arrivals_(queue, rng_, config.params.peer_arrival_rate,
                         [this] { on_peer_arrival(); }),
          publisher_arrivals_(queue, rng_, config.params.publisher_arrival_rate,
                              [this] { on_publisher_arrival(); }),
          on_off_(queue, rng_, config.params.publisher_residence,
                  1.0 / config.params.publisher_arrival_rate,
                  [this] { on_publisher_up(); }, [this] { on_publisher_down(); }) {
        if (config_.metrics != nullptr) {
            bind_metrics(*config_.metrics);
        }
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        if (config_.fingerprint) {
            fingerprint_state_ = Fingerprint{config_.seed};
            fingerprint_ = &fingerprint_state_;
        }
#endif
    }

    void start() {
        SWARMAVAIL_REQUIRE(!started_, "AvailabilityProcess: start() called twice");
        started_ = true;
        peer_arrivals_.start(config_.horizon);
        if (config_.publisher_mode == PublisherMode::kPoissonArrivals) {
            publisher_arrivals_.start(config_.horizon);
        } else {
            on_off_.start(config_.horizon);
        }
    }

    AvailabilitySimResult finish() {
        SWARMAVAIL_REQUIRE(started_ && !finished_,
                           "AvailabilityProcess: finish() requires a started, "
                           "unfinished process");
        finished_ = true;
        if (config_.tracer != nullptr) {
            config_.tracer->flush();
        }
        // Close the final availability and publisher-uptime intervals for
        // the time-averages.
        account_interval(config_.horizon);
        if (publishers_ > 0) {
            publisher_online_seconds_ += config_.horizon - last_publisher_change_;
        }
        AvailabilitySimResult out = result_;
        const double denom = unavailable_seconds_ + available_seconds_;
        out.unavailable_time_fraction = denom > 0.0 ? unavailable_seconds_ / denom : 1.0;
        out.arrival_unavailability =
            out.arrivals > 0
                ? static_cast<double>(arrivals_blocked_) / static_cast<double>(out.arrivals)
                : 0.0;
        out.publisher_online_fraction = publisher_online_seconds_ / config_.horizon;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        if (fingerprint_ != nullptr) {
            // Terminal fold: the RNG draw count catches divergences that
            // consumed randomness without changing any visible event.
            fingerprint_->fold(rng_.draws());
            out.fingerprint = fingerprint_->digest();
            out.fingerprint_events = fingerprint_->events();
        }
#endif
        return out;
    }

    using PeerId = std::uint64_t;

    /// Resolves every metric reference once, so event handlers only touch
    /// cached pointers (the registry lookup never runs per event).
    void bind_metrics(MetricsRegistry& m) {
        m_arrivals_ = &m.counter("avail.arrivals");
        m_served_ = &m.counter("avail.served");
        m_lost_ = &m.counter("avail.lost");
        m_stranded_ = &m.counter("avail.stranded");
        m_publisher_up_ = &m.counter("avail.publisher_up");
        m_publisher_down_ = &m.counter("avail.publisher_down");
        const auto hist = [&m](std::string_view name) {
            return &m.histogram(name, kDurationHistLo, kDurationHistHi,
                                kDurationHistBins, HistogramScale::kLog2);
        };
        m_busy_hist_ = hist("avail.busy_period_s");
        m_idle_hist_ = hist("avail.idle_period_s");
        m_download_hist_ = hist("avail.download_time_s");
        m_wait_hist_ = hist("avail.wait_time_s");
        m_pub_up_interval_ = hist("avail.publisher_up_interval_s");
        m_pub_down_interval_ = hist("avail.publisher_down_interval_s");
        m_peers_gauge_ = &m.gauge("avail.peers_in_system");
        m_queue_depth_ = &m.gauge("avail.queue_depth");
    }

    /// Samples the population/queue-depth gauges; called at arrivals and
    /// completions so the gauge statistics form an event-sampled series.
    /// Note queue_depth counts the whole queue: on a shared queue it
    /// includes co-tenant events (which is why the catalog engine leaves
    /// per-swarm metrics unbound).
    void sample_gauges() {
        if (m_peers_gauge_ != nullptr) {
            m_peers_gauge_->set(static_cast<double>(peers_.size()));
            m_queue_depth_->set(static_cast<double>(queue_.size()));
        }
    }

    /// Locates a peer's record by id (binary search: peers_ stays sorted
    /// because ids are handed out monotonically and erases keep order).
    /// Requires the peer to be in the system.
    [[nodiscard]] PeerState& peer_at(PeerId id) {
        const auto it = std::lower_bound(
            peers_.begin(), peers_.end(), id,
            [](const PeerState& peer, PeerId key) { return peer.id < key; });
        ensure(it != peers_.end() && it->id == id,
               "AvailabilitySim: lookup of a peer not in the system");
        return *it;
    }

    [[nodiscard]] std::size_t coverage() const noexcept {
        return downloading_count_ + lingering_;
    }

    void account_interval(SimTime now) {
        const double span = now - interval_start_;
        if (span > 0.0) {
            (available_ ? available_seconds_ : unavailable_seconds_) += span;
        }
        interval_start_ = now;
    }

    void become_available() {
        SWARMAVAIL_PROF_SCOPE("avail.busy_transition");
        account_interval(queue_.now());
        available_ = true;
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kAvailabilityBegin, queue_.now());
        if (idle_open_) {
            const double idle = queue_.now() - idle_start_;
            result_.idle_periods.add(idle);
            if (m_idle_hist_ != nullptr) {
                m_idle_hist_->add(idle);
            }
            idle_open_ = false;
        }
        busy_start_ = queue_.now();
        busy_open_ = true;
        served_this_busy_ = 0;
        // Blocked (patient) peers immediately begin service.
        for (PeerId id : blocked_) {
            PeerState& peer = peer_at(id);
            peer.waited += queue_.now() - peer.wait_start;
            start_service(peer);
        }
        blocked_.clear();
    }

    void become_unavailable() {
        SWARMAVAIL_PROF_SCOPE("avail.busy_transition");
        account_interval(queue_.now());
        available_ = false;
        if (busy_open_) {
            const double busy = queue_.now() - busy_start_;
            result_.busy_periods.add(busy);
            result_.peers_per_busy_period.add(static_cast<double>(served_this_busy_));
            if (m_busy_hist_ != nullptr) {
                m_busy_hist_->add(busy);
            }
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kAvailabilityEnd, queue_.now(), 0,
                             busy_start_, static_cast<double>(served_this_busy_));
            busy_open_ = false;
        }
        idle_start_ = queue_.now();
        idle_open_ = true;
        // Downloading peers are interrupted mid-download (the dotted lines of
        // Figure 2): they block until a publisher returns, or leave if
        // impatient. By memorylessness their remaining service on resume is
        // a fresh Exp(s/mu), matching the model's renewal view.
        // Peers are interrupted in ascending id order -- the vector's own
        // order -- which matches the sorted-id order the map-based layout
        // had to reconstruct, so the blocked_ queue (and with it the order
        // service resumes, which consumes RNG draws) is unchanged.
        std::size_t keep = 0;
        for (std::size_t i = 0; i < peers_.size(); ++i) {
            PeerState& peer = peers_[i];
            if (!peer.downloading) {
                peers_[keep++] = peers_[i];
                continue;
            }
            queue_.cancel(peer.completion);
            peer.downloading = false;
            --downloading_count_;
            ++result_.stranded;
            if (m_stranded_ != nullptr) {
                m_stranded_->add();
            }
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerStranded, queue_.now(),
                             peer.id);
            if (config_.patient_peers) {
                peer.wait_start = queue_.now();
                blocked_.push_back(peer.id);
                peers_[keep++] = peers_[i];
            } else {
                ++result_.lost;
                if (m_lost_ != nullptr) {
                    m_lost_->add();
                }
                SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerLost, queue_.now(),
                                 peer.id);
            }
        }
        peers_.resize(keep);
        // Lingering seeds have nothing to serve once the content is dead;
        // they exit (their coverage contribution ended the moment the
        // threshold was crossed). Bump the epoch so their pending departure
        // events become no-ops.
        lingering_ = 0;
        ++linger_epoch_;
    }

    /// Invoked after any departure/publisher change that can end a busy period.
    void maybe_end_busy_period() {
        if (available_ && publishers_ == 0 && coverage() < config_.coverage_threshold) {
            become_unavailable();
        }
    }

    /// Invariant-audit pass, run after every event handler when
    /// config_.debug_audit is set: peers are conserved across arrivals,
    /// completions and losses; every in-system peer is accounted as either
    /// downloading or blocked; populations are non-negative; and the
    /// busy/idle bookkeeping agrees with the availability flag.
    void audit_state() const {
        if (!config_.debug_audit) {
            return;
        }
        audit::check_peer_conservation(result_.arrivals, result_.served, result_.lost,
                                       peers_.size());
        std::size_t recomputed_downloading = 0;
        for (const PeerState& peer : peers_) {
            recomputed_downloading += peer.downloading ? 1U : 0U;
        }
        SWARMAVAIL_INVARIANT(recomputed_downloading == downloading_count_,
                             "AvailabilitySim: downloading counter diverged from "
                             "the per-peer flags");
        SWARMAVAIL_INVARIANT(downloading_count_ + blocked_.size() == peers_.size(),
                             "AvailabilitySim: peers_ diverged from the union of "
                             "downloading and blocked sets");
        SWARMAVAIL_INVARIANT(
            std::is_sorted(peers_.begin(), peers_.end(),
                           [](const PeerState& a, const PeerState& b) {
                               return a.id < b.id;
                           }),
            "AvailabilitySim: peer records out of id order");
        audit::check_nonnegative_count("publishers",
                                       static_cast<std::int64_t>(publishers_));
        audit::check_nonnegative_count("lingering seeds",
                                       static_cast<std::int64_t>(lingering_));
        SWARMAVAIL_INVARIANT(available_ || downloading_count_ == 0,
                             "AvailabilitySim: peers downloading while content is "
                             "unavailable");
        SWARMAVAIL_INVARIANT(available_ == busy_open_,
                             "AvailabilitySim: availability flag out of sync with the "
                             "open busy period");
        SWARMAVAIL_INVARIANT(!available_ || blocked_.empty(),
                             "AvailabilitySim: blocked peers during an available "
                             "period");
    }

    /// Applies a publisher-count delta in signed arithmetic so the audit
    /// catches an underflow before it wraps the unsigned counter. This is
    /// the single choke point for publisher-count changes, so the 0<->1
    /// crossings observed here are exactly the publisher uptime/downtime
    /// interval boundaries.
    void change_publishers(std::int64_t delta) {
        const std::int64_t updated = static_cast<std::int64_t>(publishers_) + delta;
        if (config_.debug_audit) {
            audit::check_nonnegative_count("publishers", updated);
        }
        const bool was_online = publishers_ > 0;
        publishers_ = static_cast<std::size_t>(updated);
        const bool is_online = publishers_ > 0;
        if (was_online == is_online) {
            return;
        }
        if (is_online) {
            ++result_.publisher_up_transitions;
            if (m_publisher_up_ != nullptr) {
                m_publisher_up_->add();
            }
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPublisherUp, queue_.now(),
                             publishers_);
            if (publisher_ever_toggled_ && m_pub_down_interval_ != nullptr) {
                m_pub_down_interval_->add(queue_.now() - last_publisher_change_);
            }
        } else {
            publisher_online_seconds_ += queue_.now() - last_publisher_change_;
            if (m_publisher_down_ != nullptr) {
                m_publisher_down_->add();
            }
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPublisherDown, queue_.now(),
                             publishers_);
            if (m_pub_up_interval_ != nullptr) {
                m_pub_up_interval_->add(queue_.now() - last_publisher_change_);
            }
        }
        last_publisher_change_ = queue_.now();
        publisher_ever_toggled_ = true;
    }

    void on_peer_arrival() {
        SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpPeerArrival);
        ++result_.arrivals;
        const PeerId id = next_peer_id_++;
        if (m_arrivals_ != nullptr) {
            m_arrivals_->add();
        }
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerArrival, queue_.now(), id);
        PeerState peer;
        peer.id = id;
        peer.arrival = queue_.now();
        if (available_) {
            peers_.push_back(peer);
            start_service(peers_.back());
        } else {
            ++arrivals_blocked_;
            if (config_.patient_peers) {
                peer.wait_start = queue_.now();
                peers_.push_back(peer);
                blocked_.push_back(id);
            } else {
                ++result_.lost;
                if (m_lost_ != nullptr) {
                    m_lost_->add();
                }
                SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerLost, queue_.now(), id);
            }
        }
        sample_gauges();
        audit_state();
    }

    void start_service(PeerState& peer) {
        const double service = rng_.exponential_mean(config_.params.service_time());
        const PeerId id = peer.id;
        peer.completion =
            queue_.schedule_at(queue_.now() + service, [this, id] { on_completion(id); });
        peer.downloading = true;
        ++downloading_count_;
    }

    void on_completion(PeerId id) {
        SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpCompletion);
        PeerState& record = peer_at(id);
        ensure(record.downloading, "AvailabilitySim: completion for a peer not "
                                   "downloading");
        const PeerState peer = record;
        --downloading_count_;
        peers_.erase(peers_.begin() + (&record - peers_.data()));
        ++result_.served;
        ++served_this_busy_;
        const double elapsed = queue_.now() - peer.arrival;
        result_.download_times.add(elapsed);
        result_.waiting_times.add(peer.waited);
        if (m_served_ != nullptr) {
            m_served_->add();
            m_download_hist_->add(elapsed);
            m_wait_hist_->add(peer.waited);
        }
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerCompletion, queue_.now(), id,
                         elapsed, peer.waited);
        sample_gauges();
        if (config_.linger_time > 0.0) {
            ++lingering_;
            const double linger = rng_.exponential_mean(config_.linger_time);
            // The epoch guard voids this event if an intervening idle period
            // already flushed all lingering seeds.
            const std::uint64_t epoch = linger_epoch_;
            queue_.schedule_at(queue_.now() + linger, [this, epoch] {
                SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpLingerEnd);
                if (epoch == linger_epoch_ && lingering_ > 0) {
                    --lingering_;
                    maybe_end_busy_period();
                    audit_state();
                }
            });
        }
        maybe_end_busy_period();
        audit_state();
    }

    void on_publisher_arrival() {
        SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpPublisherArrival);
        change_publishers(+1);
        const double stay = rng_.exponential_mean(config_.params.publisher_residence);
        queue_.schedule_at(queue_.now() + stay, [this] {
            SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpPublisherDeparture);
            change_publishers(-1);
            maybe_end_busy_period();
            audit_state();
        });
        if (!available_) {
            become_available();
        }
        audit_state();
    }

    void on_publisher_up() {
        SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpPublisherUp);
        change_publishers(+1);
        if (!available_) {
            become_available();
        }
        audit_state();
    }

    void on_publisher_down() {
        SWARMAVAIL_FPRINT(fingerprint_, queue_.now(), kFpPublisherDown);
        change_publishers(-1);
        maybe_end_busy_period();
        audit_state();
    }

    // Declaration order doubles as cache layout: in the shared-queue
    // catalog engine every event lands on a cold Impl (thousands of swarms
    // round-robin through one queue), so the fields an event handler always
    // touches — config, rng, queue, the population scalars and flags — are
    // packed up front, the per-event-type process objects follow, and the
    // result accumulator plus the metric pointers (null in benchmarks,
    // resolved once in bind_metrics) trail at the end.
    AvailabilitySimConfig config_;
    Rng rng_;
    EventQueue& queue_;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    // Touched once per event handler, so it rides with the hot scalars.
    Fingerprint fingerprint_state_;
    Fingerprint* fingerprint_ = nullptr;  ///< &fingerprint_state_ when enabled
#endif

    std::size_t downloading_count_ = 0;
    std::size_t lingering_ = 0;
    std::uint64_t linger_epoch_ = 0;
    std::size_t publishers_ = 0;
    PeerId next_peer_id_ = 1;

    bool started_ = false;
    bool finished_ = false;
    bool available_ = false;
    bool busy_open_ = false;
    bool idle_open_ = false;
    bool publisher_ever_toggled_ = false;
    SimTime busy_start_ = 0.0;
    SimTime idle_start_ = 0.0;
    std::uint64_t served_this_busy_ = 0;
    std::uint64_t arrivals_blocked_ = 0;

    SimTime interval_start_ = 0.0;
    double available_seconds_ = 0.0;
    double unavailable_seconds_ = 0.0;

    SimTime last_publisher_change_ = 0.0;
    double publisher_online_seconds_ = 0.0;

    /// In-system peers ordered by id; see the PeerState comment for why
    /// this is a flat vector rather than a map.
    std::vector<PeerState> peers_;
    std::vector<PeerId> blocked_;

    PoissonProcess peer_arrivals_;
    PoissonProcess publisher_arrivals_;
    OnOffProcess on_off_;
    AvailabilitySimResult result_;

    // Cached metric references (null when config_.metrics is null); see
    // bind_metrics. Either all are bound or none.
    Counter* m_arrivals_ = nullptr;
    Counter* m_served_ = nullptr;
    Counter* m_lost_ = nullptr;
    Counter* m_stranded_ = nullptr;
    Counter* m_publisher_up_ = nullptr;
    Counter* m_publisher_down_ = nullptr;
    HistogramMetric* m_busy_hist_ = nullptr;
    HistogramMetric* m_idle_hist_ = nullptr;
    HistogramMetric* m_download_hist_ = nullptr;
    HistogramMetric* m_wait_hist_ = nullptr;
    HistogramMetric* m_pub_up_interval_ = nullptr;
    HistogramMetric* m_pub_down_interval_ = nullptr;
    Gauge* m_peers_gauge_ = nullptr;
    Gauge* m_queue_depth_ = nullptr;
};

AvailabilityProcess::AvailabilityProcess(EventQueue& queue,
                                         const AvailabilitySimConfig& config)
    : impl_(std::make_unique<Impl>(queue, config)) {}

AvailabilityProcess::~AvailabilityProcess() = default;
AvailabilityProcess::AvailabilityProcess(AvailabilityProcess&&) noexcept = default;
AvailabilityProcess& AvailabilityProcess::operator=(AvailabilityProcess&&) noexcept =
    default;

void AvailabilityProcess::start() { impl_->start(); }

AvailabilitySimResult AvailabilityProcess::finish() { return impl_->finish(); }

const AvailabilitySimConfig& AvailabilityProcess::config() const noexcept {
    return impl_->config_;
}

std::uint64_t AvailabilityProcess::fingerprint_digest() const noexcept {
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    if (impl_->fingerprint_ != nullptr) {
        return impl_->fingerprint_->digest();
    }
#endif
    return 0;
}

}  // namespace swarmavail::sim
