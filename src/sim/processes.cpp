#include "sim/processes.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace swarmavail::sim {

PoissonProcess::PoissonProcess(EventQueue& queue, Rng& rng, double rate,
                               std::function<void()> on_arrival)
    : queue_(queue), rng_(rng), rate_(rate), on_arrival_(std::move(on_arrival)) {
    require(rate_ > 0.0, "PoissonProcess: rate must be > 0");
    require(static_cast<bool>(on_arrival_), "PoissonProcess: callback required");
}

void PoissonProcess::start(SimTime horizon) {
    require(!running_, "PoissonProcess::start: already running");
    horizon_ = horizon;
    running_ = true;
    schedule_next();
}

void PoissonProcess::stop() {
    if (running_) {
        queue_.cancel(pending_);
        pending_ = 0;
        running_ = false;
    }
}

void PoissonProcess::schedule_next() {
    const SimTime next = queue_.now() + rng_.exponential_rate(rate_);
    if (next > horizon_) {
        running_ = false;
        return;
    }
    pending_ = queue_.schedule_at(next, [this] {
        on_arrival_();
        if (running_) {
            schedule_next();
        }
    });
}

OnOffProcess::OnOffProcess(EventQueue& queue, Rng& rng, double mean_on,
                           double mean_off, std::function<void()> on_up,
                           std::function<void()> on_down)
    : queue_(queue),
      rng_(rng),
      mean_on_(mean_on),
      mean_off_(mean_off),
      on_up_(std::move(on_up)),
      on_down_(std::move(on_down)) {
    require(mean_on_ > 0.0, "OnOffProcess: mean_on must be > 0");
    require(mean_off_ > 0.0, "OnOffProcess: mean_off must be > 0");
    require(static_cast<bool>(on_up_) && static_cast<bool>(on_down_),
            "OnOffProcess: both callbacks required");
}

void OnOffProcess::start(SimTime horizon) {
    require(!running_, "OnOffProcess::start: already running");
    horizon_ = horizon;
    running_ = true;
    on_ = true;
    on_up_();
    schedule_transition();
}

void OnOffProcess::stop() {
    if (running_) {
        queue_.cancel(pending_);
        pending_ = 0;
        running_ = false;
    }
}

void OnOffProcess::schedule_transition() {
    const double duration = rng_.exponential_mean(on_ ? mean_on_ : mean_off_);
    const SimTime next = queue_.now() + duration;
    if (next > horizon_) {
        running_ = false;
        return;
    }
    pending_ = queue_.schedule_at(next, [this] {
        on_ = !on_;
        (on_ ? on_up_ : on_down_)();
        if (running_) {
            schedule_transition();
        }
    });
}

TraceArrivalProcess::TraceArrivalProcess(EventQueue& queue,
                                         std::vector<SimTime> arrival_times,
                                         std::function<void()> on_arrival)
    : queue_(queue), times_(std::move(arrival_times)), on_arrival_(std::move(on_arrival)) {
    require(static_cast<bool>(on_arrival_), "TraceArrivalProcess: callback required");
    require(std::is_sorted(times_.begin(), times_.end()),
            "TraceArrivalProcess: arrival times must be sorted ascending");
}

void TraceArrivalProcess::start() {
    for (SimTime t : times_) {
        queue_.schedule_at(t, [this] { on_arrival_(); });
    }
}

std::vector<SimTime> sample_decaying_poisson(Rng& rng, double lambda0, double tau,
                                             SimTime horizon) {
    require(lambda0 > 0.0, "sample_decaying_poisson: lambda0 must be > 0");
    require(tau > 0.0, "sample_decaying_poisson: tau must be > 0");
    require(horizon >= 0.0, "sample_decaying_poisson: horizon must be >= 0");
    // Ogata thinning against the dominating homogeneous rate lambda0.
    std::vector<SimTime> out;
    SimTime t = 0.0;
    for (;;) {
        t += rng.exponential_rate(lambda0);
        if (t > horizon) {
            break;
        }
        const double accept = std::exp(-t / tau);
        if (rng.bernoulli(accept)) {
            out.push_back(t);
        }
    }
    return out;
}

std::vector<SimTime> sample_homogeneous_poisson(Rng& rng, double rate, SimTime horizon) {
    require(rate > 0.0, "sample_homogeneous_poisson: rate must be > 0");
    require(horizon >= 0.0, "sample_homogeneous_poisson: horizon must be >= 0");
    std::vector<SimTime> out;
    SimTime t = 0.0;
    for (;;) {
        t += rng.exponential_rate(rate);
        if (t > horizon) {
            break;
        }
        out.push_back(t);
    }
    return out;
}

}  // namespace swarmavail::sim
