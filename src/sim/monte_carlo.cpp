#include "sim/monte_carlo.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/error.hpp"

namespace swarmavail::sim {

double sample_busy_period(Rng& rng, double beta,
                          const std::function<double(Rng&)>& first_residence,
                          const std::function<double(Rng&)>& residence) {
    require(beta > 0.0, "sample_busy_period: beta must be > 0");
    require(static_cast<bool>(first_residence) && static_cast<bool>(residence),
            "sample_busy_period: residence samplers required");
    // Coverage-process construction: the busy period extends while new
    // arrivals land before the current coverage end.
    double end = first_residence(rng);
    SWARMAVAIL_ASSERT(end >= 0.0,
                      "sample_busy_period: first residence sampled negative");
    double t = rng.exponential_rate(beta);
    while (t < end) {
        const double extended = t + residence(rng);
        SWARMAVAIL_ASSERT(extended >= t,
                          "sample_busy_period: residence sampled negative");
        end = std::max(end, extended);
        const double next = t + rng.exponential_rate(beta);
        SWARMAVAIL_ASSERT(next >= t, "sample_busy_period: arrival time went backwards");
        t = next;
    }
    return end;
}

StreamingStats sample_mixed_busy_periods(Rng& rng, const MixedBusyPeriodMc& p,
                                         std::size_t n) {
    require(p.beta > 0.0, "sample_mixed_busy_periods: beta must be > 0");
    require(p.theta > 0.0, "sample_mixed_busy_periods: theta must be > 0");
    require(p.q1 >= 0.0 && p.q1 <= 1.0, "sample_mixed_busy_periods: q1 in [0,1]");
    require(p.alpha1 > 0.0 && p.alpha2 > 0.0,
            "sample_mixed_busy_periods: alphas must be > 0");
    const auto first = [&p](Rng& r) { return r.exponential_mean(p.theta); };
    const auto later = [&p](Rng& r) {
        return r.bernoulli(p.q1) ? r.exponential_mean(p.alpha1)
                                 : r.exponential_mean(p.alpha2);
    };
    StreamingStats stats;
    for (std::size_t i = 0; i < n; ++i) {
        stats.add(sample_busy_period(rng, p.beta, first, later));
    }
    return stats;
}

double sample_residual_busy_period(Rng& rng, std::size_t n, std::size_t m,
                                   double lambda, double service) {
    require(n > m, "sample_residual_busy_period: requires n > m");
    require(lambda > 0.0, "sample_residual_busy_period: lambda must be > 0");
    require(service > 0.0, "sample_residual_busy_period: service must be > 0");
    // Exact birth-death simulation: exponential races between the next
    // arrival (rate lambda) and the next departure (rate pop / service).
    const double death_rate_per_peer = 1.0 / service;
    double t = 0.0;
    std::size_t pop = n;
    while (pop > m) {
        const double total_rate =
            lambda + static_cast<double>(pop) * death_rate_per_peer;
        SWARMAVAIL_ASSERT(total_rate > 0.0,
                          "sample_residual_busy_period: transition rate must stay "
                          "positive while peers remain");
        t += rng.exponential_rate(total_rate);
        const double p_birth = lambda / total_rate;
        if (rng.bernoulli(p_birth)) {
            ++pop;
        } else {
            SWARMAVAIL_ASSERT(pop > 0,
                              "sample_residual_busy_period: departure from an empty "
                              "population");
            --pop;
        }
    }
    SWARMAVAIL_ASSERT(pop == m, "sample_residual_busy_period: walk overshot the "
                                "absorbing population");
    SWARMAVAIL_ASSERT(t >= 0.0, "sample_residual_busy_period: elapsed time negative");
    return t;
}

double sample_steady_state_residual(Rng& rng, std::size_t m, double lambda,
                                    double service) {
    require(lambda > 0.0, "sample_steady_state_residual: lambda must be > 0");
    require(service > 0.0, "sample_steady_state_residual: service must be > 0");
    const std::uint64_t initial = rng.poisson(lambda * service);
    if (initial <= m) {
        return 0.0;
    }
    return sample_residual_busy_period(rng, static_cast<std::size_t>(initial), m, lambda,
                                       service);
}

}  // namespace swarmavail::sim
