// Direct Monte-Carlo samplers of M/G/infinity busy periods and residual
// busy periods. These implement the queueing dynamics exactly (no model
// approximations), so the tests use them as ground truth for eqs. 9, 12,
// 13 and 20, and the ablation benches use them to quantify model error.
#pragma once

#include <cstddef>
#include <functional>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace swarmavail::sim {

/// Samples one busy period of an M/G/infinity queue: the initiating
/// customer's residence is drawn by `first_residence`, later customers'
/// residences by `residence`; arrivals are Poisson(`beta`). The busy period
/// is the coverage interval: it ends when all in-system residences have
/// expired (threshold 1).
[[nodiscard]] double sample_busy_period(Rng& rng, double beta,
                                        const std::function<double(Rng&)>& first_residence,
                                        const std::function<double(Rng&)>& residence);

/// Convenience: samples `n` busy periods with exponential residences
/// (initiator mean `theta`, later customers mean drawn from the two-class
/// mixture used in eq. 9) and accumulates their statistics.
struct MixedBusyPeriodMc {
    double beta = 0.0;
    double theta = 0.0;
    double q1 = 0.0;
    double alpha1 = 0.0;
    double alpha2 = 0.0;
};
[[nodiscard]] StreamingStats sample_mixed_busy_periods(Rng& rng,
                                                       const MixedBusyPeriodMc& params,
                                                       std::size_t n);

/// Samples the residual busy period B(n, m) of Lemma 3.3 exactly: a
/// birth-death process starting at population n with birth rate `lambda`
/// and per-peer death rate 1/`service`; returns the time until the
/// population first reaches m (< n). Requires n > m.
[[nodiscard]] double sample_residual_busy_period(Rng& rng, std::size_t n, std::size_t m,
                                                 double lambda, double service);

/// Samples the steady-state residual busy period B(m) of eq. 13: the
/// initial population is Poisson(lambda * service); populations <= m yield 0.
[[nodiscard]] double sample_steady_state_residual(Rng& rng, std::size_t m, double lambda,
                                                  double service);

}  // namespace swarmavail::sim
