// Flow-level swarm availability simulator.
//
// Implements the paper's queueing dynamics exactly, with none of the model's
// closed-form approximations: peers arrive Poisson(lambda) and download for
// Exp(s/mu) while content is available; publishers either arrive Poisson(r)
// staying Exp(u) (Sections 3.2-3.3) or alternate on/off as a single source
// (Section 4.3); content is available from a publisher's arrival until no
// publisher is online and the peer coverage drops below the threshold m
// (Section 3.1 / Figure 2). Peers caught by an idle period either wait
// (patient, Section 3.3.2) or leave (impatient, Section 3.3.1), and
// completed peers may linger as seeds (Section 3.3.4).
//
// The simulator is the validation target for every closed-form expression in
// src/model: tests compare its measured busy periods, unavailability and
// download times against eqs. 9-16.
#pragma once

#include <cstdint>

#include "model/params.hpp"
#include "util/stats.hpp"

namespace swarmavail {
class MetricsRegistry;
}  // namespace swarmavail

namespace swarmavail::sim {

class Tracer;

/// How publishers behave.
enum class PublisherMode {
    /// Publishers arrive Poisson(r) and stay Exp(u); several may overlap.
    kPoissonArrivals,
    /// One publisher alternates on for Exp(u) / off for Exp(1/r)
    /// (the Section 4.3 PlanetLab setup).
    kSingleOnOff,
};

/// Configuration of one availability-simulation run.
struct AvailabilitySimConfig {
    model::SwarmParams params;          ///< lambda, s, mu, r, u
    std::size_t coverage_threshold = 1; ///< m: peers needed to keep content alive
    bool patient_peers = true;          ///< wait for a publisher vs leave
    double linger_time = 0.0;           ///< mean post-completion seeding time (0: none)
    PublisherMode publisher_mode = PublisherMode::kPoissonArrivals;
    double horizon = 1.0e6;             ///< simulated seconds
    std::uint64_t seed = 1;
    /// Invariant-audit mode: after every event, re-verify the busy-period
    /// bookkeeping (peer conservation, non-negative populations, monotone
    /// event time). Throws swarmavail::CheckFailure on corruption. Costs a
    /// few O(1) checks per event; off by default.
    bool debug_audit = false;
    /// Optional single-owner metrics registry (see util/metrics.hpp): the
    /// run records its counters/gauges/histograms under "avail.*" names.
    /// The registry must outlive the run. Null: no metrics overhead.
    MetricsRegistry* metrics = nullptr;
    /// Optional structured-event tracer (see sim/trace.hpp). The tracer's
    /// runtime enable flag still applies. Null: one branch per call site.
    Tracer* tracer = nullptr;
    /// Determinism fingerprint (see sim/fingerprint.hpp): fold every event
    /// handled by this process — (now, ordinal, kind) — plus the final RNG
    /// draw count into the result's fingerprint. Queue-agnostic by design,
    /// so a swarm digests identically on a private or a shared queue. Pure
    /// observer (cannot change any result bit); ignored when the build
    /// defines SWARMAVAIL_FINGERPRINT_DISABLED.
    bool fingerprint = true;
};

/// Aggregate outcome of a run.
struct AvailabilitySimResult {
    StreamingStats busy_periods;          ///< lengths of completed busy periods (s)
    StreamingStats idle_periods;          ///< lengths of completed idle periods (s)
    StreamingStats download_times;        ///< arrival -> completion per served peer (s)
    StreamingStats waiting_times;         ///< idle wait component per served peer (s)
    StreamingStats peers_per_busy_period; ///< completions per busy period
    std::uint64_t arrivals = 0;           ///< total peer arrivals
    std::uint64_t served = 0;             ///< peers that completed the download
    std::uint64_t lost = 0;               ///< impatient peers that left unserved
    std::uint64_t stranded = 0;           ///< peers interrupted by a busy-period end
    double unavailable_time_fraction = 0.0;  ///< time-average unavailability
    double arrival_unavailability = 0.0;     ///< fraction of arrivals finding no content
    /// Publisher-load observables (0 <-> >=1 crossings of the online
    /// publisher count): how often and how long publishers carried the swarm.
    std::uint64_t publisher_up_transitions = 0;  ///< offline -> online crossings
    double publisher_online_fraction = 0.0;      ///< time fraction with a publisher online
    /// Determinism fingerprint of the run's event path (0 when
    /// fingerprinting is off or compiled out): the digest of every handled
    /// event plus the RNG draw count, and the events folded into it. Two
    /// runs with equal configs must match here; a mismatch means the
    /// executions diverged even if the statistics happen to agree.
    std::uint64_t fingerprint = 0;
    std::uint64_t fingerprint_events = 0;
};

/// Runs the simulation for `config.horizon` simulated seconds.
[[nodiscard]] AvailabilitySimResult run_availability_sim(const AvailabilitySimConfig& config);

}  // namespace swarmavail::sim
