// Determinism fingerprints: constant-memory digests of a simulation's
// execution order.
//
// A Fingerprint is a seeded streaming 64-bit hash chain folded over the
// sequence of dispatched events — (when, seq, kind) triples — and over
// terminal facts like RNG draw counts. The chain is order-sensitive (each
// fold passes the running state through a SplitMix64-style finalizer, so
// swapping two events changes the digest) and allocation-free: one run's
// fingerprint is two 64-bit words regardless of how many events it folds.
//
// Fingerprints make the repo's determinism contract — bit-identical results
// at any thread count, sharded ≡ shared-queue catalogs, calendar ≡ heap
// dispatch — an O(1)-comparable observable instead of an O(report)
// byte-compare: two runs took the same event path iff their digests match
// (up to 64-bit collision odds). Per-swarm digests fold per-process event
// handling (queue-agnostic, so multiplexing swarms on a shared queue folds
// the same sequence as private queues); per-queue digests fold the raw
// dispatch stream (see EventQueue::set_fingerprint); catalog/cell digests
// fold their children strictly in index order, so any thread count merges
// to the same value.
//
// Cost model (mirrors sim/trace.hpp):
//   - compile time: SWARMAVAIL_FINGERPRINT_DISABLED (CMake:
//     -DSWARMAVAIL_ENABLE_FINGERPRINT=OFF, part of the trace-off preset)
//     removes every engine call site; the Fingerprint type itself remains
//     available for direct use.
//   - runtime, no fingerprint attached: the SWARMAVAIL_FPRINT macro is a
//     null-pointer check — one branch per call site.
//
// Fingerprinting never draws randomness or mutates simulator state, so
// enabling it cannot change any simulation result (observer neutrality;
// pinned by tests/sim/test_fingerprint.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace swarmavail::sim {

/// Streaming order-sensitive 64-bit hash chain. Not cryptographic: it
/// detects divergence between runs that should be identical, it does not
/// resist an adversary constructing collisions.
class Fingerprint {
 public:
    /// Chain seed shared by every fingerprint that must be comparable.
    static constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

    explicit Fingerprint(std::uint64_t seed = kDefaultSeed) noexcept
        : state_(mix(seed + kGamma)) {}

    /// Folds one raw 64-bit word into the chain (seed values, RNG draw
    /// counts, child digests). Does not count as an event.
    void fold(std::uint64_t word) noexcept { state_ = mix(state_ + word); }

    /// Folds a double by bit pattern, so values that differ in any bit
    /// (including -0.0 vs 0.0) produce different chains.
    void fold(double value) noexcept { fold(std::bit_cast<std::uint64_t>(value)); }

    /// Folds one dispatched event as its (when, seq, kind) triple.
    /// Out of line: the engines' only fingerprint dependency is this call,
    /// which keeps the trace-off symbol check honest (no engine object may
    /// reference it when fingerprinting is compiled out).
    void fold_event(double when, std::uint64_t seq, std::uint32_t kind) noexcept;

    /// Event fold for process-level call sites that have no queue sequence
    /// number: the fingerprint's own event ordinal stands in for `seq`, so
    /// the digest is a pure function of the handler sequence — identical
    /// whether the process ran on a private or a shared queue.
    void fold_event(double when, std::uint32_t kind) noexcept {
        fold_event(when, events_, kind);
    }

    /// Folds a child fingerprint (digest plus event count). Call strictly
    /// in index order so every thread count merges to the same parent.
    void fold_child(const Fingerprint& child) noexcept {
        fold(child.digest());
        fold(child.events());
    }

    /// The chain digest. Folds the event count, so a run that stopped
    /// early never aliases a longer run whose state happened to match.
    [[nodiscard]] std::uint64_t digest() const noexcept {
        return mix(state_ + events_);
    }

    /// Events folded via fold_event (not raw fold() words).
    [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

 private:
    /// SplitMix64 increment; offsets the seed so Fingerprint{0} has a
    /// non-trivial initial state.
    static constexpr std::uint64_t kGamma = 0xbf58476d1ce4e5b9ULL;

    /// SplitMix64 finalizer: full-avalanche, so the chain is sensitive to
    /// the order of folds (mix(mix(s+a)+b) != mix(mix(s+b)+a)).
    [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
        x ^= x >> 30U;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27U;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31U;
        return x;
    }

    std::uint64_t state_;
    std::uint64_t events_ = 0;
};

/// Canonical display form: 16 lowercase hex digits (zero-padded), the
/// format the report JSON, telemetry viewers, and divergence_hunt share.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t digest);

}  // namespace swarmavail::sim

#if defined(SWARMAVAIL_FINGERPRINT_DISABLED)
#define SWARMAVAIL_FPRINT(fingerprint, ...) static_cast<void>(0)
#else
/// Engine-side fingerprint call site: one null-pointer branch when no
/// fingerprint is attached; compiled out entirely under
/// SWARMAVAIL_FINGERPRINT_DISABLED.
#define SWARMAVAIL_FPRINT(fingerprint, ...)         \
    do {                                            \
        if ((fingerprint) != nullptr) {             \
            (fingerprint)->fold_event(__VA_ARGS__); \
        }                                           \
    } while (false)
#endif
