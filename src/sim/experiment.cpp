#include "sim/experiment.hpp"

#include <limits>

#include "util/error.hpp"

namespace swarmavail::sim {

ExperimentCell run_replications(const std::string& label, const Replication& body,
                                std::size_t replications, std::uint64_t seed) {
    require(replications >= 1, "run_replications: requires replications >= 1");
    require(static_cast<bool>(body), "run_replications: body required");
    ExperimentCell cell;
    cell.label = label;
    cell.replications = replications;
    for (std::size_t i = 0; i < replications; ++i) {
        const auto samples = body(seed + i);
        if (samples.empty()) {
            continue;
        }
        StreamingStats run;
        for (double s : samples) {
            run.add(s);
        }
        cell.run_means.add(run.mean());
        cell.samples.add_all(samples);
    }
    return cell;
}

std::vector<SweepPoint> run_sweep(const std::vector<double>& values,
                                  const SweepBody& body, std::size_t replications,
                                  std::uint64_t seed) {
    require(!values.empty(), "run_sweep: requires at least one value");
    require(static_cast<bool>(body), "run_sweep: body required");
    std::vector<SweepPoint> sweep;
    sweep.reserve(values.size());
    std::uint64_t next_seed = seed;
    for (double value : values) {
        SweepPoint point;
        point.value = value;
        point.cell = run_replications(
            std::to_string(value),
            [&body, value](std::uint64_t s) { return body(value, s); }, replications,
            next_seed);
        next_seed += replications;
        sweep.push_back(std::move(point));
    }
    return sweep;
}

const SweepPoint& best_point(const std::vector<SweepPoint>& sweep) {
    require(!sweep.empty(), "best_point: requires a non-empty sweep");
    const SweepPoint* best = nullptr;
    double best_mean = std::numeric_limits<double>::infinity();
    for (const auto& point : sweep) {
        require(!point.cell.samples.empty(), "best_point: sweep cell has no samples");
        if (point.cell.mean() < best_mean) {
            best_mean = point.cell.mean();
            best = &point;
        }
    }
    ensure(best != nullptr, "best_point: no candidate found");
    return *best;
}

}  // namespace swarmavail::sim
