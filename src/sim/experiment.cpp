#include "sim/experiment.hpp"

#include <atomic>
#include <limits>
#include <mutex>
#include <utility>

#include "sim/fingerprint.hpp"
#include "util/error.hpp"

namespace swarmavail::sim {
namespace {

/// One replication's buffered output, merged into the cell in index order.
struct ReplicationResult {
    SampleSet samples;
    double run_mean = 0.0;
    std::uint64_t fingerprint = 0;  ///< digest of the sample bits (0: compiled out)
    bool has_samples = false;
    bool ran = false;
};

/// Shared pooling core: runs `invoke(i)` for every replication index under
/// `control`, buffers per-index results, and merges them in index order.
/// Everything derived from the samples is bit-identical to a serial run
/// regardless of the thread count or completion order.
///
/// Telemetry (if attached) sees one counter/tracker update per completed
/// replication. A stop rule (if set) is evaluated over the run means in
/// completion order, under a local mutex: once satisfied, not-yet-started
/// replications are skipped (their `ran` flag stays false), and the merge
/// below pools exactly the replications that ran.
template <typename Invoke>
ExperimentCell pool_replications(const std::string& label, std::size_t replications,
                                 const RunControl& control, const Invoke& invoke) {
    ExperimentCell cell;
    cell.label = label;
    cell.replications = replications;

    telemetry::RunCounters* counters = nullptr;
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
    if (control.telemetry != nullptr) {
        counters = &control.telemetry->counters();
        counters->replications_total.fetch_add(replications,
                                               std::memory_order_relaxed);
    }
#endif
    const bool stoppable =
        control.stop_rule.has_value() && control.stop_rule->ci95_target > 0.0;
    std::atomic<bool> stop{false};
    std::mutex observed_mutex;
    StreamingStats observed;  // completion-order run means; stop decision only

    std::vector<ReplicationResult> results(replications);
    Parallel::for_index(
        replications, control.policy,
        [&](std::size_t i) {
            if (stoppable && stop.load(std::memory_order_acquire)) {
                return;
            }
            std::vector<double> samples = invoke(i);
            ReplicationResult& out = results[i];
            out.ran = true;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
            {
                // Digest the sample bits worker-side: equal digests iff the
                // replication produced bit-identical samples in order.
                Fingerprint fp;
                fp.fold(static_cast<std::uint64_t>(samples.size()));
                for (double s : samples) {
                    fp.fold(s);
                }
                out.fingerprint = fp.digest();
            }
#endif
            if (!samples.empty()) {
                StreamingStats run;
                for (double s : samples) {
                    run.add(s);
                }
                out.run_mean = run.mean();
                out.samples = SampleSet{std::move(samples)};
                out.has_samples = true;
            }
            SWARMAVAIL_TELEMETRY(control.telemetry,
                                 counters().replications_completed.fetch_add(
                                     1, std::memory_order_relaxed));
            if (out.has_samples) {
                SWARMAVAIL_TELEMETRY(control.telemetry,
                                     tracker().observe(label, out.run_mean));
            }
            if (stoppable && out.has_samples) {
                const std::lock_guard<std::mutex> lock(observed_mutex);
                observed.add(out.run_mean);
                if (control.stop_rule->satisfied(observed)) {
                    stop.store(true, std::memory_order_release);
                }
            }
        },
        counters);
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    Fingerprint combined;
#endif
    for (std::size_t i = 0; i < results.size(); ++i) {
        ReplicationResult& result = results[i];
        if (!result.ran) {
            continue;
        }
        ++cell.completed_replications;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        combined.fold(static_cast<std::uint64_t>(i));
        combined.fold(result.fingerprint);
#endif
        if (!result.has_samples) {
            continue;
        }
        cell.run_means.add(result.run_mean);
        cell.samples.merge(std::move(result.samples));
    }
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    if (cell.completed_replications > 0) {
        cell.fingerprint = combined.digest();
    }
#endif
    cell.stopped_early = cell.completed_replications < replications;
    return cell;
}

}  // namespace

ExperimentCell run_replications(const std::string& label, const Replication& body,
                                std::size_t replications, std::uint64_t seed,
                                const ParallelPolicy& policy) {
    return run_replications(label, body, replications, seed, RunControl{policy});
}

ExperimentCell run_replications(const std::string& label, const Replication& body,
                                std::size_t replications, std::uint64_t seed,
                                const RunControl& control) {
    require(replications >= 1, "run_replications: requires replications >= 1");
    require(static_cast<bool>(body), "run_replications: body required");
    return pool_replications(label, replications, control,
                             [&](std::size_t i) { return body(seed + i); });
}

ExperimentCell run_replications(const std::string& label, const MetricsReplication& body,
                                std::size_t replications, std::uint64_t seed,
                                MetricsRegistry& merged_metrics,
                                const ParallelPolicy& policy) {
    return run_replications(label, body, replications, seed, merged_metrics,
                            RunControl{policy});
}

ExperimentCell run_replications(const std::string& label, const MetricsReplication& body,
                                std::size_t replications, std::uint64_t seed,
                                MetricsRegistry& merged_metrics,
                                const RunControl& control) {
    require(replications >= 1, "run_replications: requires replications >= 1");
    require(static_cast<bool>(body), "run_replications: body required");
    // One private registry per replication (single-owner hot path), folded
    // below strictly in index order — same determinism contract as the
    // sample statistics. Replications a stop rule skipped leave their
    // registry empty, so merging all of them stays exact.
    std::vector<MetricsRegistry> registries(replications);
    ExperimentCell cell =
        pool_replications(label, replications, control,
                          [&](std::size_t i) { return body(seed + i, registries[i]); });
    for (const MetricsRegistry& registry : registries) {
        merged_metrics.merge(registry);
    }
    return cell;
}

std::vector<SweepPoint> run_sweep(const std::vector<double>& values,
                                  const SweepBody& body, std::size_t replications,
                                  std::uint64_t seed, const ParallelPolicy& policy) {
    require(!values.empty(), "run_sweep: requires at least one value");
    require(static_cast<bool>(body), "run_sweep: body required");
    std::vector<SweepPoint> sweep;
    sweep.reserve(values.size());
    std::uint64_t next_seed = seed;
    for (double value : values) {
        SweepPoint point;
        point.value = value;
        point.cell = run_replications(
            std::to_string(value),
            [&body, value](std::uint64_t s) { return body(value, s); }, replications,
            next_seed, policy);
        next_seed += replications;
        sweep.push_back(std::move(point));
    }
    return sweep;
}

const SweepPoint& best_point(const std::vector<SweepPoint>& sweep) {
    require(!sweep.empty(), "best_point: requires a non-empty sweep");
    const SweepPoint* best = nullptr;
    double best_mean = std::numeric_limits<double>::infinity();
    for (const auto& point : sweep) {
        require(!point.cell.samples.empty(), "best_point: sweep cell has no samples");
        if (point.cell.mean() < best_mean) {
            best_mean = point.cell.mean();
            best = &point;
        }
    }
    ensure(best != nullptr, "best_point: no candidate found");
    return *best;
}

}  // namespace swarmavail::sim
