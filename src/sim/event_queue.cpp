#include "sim/event_queue.hpp"

#include <utility>

#include "sim/audit.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace swarmavail::sim {

EventId EventQueue::schedule_at(SimTime when, std::function<void()> action) {
    require(when >= now_, "EventQueue::schedule_at: cannot schedule in the past");
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, next_seq_++, std::move(action)});
    pending_.insert(id);
    ++live_events_;
    return id;
}

void EventQueue::cancel(EventId id) {
    if (pending_.erase(id) != 0) {
        --live_events_;  // the heap entry becomes a tombstone, skipped on pop
    }
}

bool EventQueue::run_next() {
    while (!heap_.empty()) {
        Entry entry = heap_.top();
        heap_.pop();
        if (pending_.erase(entry.id) == 0) {
            continue;  // cancelled tombstone
        }
        --live_events_;
        if (audit_) {
            audit::check_monotone_time(now_, entry.when);
            SWARMAVAIL_INVARIANT(pending_.size() == live_events_,
                                 "EventQueue: live-event count out of sync with "
                                 "pending-id set");
        }
        now_ = entry.when;
        entry.action();
        return true;
    }
    return false;
}

SimTime EventQueue::next_time() {
    while (!heap_.empty() && pending_.count(heap_.top().id) == 0) {
        heap_.pop();  // drop cancelled tombstones at the head
    }
    return heap_.empty() ? -1.0 : heap_.top().when;
}

void EventQueue::run_until(SimTime horizon) {
    while (!heap_.empty()) {
        // Drop cancelled heads without advancing time.
        if (pending_.count(heap_.top().id) == 0) {
            heap_.pop();
            continue;
        }
        if (heap_.top().when > horizon) {
            break;
        }
        run_next();
    }
    if (horizon > now_) {
        now_ = horizon;
    }
}

}  // namespace swarmavail::sim
