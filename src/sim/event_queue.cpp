#include "sim/event_queue.hpp"

#include <cmath>
#include <utility>

#include "sim/audit.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/profile.hpp"

namespace swarmavail::sim {
namespace {

constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32U) | slot;
}

constexpr std::uint32_t id_slot(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFULL);
}

constexpr std::uint32_t id_generation(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32U);
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
    if (free_head_ != kNoSlot) {
        const std::uint32_t index = free_head_;
        free_head_ = meta_[index].next_free;
        meta_[index].next_free = kNoSlot;
        return index;
    }
    meta_.emplace_back();
    actions_.emplace_back();
    return static_cast<std::uint32_t>(meta_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) noexcept {
    actions_[index].reset();
    SlotMeta& meta = meta_[index];
    meta.live = false;
    ++meta.generation;  // invalidates every EventId handed out for this slot
    meta.next_free = free_head_;
    free_head_ = index;
}

void EventQueue::reposition() {
    const CalendarEntry* head = calendar_.peek();
    while (head != nullptr && !meta_[head->slot].live) {
        release_slot(calendar_.pop().slot);
        head = calendar_.peek();
    }
    next_when_ = head != nullptr ? head->when : -1.0;
    if (head != nullptr) {
        // The next dispatch will read this action; warming the line here
        // overlaps the miss with whatever runs between now and then.
        __builtin_prefetch(&actions_[head->slot]);
    }
}

EventId EventQueue::schedule_at(SimTime when, EventFn action) {
    require(when >= now_, "EventQueue::schedule_at: cannot schedule in the past");
    require(std::isfinite(when), "EventQueue::schedule_at: event time must be finite");
    const std::uint32_t slot = acquire_slot();
    actions_[slot] = std::move(action);
    meta_[slot].live = true;
    calendar_.push(CalendarEntry{when, next_seq_++, slot});
    ++live_events_;
    // The new entry is live, so the cached head only ever moves earlier.
    if (next_when_ < 0.0 || when < next_when_) {
        next_when_ = when;
    }
    return make_id(meta_[slot].generation, slot);
}

void EventQueue::cancel(EventId id) {
    const std::uint32_t slot = id_slot(id);
    if (slot >= meta_.size()) {
        return;
    }
    SlotMeta& meta = meta_[slot];
    if (!meta.live || meta.generation != id_generation(id)) {
        return;  // already fired, already cancelled, or a recycled slot
    }
    meta.live = false;
    actions_[slot].reset();  // release captured resources eagerly
    --live_events_;
    reposition();  // keep the head live for const next_time()
}

bool EventQueue::run_next() {
    if (live_events_ == 0) {
        return false;
    }
    // Inclusive of the dispatched action: "event dispatch" is the pop plus
    // whatever handler work the event triggers.
    SWARMAVAIL_PROF_SCOPE("sim.event_dispatch");
    // reposition() left the calendar head on a live entry, so this peek is
    // the O(1) fast path (or first-time positioning after pushes).
    const CalendarEntry entry = *calendar_.peek();
    if (audit_) {
        audit::check_monotone_time(now_, entry.when);
        audit_bookkeeping();
    }
    calendar_.pop();
    EventFn action = std::move(actions_[entry.slot]);
    release_slot(entry.slot);
    --live_events_;
    reposition();
    now_ = entry.when;
    ++dispatched_;
    SWARMAVAIL_FPRINT(fingerprint_, entry.when, entry.seq, 0U);
    action();
    return true;
}

void EventQueue::run_until(SimTime horizon) {
    while (live_events_ != 0 && next_when_ <= horizon) {
        run_next();
    }
    if (horizon > now_) {
        now_ = horizon;
    }
}

void EventQueue::audit_bookkeeping() const {
    calendar_.audit_structure();
    // Every live slot is counted exactly once by live_events_.
    std::size_t live_slots = 0;
    for (const SlotMeta& meta : meta_) {
        if (meta.live) {
            ++live_slots;
        }
    }
    SWARMAVAIL_INVARIANT(live_slots == live_events_,
                         "EventQueue: live-event count out of sync with the slab");
    // Each calendar entry owns a distinct in-range slot; track the
    // (when, seq)-minimal live entry to validate the cached head.
    std::vector<bool> owned(meta_.size(), false);
    std::size_t entry_count = 0;
    CalendarEntry best{};
    bool found_live = false;
    calendar_.for_each_entry([&](const CalendarEntry& entry) {
        SWARMAVAIL_INVARIANT(
            entry.slot < meta_.size(),
            "EventQueue: calendar entry references an out-of-range slot");
        SWARMAVAIL_INVARIANT(!owned[entry.slot],
                             "EventQueue: two calendar entries share one slot");
        owned[entry.slot] = true;
        ++entry_count;
        if (meta_[entry.slot].live &&
            (!found_live || calendar_earlier(entry, best))) {
            best = entry;
            found_live = true;
        }
    });
    SWARMAVAIL_INVARIANT(entry_count == calendar_.entries(),
                         "EventQueue: calendar entry count drifted");
    // The free list and the calendar partition the slab.
    std::size_t free_slots = 0;
    for (std::uint32_t cursor = free_head_; cursor != kNoSlot;
         cursor = meta_[cursor].next_free) {
        SWARMAVAIL_INVARIANT(
            cursor < meta_.size() && !meta_[cursor].live && !owned[cursor],
            "EventQueue: free list holds a live or calendar-owned slot");
        ++free_slots;
        SWARMAVAIL_INVARIANT(free_slots <= meta_.size(),
                             "EventQueue: free list cycle detected");
    }
    SWARMAVAIL_INVARIANT(entry_count + free_slots == meta_.size(),
                         "EventQueue: calendar and free list do not partition the slab");
    SWARMAVAIL_INVARIANT(found_live == (live_events_ > 0),
                         "EventQueue: live events missing from the calendar");
    if (found_live) {
        SWARMAVAIL_INVARIANT(next_when_ == best.when,
                             "EventQueue: cached next_time out of sync");
    } else {
        SWARMAVAIL_INVARIANT(next_when_ < 0.0,
                             "EventQueue: cached next_time set on an empty queue");
    }
}

}  // namespace swarmavail::sim
