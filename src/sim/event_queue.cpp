#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/audit.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/profile.hpp"

namespace swarmavail::sim {
namespace {

constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32U) | slot;
}

constexpr std::uint32_t id_slot(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFULL);
}

constexpr std::uint32_t id_generation(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32U);
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
    if (free_head_ != kNoSlot) {
        const std::uint32_t index = free_head_;
        free_head_ = slab_[index].next_free;
        slab_[index].next_free = kNoSlot;
        return index;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) noexcept {
    Slot& slot = slab_[index];
    slot.action.reset();
    slot.live = false;
    ++slot.generation;  // invalidates every EventId handed out for this slot
    slot.next_free = free_head_;
    free_head_ = index;
}

void EventQueue::drain_cancelled_head() {
    while (!heap_.empty() && !slab_[heap_.front().slot].live) {
        const std::uint32_t slot = heap_.front().slot;
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
        release_slot(slot);
    }
}

EventId EventQueue::schedule_at(SimTime when, EventFn action) {
    require(when >= now_, "EventQueue::schedule_at: cannot schedule in the past");
    const std::uint32_t slot = acquire_slot();
    Slot& record = slab_[slot];
    record.action = std::move(action);
    record.live = true;
    heap_.push_back(HeapEntry{when, next_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_events_;
    return make_id(record.generation, slot);
}

void EventQueue::cancel(EventId id) {
    const std::uint32_t slot = id_slot(id);
    if (slot >= slab_.size()) {
        return;
    }
    Slot& record = slab_[slot];
    if (!record.live || record.generation != id_generation(id)) {
        return;  // already fired, already cancelled, or a recycled slot
    }
    record.live = false;
    record.action.reset();  // release captured resources eagerly
    --live_events_;
    drain_cancelled_head();  // keep the heap head live for const next_time()
}

bool EventQueue::run_next() {
    if (heap_.empty()) {
        return false;
    }
    // Inclusive of the dispatched action: "event dispatch" is the pop plus
    // whatever handler work the event triggers.
    SWARMAVAIL_PROF_SCOPE("sim.event_dispatch");
    const HeapEntry entry = heap_.front();
    if (audit_) {
        audit::check_monotone_time(now_, entry.when);
        audit_bookkeeping();
    }
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    EventFn action = std::move(slab_[entry.slot].action);
    release_slot(entry.slot);
    --live_events_;
    drain_cancelled_head();
    now_ = entry.when;
    ++dispatched_;
    action();
    return true;
}

void EventQueue::run_until(SimTime horizon) {
    while (!heap_.empty() && heap_.front().when <= horizon) {
        run_next();
    }
    if (horizon > now_) {
        now_ = horizon;
    }
}

void EventQueue::audit_bookkeeping() const {
    // The head must be live (cancelled entries are drained eagerly).
    SWARMAVAIL_INVARIANT(!heap_.empty() && slab_[heap_.front().slot].live,
                         "EventQueue: heap head is not a live event");
    // Every live slot is counted exactly once by live_events_.
    std::size_t live_slots = 0;
    for (const Slot& slot : slab_) {
        if (slot.live) {
            ++live_slots;
        }
    }
    SWARMAVAIL_INVARIANT(live_slots == live_events_,
                         "EventQueue: live-event count out of sync with the slab");
    // Each heap entry owns a distinct in-range slot.
    std::vector<bool> owned(slab_.size(), false);
    for (const HeapEntry& entry : heap_) {
        SWARMAVAIL_INVARIANT(entry.slot < slab_.size(),
                             "EventQueue: heap entry references an out-of-range slot");
        SWARMAVAIL_INVARIANT(!owned[entry.slot],
                             "EventQueue: two heap entries share one slot");
        owned[entry.slot] = true;
    }
    // The free list and the heap partition the slab.
    std::size_t free_slots = 0;
    for (std::uint32_t cursor = free_head_; cursor != kNoSlot;
         cursor = slab_[cursor].next_free) {
        SWARMAVAIL_INVARIANT(cursor < slab_.size() && !slab_[cursor].live &&
                                 !owned[cursor],
                             "EventQueue: free list holds a live or heap-owned slot");
        ++free_slots;
        SWARMAVAIL_INVARIANT(free_slots <= slab_.size(),
                             "EventQueue: free list cycle detected");
    }
    SWARMAVAIL_INVARIANT(heap_.size() + free_slots == slab_.size(),
                         "EventQueue: heap and free list do not partition the slab");
}

}  // namespace swarmavail::sim
