// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events and O(1) logical cancellation.
//
// Generation 3: scheduling runs on a calendar/ladder structure
// (sim/calendar.hpp) instead of a binary heap -- O(1) amortized push/pop,
// with same-timestamp runs dispatched back-to-back out of one sorted
// bucket (no per-pop reordering work). Storage is split hot/cold: the
// calendar holds POD {when, seq, slot} records and the slot metadata
// (liveness, generation, free list) lives in its own packed array, while
// the SBO callbacks sit in a separate cold slab that the scheduling loop
// only touches at dispatch. cancel() flips a bit in the hot metadata -- no
// hash lookup anywhere on the schedule/pop path. Cancelled entries are
// drained from the structure head eagerly, so the head is always a live
// event and next_time() stays a const O(1) peek of a cached value.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/fingerprint.hpp"
#include "util/inplace_function.hpp"

namespace swarmavail::sim {

/// Handle identifying a scheduled event; used to cancel it. Encodes the
/// slab slot and its generation, so a stale id (the event fired or its slot
/// was reused) can never cancel an unrelated event.
using EventId = std::uint64_t;

/// Event callback storage: inline up to 48 bytes of captures (enough for
/// every simulator in this repo), heap fallback beyond that.
using EventFn = InplaceFunction<void(), 48>;

/// Calendar-queue event loop. Events scheduled for the same time fire in
/// scheduling order (sequence numbers break ties), which keeps simulations
/// deterministic for a fixed RNG seed; the pop order is bit-identical to
/// the generation-2 binary heap.
class EventQueue {
 public:
    /// Schedules `action` at absolute time `when` (must be finite and
    /// >= now()). Returns an id usable with cancel().
    EventId schedule_at(SimTime when, EventFn action);

    /// Marks an event as cancelled and releases its callback immediately;
    /// the calendar entry is dropped lazily. Cancelling an already-fired
    /// or unknown id is a no-op.
    void cancel(EventId id);

    /// Pops and runs the next event. Returns false when the queue is empty.
    bool run_next();

    /// Runs events until the queue empties or the next event is after
    /// `horizon`; events beyond the horizon stay queued.
    void run_until(SimTime horizon);

    /// Enables the invariant-audit mode: every pop re-verifies that event
    /// time is monotone and that the slab/calendar/free-list bookkeeping
    /// (including bucket routing and ladder-horizon bounds) is consistent,
    /// throwing CheckFailure on corruption. Off by default (zero overhead).
    void set_audit(bool on) noexcept { audit_ = on; }
    [[nodiscard]] bool audit() const noexcept { return audit_; }

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return live_events_; }

    /// Number of events dispatched (popped and run) over the queue's
    /// lifetime. Cancelled events are never dispatched and do not count.
    [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

    /// Time of the next live event, or a negative value if none is queued.
    /// Pure peek: every mutator repositions the calendar on a live head
    /// and refreshes this cache, so no draining (and no mutation) happens
    /// here.
    [[nodiscard]] SimTime next_time() const noexcept { return next_when_; }

#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    /// Attaches a determinism fingerprint: every dispatch folds its
    /// (when, seq) into the chain (kind 0 — the queue has no event
    /// semantics). The fingerprint must outlive the queue or be detached
    /// (null) first. Pure observer; absent under the trace-off preset.
    void set_fingerprint(Fingerprint* fingerprint) noexcept {
        fingerprint_ = fingerprint;
    }
#endif

    /// Introspection counters of the calendar/ladder structure behind the
    /// queue (rewindows, ladder spills, merges, max bucket occupancy).
    [[nodiscard]] const CalendarDebugStats& calendar_stats() const noexcept {
        return calendar_.debug_stats();
    }

 private:
    /// Hot per-slot metadata, packed separately from the callbacks so
    /// liveness scans and free-list walks never page in payload storage.
    /// A slot is owned by exactly one calendar entry from schedule to pop;
    /// `generation` invalidates stale EventIds once the slot is recycled.
    struct SlotMeta {
        std::uint32_t generation = 1;
        std::uint32_t next_free = kNoSlot;
        bool live = false;
    };

    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    [[nodiscard]] std::uint32_t acquire_slot();
    void release_slot(std::uint32_t index) noexcept;
    /// Pops cancelled entries off the calendar head so the head is always
    /// live, and refreshes the next_time() cache.
    void reposition();
    /// Audit-mode full consistency check of slab vs calendar vs free list.
    void audit_bookkeeping() const;

    CalendarLadder calendar_;        ///< hot POD scheduling records
    std::vector<SlotMeta> meta_;     ///< hot slot metadata
    std::vector<EventFn> actions_;   ///< cold payload slab; touched at dispatch
    std::uint32_t free_head_ = kNoSlot;
    SimTime now_ = 0.0;
    SimTime next_when_ = -1.0;       ///< cached next_time(); -1 when empty
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t live_events_ = 0;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    Fingerprint* fingerprint_ = nullptr;  ///< folds every dispatch when set
#endif
    bool audit_ = false;
};

}  // namespace swarmavail::sim
