// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events and O(1) logical cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace swarmavail::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Handle identifying a scheduled event; used to cancel it.
using EventId = std::uint64_t;

/// Min-heap event queue. Events scheduled for the same time fire in
/// scheduling order (sequence numbers break ties), which keeps simulations
/// deterministic for a fixed RNG seed.
class EventQueue {
 public:
    /// Schedules `action` at absolute time `when` (must be >= now()).
    /// Returns an id usable with cancel().
    EventId schedule_at(SimTime when, std::function<void()> action);

    /// Marks an event as cancelled; it is dropped when popped. Cancelling
    /// an already-fired or unknown id is a no-op.
    void cancel(EventId id);

    /// Pops and runs the next event. Returns false when the queue is empty.
    bool run_next();

    /// Runs events until the queue empties or the next event is after
    /// `horizon`; events beyond the horizon stay queued.
    void run_until(SimTime horizon);

    /// Enables the invariant-audit mode: every pop re-verifies that event
    /// time is monotone and that the live-event bookkeeping is consistent,
    /// throwing CheckFailure on corruption. Off by default (zero overhead).
    void set_audit(bool on) noexcept { audit_ = on; }
    [[nodiscard]] bool audit() const noexcept { return audit_; }

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return live_events_; }

    /// Time of the next live event, or a negative value if none is queued.
    /// Does not advance the clock (cancelled tombstones at the head are
    /// discarded, which is why this is not const).
    [[nodiscard]] SimTime next_time();

 private:
    struct Entry {
        SimTime when;
        EventId id;
        std::uint64_t seq;
        std::function<void()> action;
        bool operator>(const Entry& other) const noexcept {
            if (when != other.when) {
                return when > other.when;
            }
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> pending_;  // ids still scheduled (not cancelled/fired)
    SimTime now_ = 0.0;
    EventId next_id_ = 1;
    std::uint64_t next_seq_ = 0;
    std::size_t live_events_ = 0;
    bool audit_ = false;
};

}  // namespace swarmavail::sim
