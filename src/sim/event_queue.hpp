// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events and O(1) logical cancellation.
//
// Hot-path layout: callbacks live in a slab of reusable slots (small-buffer
// optimized, so typical [this, id] captures never touch the heap) and the
// heap itself holds only POD {when, seq, slot} entries. cancel() flips a
// bit in the slot -- no hash lookup anywhere on the schedule/pop path.
// Cancelled entries are drained from the heap head eagerly, so the head is
// always a live event and next_time() is a const peek.
#pragma once

#include <cstdint>
#include <vector>

#include "util/inplace_function.hpp"

namespace swarmavail::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Handle identifying a scheduled event; used to cancel it. Encodes the
/// slab slot and its generation, so a stale id (the event fired or its slot
/// was reused) can never cancel an unrelated event.
using EventId = std::uint64_t;

/// Event callback storage: inline up to 48 bytes of captures (enough for
/// every simulator in this repo), heap fallback beyond that.
using EventFn = InplaceFunction<void(), 48>;

/// Min-heap event queue. Events scheduled for the same time fire in
/// scheduling order (sequence numbers break ties), which keeps simulations
/// deterministic for a fixed RNG seed.
class EventQueue {
 public:
    /// Schedules `action` at absolute time `when` (must be >= now()).
    /// Returns an id usable with cancel().
    EventId schedule_at(SimTime when, EventFn action);

    /// Marks an event as cancelled and releases its callback immediately;
    /// the heap entry is dropped lazily. Cancelling an already-fired or
    /// unknown id is a no-op.
    void cancel(EventId id);

    /// Pops and runs the next event. Returns false when the queue is empty.
    bool run_next();

    /// Runs events until the queue empties or the next event is after
    /// `horizon`; events beyond the horizon stay queued.
    void run_until(SimTime horizon);

    /// Enables the invariant-audit mode: every pop re-verifies that event
    /// time is monotone and that the slab/heap/free-list bookkeeping is
    /// consistent, throwing CheckFailure on corruption. Off by default
    /// (zero overhead).
    void set_audit(bool on) noexcept { audit_ = on; }
    [[nodiscard]] bool audit() const noexcept { return audit_; }

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return live_events_; }

    /// Number of events dispatched (popped and run) over the queue's
    /// lifetime. Cancelled events are never dispatched and do not count.
    [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

    /// Time of the next live event, or a negative value if none is queued.
    /// Pure peek: the heap head is kept live eagerly, so no draining (and
    /// no mutation) happens here.
    [[nodiscard]] SimTime next_time() const noexcept {
        return heap_.empty() ? -1.0 : heap_.front().when;
    }

 private:
    /// POD heap entry; the callback lives in the slab, not the heap.
    struct HeapEntry {
        SimTime when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /// Slab record for one scheduled event. A slot is owned by exactly one
    /// heap entry from schedule to pop; `generation` invalidates stale
    /// EventIds once the slot is recycled.
    struct Slot {
        EventFn action;
        std::uint32_t generation = 1;
        std::uint32_t next_free = kNoSlot;
        bool live = false;
    };

    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    static bool later(const HeapEntry& a, const HeapEntry& b) noexcept {
        if (a.when != b.when) {
            return a.when > b.when;
        }
        return a.seq > b.seq;
    }

    [[nodiscard]] std::uint32_t acquire_slot();
    void release_slot(std::uint32_t index) noexcept;
    /// Pops cancelled entries off the heap head so the head is always live.
    void drain_cancelled_head();
    /// Audit-mode full consistency check of slab vs heap vs free list.
    void audit_bookkeeping() const;

    std::vector<HeapEntry> heap_;  ///< binary min-heap over (when, seq)
    std::vector<Slot> slab_;
    std::uint32_t free_head_ = kNoSlot;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t live_events_ = 0;
    bool audit_ = false;
};

}  // namespace swarmavail::sim
