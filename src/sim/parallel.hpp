// Parallel replication engine: a small fixed-size thread pool that fans a
// half-open index range [0, n) out over worker threads.
//
// Replications of a stochastic experiment are embarrassingly parallel --
// each runs its own Rng(seed + i) and touches only its own result slot --
// so the pool needs no work stealing: workers claim indices one at a time
// from a shared atomic counter (dynamic chunking; one replication is heavy
// enough that the counter is never contended).
//
// Determinism contract: the engine parallelizes *scheduling* only. Callers
// buffer per-index results and merge them in index order, so any thread
// count (including 1, the plain serial loop) produces bit-identical output.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace swarmavail::telemetry {
struct RunCounters;
}  // namespace swarmavail::telemetry

namespace swarmavail::sim {

/// How many threads a replication harness may use.
///
/// `threads == 0` (the default) resolves to the SWARMAVAIL_THREADS
/// environment variable if set to a positive integer, otherwise to the
/// hardware concurrency. `threads == 1` is the plain serial path: no pool,
/// no atomics, work runs inline on the calling thread.
struct ParallelPolicy {
    std::size_t threads = 0;

    /// The effective thread count (always >= 1).
    [[nodiscard]] std::size_t resolve() const;

    [[nodiscard]] static ParallelPolicy serial() noexcept { return ParallelPolicy{1}; }
};

/// Fixed-size thread pool. Construction spawns `threads - 1` workers (the
/// calling thread participates in every for_index call); destruction joins
/// them. One pool runs one for_index at a time.
class Parallel {
 public:
    /// Requires threads >= 1. `Parallel{1}` spawns nothing.
    explicit Parallel(std::size_t threads);
    ~Parallel();

    Parallel(const Parallel&) = delete;
    Parallel& operator=(const Parallel&) = delete;

    [[nodiscard]] std::size_t threads() const noexcept;

    /// Runs fn(i) for every i in [0, n), distributing indices over the pool
    /// plus the calling thread. Blocks until all indices completed. If any
    /// invocation throws, the first exception (in completion order) is
    /// rethrown here after the remaining indices finish; `fn` must be safe
    /// to call concurrently from multiple threads unless threads() == 1.
    ///
    /// If `counters` is non-null the worker loop publishes the number of
    /// not-yet-completed indices to `counters->queue_depth` as work drains
    /// (relaxed stores only; compiled out under SWARMAVAIL_TELEMETRY_DISABLED).
    void for_index(std::size_t n, const std::function<void(std::size_t)>& fn,
                   telemetry::RunCounters* counters = nullptr);

    /// One-shot convenience: resolves `policy`, clamps the pool to n, and
    /// runs fn over [0, n). With an effective thread count of 1 this is a
    /// plain loop with no threading machinery.
    static void for_index(std::size_t n, const ParallelPolicy& policy,
                          const std::function<void(std::size_t)>& fn,
                          telemetry::RunCounters* counters = nullptr);

 private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace swarmavail::sim
