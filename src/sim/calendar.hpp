// Calendar/ladder priority structure: the event queue's hot path.
//
// A time-partitioned multi-list that replaces the binary heap. Near-future
// entries land in calendar buckets of adaptive width and are sorted lazily,
// only when their bucket becomes the active one; far-future entries wait in
// an unsorted overflow ladder that spills back into a fresh bucket window
// each time the calendar drains. Pop order is the exact total order by
// (when, seq) — bit-identical to a binary heap with the same tie-break —
// but push and pop are O(1) amortized instead of O(log n), and the entries
// are hot PODs: the callback payloads live in the owner's cold slab, so
// positioning scans never touch them.
//
// Ordering contract (why this equals the heap):
//  - routing is monotone: when_a < when_b implies bucket(a) <= bucket(b),
//    and equal times always share a bucket, so ties never straddle a
//    boundary; the ladder only holds entries routed past the window end;
//  - within the active bucket entries are served in sorted (when, seq)
//    order; entries scheduled mid-drain that route at or before the active
//    bucket are staged and merged in front of the cursor the moment their
//    time precedes the current head (equal times keep the older seq first,
//    so staging never reorders ties).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace swarmavail::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Hot scheduling record: everything the positioning scans need, nothing
/// they don't. The callback payload lives in the owner's cold slab under
/// `slot`; the calendar never dereferences it.
struct CalendarEntry {
    SimTime when;        ///< absolute event time
    std::uint64_t seq;   ///< global schedule order; breaks `when` ties
    std::uint32_t slot;  ///< payload slot in the owner's slab
};

/// Strict total order over entries: time first, schedule order on ties.
[[nodiscard]] constexpr bool calendar_earlier(const CalendarEntry& a,
                                              const CalendarEntry& b) noexcept {
    if (a.when != b.when) {
        return a.when < b.when;
    }
    return a.seq < b.seq;
}

/// Lifetime introspection counters of one CalendarLadder. Pure structural
/// bookkeeping (plain integer increments on the cold regime-transition
/// paths, a size max at bucket activation); the counters never influence
/// routing or pop order. bench_event_queue publishes them so the regime
/// transitions (adaptive vs small-ladder windows, insertion vs re-sort
/// merges) are visible in BENCH_perf.json.
struct CalendarDebugStats {
    std::uint64_t rewindows = 0;        ///< window rebuilds from the ladder
    std::uint64_t small_rewindows = 0;  ///< of which took the small-ladder path
    std::uint64_t ladder_spills = 0;    ///< entries routed past the window
    std::uint64_t staged_merges = 0;    ///< staged batches merged mid-bucket
    std::uint64_t insertion_merges = 0; ///< of which spliced by insertion
    std::uint64_t max_bucket_occupancy = 0;  ///< largest bucket at activation
};

class CalendarLadder {
 public:
    /// Appends an entry. `entry.when` must be finite and no earlier than
    /// the `when` of the last entry popped (the owner's clock contract).
    void push(const CalendarEntry& entry);

    /// Positions the structure at the (when, seq)-minimal entry and
    /// returns a pointer to it, or nullptr when empty. Amortized O(1);
    /// may sort a newly activated bucket or rebuild the window from the
    /// ladder. The pointer is invalidated by any mutating call.
    [[nodiscard]] const CalendarEntry* peek();

    /// Removes and returns the entry the preceding peek() returned.
    /// peek() must have been called (and returned non-null) with no
    /// intervening mutation.
    CalendarEntry pop();

    [[nodiscard]] bool empty() const noexcept { return entries_ == 0; }

    /// Total stored entries, including any the owner has logically
    /// cancelled but not yet drained past.
    [[nodiscard]] std::size_t entries() const noexcept { return entries_; }

    /// Audit hook: visits every stored entry (active bucket from the
    /// cursor on, pending buckets, staged inserts, ladder) in an
    /// unspecified order.
    template <typename Fn>
    void for_each_entry(Fn&& fn) const {
        if (have_window_) {
            for (std::size_t b = cur_bucket_; b < num_buckets_; ++b) {
                const std::vector<CalendarEntry>& bucket = buckets_[b];
                for (std::size_t i = b == cur_bucket_ ? cursor_ : 0;
                     i < bucket.size(); ++i) {
                    fn(bucket[i]);
                }
            }
        }
        for (const CalendarEntry& entry : staged_) {
            fn(entry);
        }
        for (const CalendarEntry& entry : ladder_) {
            fn(entry);
        }
    }

    /// Audit-mode structural check: bucket routing and ladder-horizon
    /// bounds, active-bucket sort order, occupancy-bitmap consistency,
    /// staged-minimum cache, and the entry count. Throws CheckFailure on
    /// corruption.
    void audit_structure() const;

    /// Lifetime regime counters; see CalendarDebugStats.
    [[nodiscard]] const CalendarDebugStats& debug_stats() const noexcept {
        return stats_;
    }

 private:
    /// Sizing targets for the adaptive window: aim for kTargetPerBucket
    /// entries per bucket, with the bucket count a power of two in
    /// [kMinBuckets, kMaxBuckets] so the occupancy bitmap stays tiny.
    static constexpr std::size_t kTargetPerBucket = 4;
    static constexpr std::size_t kMinBuckets = 8;
    static constexpr std::size_t kMaxBuckets = 4096;
    /// Ladders at or below this size rewindow over their full span in one
    /// batch instead of the median-sized adaptive window; see rewindow().
    static constexpr std::size_t kSmallLadder = 32;
    /// Staged batches at or below this size splice into the active bucket
    /// by insertion instead of a full re-sort; see merge_staged().
    static constexpr std::size_t kSmallMerge = 4;

    void stage(const CalendarEntry& entry);
    /// Merges staged entries in front of the active cursor (sorted).
    void merge_staged();
    /// Promotes the staged entries to be the active bucket's content.
    void activate_staged();
    /// Rebuilds the bucket window from the ladder (adaptive width/count).
    void rewindow();
    /// Shared rewindow tail: routes the ladder into `num_buckets_` buckets
    /// of `width` starting at `lo` and positions the cursor.
    void build_window(SimTime lo, SimTime width);
    void sort_bucket(std::size_t index);

    void set_bit(std::size_t bucket) noexcept {
        occupancy_[bucket >> 6U] |= std::uint64_t{1} << (bucket & 63U);
    }
    void clear_bit(std::size_t bucket) noexcept {
        occupancy_[bucket >> 6U] &= ~(std::uint64_t{1} << (bucket & 63U));
    }
    [[nodiscard]] bool test_bit(std::size_t bucket) const noexcept {
        return (occupancy_[bucket >> 6U] >> (bucket & 63U) & 1U) != 0U;
    }
    /// First non-empty bucket at or after `from`, or num_buckets_ if none.
    [[nodiscard]] std::size_t next_occupied(std::size_t from) const noexcept;

    std::vector<std::vector<CalendarEntry>> buckets_;  ///< unsorted until active
    std::vector<std::uint64_t> occupancy_;  ///< one bit per non-empty bucket
    std::vector<CalendarEntry> staged_;     ///< inserts at/before the active bucket
    std::vector<CalendarEntry> ladder_;     ///< unsorted overflow past the window
    std::vector<CalendarEntry> scratch_;    ///< rewindow workspace (reused)
    SimTime win_start_ = 0.0;
    SimTime width_ = 1.0;
    SimTime inv_width_ = 1.0;
    SimTime staged_min_when_ = std::numeric_limits<SimTime>::infinity();
    std::size_t num_buckets_ = 0;
    std::size_t cur_bucket_ = 0;
    std::size_t cursor_ = 0;
    std::size_t entries_ = 0;
    CalendarDebugStats stats_;
    bool have_window_ = false;  ///< false: every entry lives in ladder_
};

}  // namespace swarmavail::sim
