#include "sim/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"

namespace swarmavail::sim {

FlightRecorder::FlightRecorder(std::size_t capacity) {
    require(capacity >= 1, "FlightRecorder: capacity must be >= 1");
    ring_.resize(capacity);
}

void FlightRecorder::write(const TraceRecord* records, std::size_t count) {
    const std::size_t cap = ring_.size();
    if (count >= cap) {
        // The batch alone fills the ring: keep its newest `cap` records.
        std::copy(records + (count - cap), records + count, ring_.begin());
        head_ = 0;
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            ring_[head_] = records[i];
            head_ = head_ + 1 == cap ? 0 : head_ + 1;
        }
    }
    total_ += count;
}

void FlightRecorder::annotate(double time, std::string_view text) {
    annotations_.emplace_back(text);
    if (dump_os_ != nullptr) {
        dump(*dump_os_, time, text);
    }
    ++dumps_;
}

void FlightRecorder::dump(std::ostream& os, double time,
                          std::string_view reason) const {
    JsonlTraceSink sink{os};
    const std::vector<TraceRecord> records = window();
    sink.write(records.data(), records.size());
    sink.annotate(time, reason);
    sink.finish();
}

std::vector<TraceRecord> FlightRecorder::window() const {
    const std::size_t cap = ring_.size();
    const std::size_t kept = total_ < cap ? static_cast<std::size_t>(total_) : cap;
    std::vector<TraceRecord> out;
    out.reserve(kept);
    // Oldest record first: when the ring has wrapped, head_ points at it.
    const std::size_t start = total_ < cap ? 0 : head_;
    for (std::size_t i = 0; i < kept; ++i) {
        out.push_back(ring_[(start + i) % cap]);
    }
    return out;
}

}  // namespace swarmavail::sim
