#include "sim/trace.hpp"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace swarmavail::sim {

namespace {

struct KindName {
    TraceKind kind;
    const char* name;
};

constexpr KindName kKindNames[] = {
    {TraceKind::kPeerArrival, "peer_arrival"},
    {TraceKind::kPeerCompletion, "peer_completion"},
    {TraceKind::kPeerLost, "peer_lost"},
    {TraceKind::kPeerStranded, "peer_stranded"},
    {TraceKind::kPublisherUp, "publisher_up"},
    {TraceKind::kPublisherDown, "publisher_down"},
    {TraceKind::kAvailabilityBegin, "availability_begin"},
    {TraceKind::kAvailabilityEnd, "availability_end"},
    {TraceKind::kTransferStart, "transfer_start"},
    {TraceKind::kTransferComplete, "transfer_complete"},
    {TraceKind::kCustom, "custom"},
};

/// JSON string escaping for annotation text (control chars, quote, backslash).
std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (char ch : text) {
        switch (ch) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(ch)));
                    out += buf;
                } else {
                    out += ch;
                }
                break;
        }
    }
    return out;
}

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
    throw std::invalid_argument("trace parse error at line " + std::to_string(line_no) +
                                ": " + why);
}

/// Minimal scanner over one JSONL line as emitted by JsonlTraceSink. This
/// is deliberately not a general JSON parser: it only accepts the writer's
/// own shape, which keeps the round-trip contract narrow and testable.
class JsonLineScanner {
 public:
    JsonLineScanner(std::string_view line, std::size_t line_no)
        : line_(line), line_no_(line_no) {}

    void expect(char ch) {
        if (pos_ >= line_.size() || line_[pos_] != ch) {
            parse_fail(line_no_, std::string("expected '") + ch + "'");
        }
        ++pos_;
    }

    [[nodiscard]] bool consume(char ch) noexcept {
        if (pos_ < line_.size() && line_[pos_] == ch) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect_key(std::string_view key) {
        expect('"');
        if (line_.substr(pos_, key.size()) != key) {
            parse_fail(line_no_, "expected key \"" + std::string(key) + "\"");
        }
        pos_ += key.size();
        expect('"');
        expect(':');
    }

    [[nodiscard]] double read_double() {
        double value = 0.0;
        const char* begin = line_.data() + pos_;
        const char* end = line_.data() + line_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{}) {
            parse_fail(line_no_, "bad number");
        }
        pos_ = static_cast<std::size_t>(ptr - line_.data());
        return value;
    }

    [[nodiscard]] std::uint64_t read_u64() {
        std::uint64_t value = 0;
        const char* begin = line_.data() + pos_;
        const char* end = line_.data() + line_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{}) {
            parse_fail(line_no_, "bad integer");
        }
        pos_ = static_cast<std::size_t>(ptr - line_.data());
        return value;
    }

    /// Reads a quoted string, undoing json_escape.
    [[nodiscard]] std::string read_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= line_.size()) {
                parse_fail(line_no_, "unterminated string");
            }
            char ch = line_[pos_++];
            if (ch == '"') {
                return out;
            }
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= line_.size()) {
                parse_fail(line_no_, "dangling escape");
            }
            char esc = line_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > line_.size()) {
                        parse_fail(line_no_, "bad \\u escape");
                    }
                    unsigned code = 0;
                    const char* begin = line_.data() + pos_;
                    const auto [ptr, ec] = std::from_chars(begin, begin + 4, code, 16);
                    if (ec != std::errc{} || ptr != begin + 4 || code > 0xFF) {
                        parse_fail(line_no_, "bad \\u escape");
                    }
                    out += static_cast<char>(code);
                    pos_ += 4;
                    break;
                }
                default:
                    parse_fail(line_no_, "unknown escape");
            }
        }
    }

    void expect_end() {
        if (pos_ != line_.size()) {
            parse_fail(line_no_, "trailing characters");
        }
    }

 private:
    std::string_view line_;
    std::size_t line_no_;
    std::size_t pos_ = 0;
};

/// Splits one CSV line written by write_csv_row back into cells.
std::vector<std::string> split_csv_line(const std::string& line, std::size_t line_no) {
    std::vector<std::string> cells;
    std::string cell;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char ch = line[i];
        if (in_quotes) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell += ch;
            }
        } else if (ch == '"') {
            in_quotes = true;
        } else if (ch == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += ch;
        }
    }
    if (in_quotes) {
        parse_fail(line_no, "unterminated quoted cell");
    }
    cells.push_back(std::move(cell));
    return cells;
}

double parse_double_cell(const std::string& cell, std::size_t line_no) {
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
    if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
        parse_fail(line_no, "bad number '" + cell + "'");
    }
    return value;
}

std::uint64_t parse_u64_cell(const std::string& cell, std::size_t line_no) {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
    if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
        parse_fail(line_no, "bad integer '" + cell + "'");
    }
    return value;
}

}  // namespace

const char* trace_kind_name(TraceKind kind) noexcept {
    for (const KindName& entry : kKindNames) {
        if (entry.kind == kind) {
            return entry.name;
        }
    }
    return "unknown";
}

bool trace_kind_from_name(std::string_view name, TraceKind& out) noexcept {
    for (const KindName& entry : kKindNames) {
        if (name == entry.name) {
            out = entry.kind;
            return true;
        }
    }
    return false;
}

void TraceSink::annotate(double time, std::string_view text) {
    static_cast<void>(time);
    static_cast<void>(text);
}

void NullTraceSink::write(const TraceRecord* records, std::size_t count) {
    static_cast<void>(records);
    static_cast<void>(count);
}

void MemoryTraceSink::write(const TraceRecord* records, std::size_t count) {
    records_.insert(records_.end(), records, records + count);
}

void MemoryTraceSink::annotate(double time, std::string_view text) {
    annotations_.emplace_back(time, std::string(text));
}

void JsonlTraceSink::write(const TraceRecord* records, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord& r = records[i];
        os_ << "{\"t\":" << format_double_exact(r.time) << ",\"kind\":\""
            << trace_kind_name(r.kind) << "\",\"entity\":" << r.entity
            << ",\"a\":" << format_double_exact(r.a)
            << ",\"b\":" << format_double_exact(r.b) << "}\n";
    }
}

void JsonlTraceSink::annotate(double time, std::string_view text) {
    os_ << "{\"t\":" << format_double_exact(time)
        << ",\"kind\":\"annotation\",\"text\":\"" << json_escape(text) << "\"}\n";
}

void JsonlTraceSink::finish() { os_.flush(); }

CsvTraceSink::CsvTraceSink(std::ostream& os) : os_(os) {
    write_csv_row(os_, {"time", "kind", "entity", "a", "b"});
}

void CsvTraceSink::write(const TraceRecord* records, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord& r = records[i];
        write_csv_row(os_, {format_double_exact(r.time), trace_kind_name(r.kind),
                            std::to_string(r.entity), format_double_exact(r.a),
                            format_double_exact(r.b)});
    }
}

void CsvTraceSink::annotate(double time, std::string_view text) {
    write_csv_row(os_, {format_double_exact(time), "annotation", "0",
                        std::string(text), "0"});
}

void CsvTraceSink::finish() { os_.flush(); }

Tracer::Tracer(TraceSink& sink, std::size_t buffer_capacity)
    : sink_(sink), capacity_(buffer_capacity) {
    require(buffer_capacity >= 1, "Tracer: buffer_capacity must be >= 1");
    buffer_.reserve(capacity_);
}

Tracer::~Tracer() {
    flush();
    sink_.finish();
}

void Tracer::annotate(double time, std::string_view text) {
    flush();
    sink_.annotate(time, text);
}

void Tracer::flush() {
    if (!buffer_.empty()) {
        sink_.write(buffer_.data(), buffer_.size());
        emitted_ += buffer_.size();
        buffer_.clear();
    }
}

ParsedTrace read_trace_jsonl(std::istream& in) {
    ParsedTrace out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        JsonLineScanner scan(line, line_no);
        scan.expect('{');
        scan.expect_key("t");
        const double time = scan.read_double();
        scan.expect(',');
        scan.expect_key("kind");
        const std::string kind_name = scan.read_string();
        if (kind_name == "annotation") {
            scan.expect(',');
            scan.expect_key("text");
            std::string text = scan.read_string();
            scan.expect('}');
            scan.expect_end();
            out.annotations.push_back(TraceAnnotation{time, std::move(text)});
            continue;
        }
        TraceKind kind = TraceKind::kCustom;
        if (!trace_kind_from_name(kind_name, kind)) {
            parse_fail(line_no, "unknown kind '" + kind_name + "'");
        }
        scan.expect(',');
        scan.expect_key("entity");
        const std::uint64_t entity = scan.read_u64();
        scan.expect(',');
        scan.expect_key("a");
        const double a = scan.read_double();
        scan.expect(',');
        scan.expect_key("b");
        const double b = scan.read_double();
        scan.expect('}');
        scan.expect_end();
        out.records.push_back(TraceRecord{time, kind, 0, entity, a, b});
    }
    return out;
}

ParsedTrace read_trace_csv(std::istream& in) {
    ParsedTrace out;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        std::vector<std::string> cells = split_csv_line(line, line_no);
        if (cells.size() != 5) {
            parse_fail(line_no, "expected 5 cells, got " + std::to_string(cells.size()));
        }
        if (!saw_header) {
            if (cells[0] != "time" || cells[1] != "kind") {
                parse_fail(line_no, "missing CSV header");
            }
            saw_header = true;
            continue;
        }
        const double time = parse_double_cell(cells[0], line_no);
        if (cells[1] == "annotation") {
            out.annotations.push_back(TraceAnnotation{time, std::move(cells[3])});
            continue;
        }
        TraceKind kind = TraceKind::kCustom;
        if (!trace_kind_from_name(cells[1], kind)) {
            parse_fail(line_no, "unknown kind '" + cells[1] + "'");
        }
        out.records.push_back(TraceRecord{time, kind, 0,
                                          parse_u64_cell(cells[2], line_no),
                                          parse_double_cell(cells[3], line_no),
                                          parse_double_cell(cells[4], line_no)});
    }
    if (!saw_header) {
        parse_fail(line_no, "empty trace (no header)");
    }
    return out;
}

void trace_check_failure(Tracer* tracer, double sim_time, const CheckFailure& failure) {
    if (tracer == nullptr) {
        return;
    }
    std::ostringstream text;
    text << "check failure at " << failure.file() << ':' << failure.line() << ": "
         << failure.message();
    tracer->annotate(sim_time, text.str());
}

}  // namespace swarmavail::sim
