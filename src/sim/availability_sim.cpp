#include "sim/availability_sim.hpp"

#include "sim/availability_process.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"

namespace swarmavail::sim {

AvailabilitySimResult run_availability_sim(const AvailabilitySimConfig& config) {
    EventQueue queue;
    queue.set_audit(config.debug_audit);
    AvailabilityProcess process{queue, config};
    process.start();
    try {
        queue.run_until(config.horizon);
    } catch (const CheckFailure& failure) {
        // Route audit-mode diagnostics through the structured sink with
        // the sim-time attached before the failure propagates.
        trace_check_failure(config.tracer, queue.now(), failure);
        throw;
    }
    return process.finish();
}

}  // namespace swarmavail::sim
