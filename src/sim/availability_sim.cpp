#include "sim/availability_sim.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/processes.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace swarmavail::sim {
namespace {

/// Per-peer bookkeeping while the peer is in the system.
struct PeerState {
    SimTime arrival = 0.0;
    double waited = 0.0;      ///< idle time accumulated so far
    SimTime wait_start = 0.0; ///< when the current wait began (if blocked)
    EventId completion = 0;   ///< pending completion event (if downloading)
};

/// The full simulation state machine; run_availability_sim drives it.
class AvailabilitySim {
 public:
    explicit AvailabilitySim(const AvailabilitySimConfig& config)
        : config_(config), rng_(config.seed) {
        config_.params.validate();
        require(config_.coverage_threshold >= 1,
                "AvailabilitySim: coverage threshold must be >= 1");
        require(config_.linger_time >= 0.0, "AvailabilitySim: linger_time must be >= 0");
        require(config_.horizon > 0.0, "AvailabilitySim: horizon must be > 0");
        queue_.set_audit(config_.debug_audit);
    }

    AvailabilitySimResult run() {
        const auto& p = config_.params;

        PoissonProcess peer_arrivals{queue_, rng_, p.peer_arrival_rate,
                                     [this] { on_peer_arrival(); }};
        peer_arrivals.start(config_.horizon);

        PoissonProcess publisher_arrivals{queue_, rng_, p.publisher_arrival_rate,
                                          [this] { on_publisher_arrival(); }};
        OnOffProcess on_off{queue_,
                            rng_,
                            p.publisher_residence,
                            1.0 / p.publisher_arrival_rate,
                            [this] { on_publisher_up(); },
                            [this] { on_publisher_down(); }};
        if (config_.publisher_mode == PublisherMode::kPoissonArrivals) {
            publisher_arrivals.start(config_.horizon);
        } else {
            on_off.start(config_.horizon);
        }

        queue_.run_until(config_.horizon);

        // Close the final availability interval for the time-average.
        account_interval(config_.horizon);
        AvailabilitySimResult out = result_;
        const double denom = unavailable_seconds_ + available_seconds_;
        out.unavailable_time_fraction = denom > 0.0 ? unavailable_seconds_ / denom : 1.0;
        out.arrival_unavailability =
            out.arrivals > 0
                ? static_cast<double>(arrivals_blocked_) / static_cast<double>(out.arrivals)
                : 0.0;
        return out;
    }

 private:
    using PeerId = std::uint64_t;

    [[nodiscard]] std::size_t coverage() const noexcept {
        return downloading_.size() + lingering_;
    }

    void account_interval(SimTime now) {
        const double span = now - interval_start_;
        if (span > 0.0) {
            (available_ ? available_seconds_ : unavailable_seconds_) += span;
        }
        interval_start_ = now;
    }

    void become_available() {
        account_interval(queue_.now());
        available_ = true;
        if (idle_open_) {
            result_.idle_periods.add(queue_.now() - idle_start_);
            idle_open_ = false;
        }
        busy_start_ = queue_.now();
        busy_open_ = true;
        served_this_busy_ = 0;
        // Blocked (patient) peers immediately begin service.
        for (PeerId id : blocked_) {
            auto& peer = peers_.at(id);
            peer.waited += queue_.now() - peer.wait_start;
            start_service(id);
        }
        blocked_.clear();
    }

    void become_unavailable() {
        account_interval(queue_.now());
        available_ = false;
        if (busy_open_) {
            result_.busy_periods.add(queue_.now() - busy_start_);
            result_.peers_per_busy_period.add(static_cast<double>(served_this_busy_));
            busy_open_ = false;
        }
        idle_start_ = queue_.now();
        idle_open_ = true;
        // Downloading peers are interrupted mid-download (the dotted lines of
        // Figure 2): they block until a publisher returns, or leave if
        // impatient. By memorylessness their remaining service on resume is
        // a fresh Exp(s/mu), matching the model's renewal view.
        std::vector<PeerId> interrupted;
        interrupted.reserve(downloading_.size());
        for (const auto& [id, peer] : downloading_) {
            interrupted.push_back(id);
        }
        for (PeerId id : interrupted) {
            queue_.cancel(downloading_.at(id));
            downloading_.erase(id);
            ++result_.stranded;
            if (config_.patient_peers) {
                peers_.at(id).wait_start = queue_.now();
                blocked_.push_back(id);
            } else {
                peers_.erase(id);
                ++result_.lost;
            }
        }
        // Lingering seeds have nothing to serve once the content is dead;
        // they exit (their coverage contribution ended the moment the
        // threshold was crossed). Bump the epoch so their pending departure
        // events become no-ops.
        lingering_ = 0;
        ++linger_epoch_;
    }

    /// Invoked after any departure/publisher change that can end a busy period.
    void maybe_end_busy_period() {
        if (available_ && publishers_ == 0 && coverage() < config_.coverage_threshold) {
            become_unavailable();
        }
    }

    /// Invariant-audit pass, run after every event handler when
    /// config_.debug_audit is set: peers are conserved across arrivals,
    /// completions and losses; every in-system peer is accounted as either
    /// downloading or blocked; populations are non-negative; and the
    /// busy/idle bookkeeping agrees with the availability flag.
    void audit_state() const {
        if (!config_.debug_audit) {
            return;
        }
        audit::check_peer_conservation(result_.arrivals, result_.served, result_.lost,
                                       peers_.size());
        SWARMAVAIL_INVARIANT(downloading_.size() + blocked_.size() == peers_.size(),
                             "AvailabilitySim: peers_ diverged from the union of "
                             "downloading and blocked sets");
        audit::check_nonnegative_count("publishers",
                                       static_cast<std::int64_t>(publishers_));
        audit::check_nonnegative_count("lingering seeds",
                                       static_cast<std::int64_t>(lingering_));
        SWARMAVAIL_INVARIANT(available_ || downloading_.empty(),
                             "AvailabilitySim: peers downloading while content is "
                             "unavailable");
        SWARMAVAIL_INVARIANT(available_ == busy_open_,
                             "AvailabilitySim: availability flag out of sync with the "
                             "open busy period");
        SWARMAVAIL_INVARIANT(!available_ || blocked_.empty(),
                             "AvailabilitySim: blocked peers during an available "
                             "period");
    }

    /// Applies a publisher-count delta in signed arithmetic so the audit
    /// catches an underflow before it wraps the unsigned counter.
    void change_publishers(std::int64_t delta) {
        const std::int64_t updated = static_cast<std::int64_t>(publishers_) + delta;
        if (config_.debug_audit) {
            audit::check_nonnegative_count("publishers", updated);
        }
        publishers_ = static_cast<std::size_t>(updated);
    }

    void on_peer_arrival() {
        ++result_.arrivals;
        const PeerId id = next_peer_id_++;
        PeerState peer;
        peer.arrival = queue_.now();
        if (available_) {
            peers_.emplace(id, peer);
            start_service(id);
        } else {
            ++arrivals_blocked_;
            if (config_.patient_peers) {
                peer.wait_start = queue_.now();
                peers_.emplace(id, peer);
                blocked_.push_back(id);
            } else {
                ++result_.lost;
            }
        }
        audit_state();
    }

    void start_service(PeerId id) {
        const double service = rng_.exponential_mean(config_.params.service_time());
        const EventId event =
            queue_.schedule_at(queue_.now() + service, [this, id] { on_completion(id); });
        downloading_[id] = event;
        peers_.at(id).completion = event;
    }

    void on_completion(PeerId id) {
        downloading_.erase(id);
        const auto it = peers_.find(id);
        ensure(it != peers_.end(), "AvailabilitySim: completion for unknown peer");
        const PeerState peer = it->second;
        peers_.erase(it);
        ++result_.served;
        ++served_this_busy_;
        result_.download_times.add(queue_.now() - peer.arrival);
        result_.waiting_times.add(peer.waited);
        if (config_.linger_time > 0.0) {
            ++lingering_;
            const double linger = rng_.exponential_mean(config_.linger_time);
            // The epoch guard voids this event if an intervening idle period
            // already flushed all lingering seeds.
            const std::uint64_t epoch = linger_epoch_;
            queue_.schedule_at(queue_.now() + linger, [this, epoch] {
                if (epoch == linger_epoch_ && lingering_ > 0) {
                    --lingering_;
                    maybe_end_busy_period();
                    audit_state();
                }
            });
        }
        maybe_end_busy_period();
        audit_state();
    }

    void on_publisher_arrival() {
        change_publishers(+1);
        const double stay = rng_.exponential_mean(config_.params.publisher_residence);
        queue_.schedule_at(queue_.now() + stay, [this] {
            change_publishers(-1);
            maybe_end_busy_period();
            audit_state();
        });
        if (!available_) {
            become_available();
        }
        audit_state();
    }

    void on_publisher_up() {
        change_publishers(+1);
        if (!available_) {
            become_available();
        }
        audit_state();
    }

    void on_publisher_down() {
        change_publishers(-1);
        maybe_end_busy_period();
        audit_state();
    }

    AvailabilitySimConfig config_;
    Rng rng_;
    EventQueue queue_;
    AvailabilitySimResult result_;

    std::unordered_map<PeerId, PeerState> peers_;
    std::unordered_map<PeerId, EventId> downloading_;
    std::vector<PeerId> blocked_;
    std::size_t lingering_ = 0;
    std::uint64_t linger_epoch_ = 0;
    std::size_t publishers_ = 0;
    PeerId next_peer_id_ = 1;

    bool available_ = false;
    bool busy_open_ = false;
    bool idle_open_ = false;
    SimTime busy_start_ = 0.0;
    SimTime idle_start_ = 0.0;
    std::uint64_t served_this_busy_ = 0;
    std::uint64_t arrivals_blocked_ = 0;

    SimTime interval_start_ = 0.0;
    double available_seconds_ = 0.0;
    double unavailable_seconds_ = 0.0;
};

}  // namespace

AvailabilitySimResult run_availability_sim(const AvailabilitySimConfig& config) {
    AvailabilitySim sim{config};
    return sim.run();
}

}  // namespace swarmavail::sim
