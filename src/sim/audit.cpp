#include "sim/audit.hpp"

#include <string>

#include "util/check.hpp"

namespace swarmavail::sim::audit {

void check_monotone_time(SimTime previous, SimTime next) {
    SWARMAVAIL_INVARIANT(next >= previous,
                         "event time went backwards: next event at t=" +
                             std::to_string(next) + " precedes clock t=" +
                             std::to_string(previous));
}

void check_nonnegative_count(const char* what, std::int64_t count) {
    SWARMAVAIL_INVARIANT(count >= 0, std::string(what) + " count went negative (" +
                                         std::to_string(count) + ")");
}

void check_peer_conservation(std::uint64_t arrivals, std::uint64_t served,
                             std::uint64_t lost, std::uint64_t in_system) {
    SWARMAVAIL_INVARIANT(
        arrivals == served + lost + in_system,
        "peer conservation violated: " + std::to_string(arrivals) + " arrivals != " +
            std::to_string(served) + " served + " + std::to_string(lost) + " lost + " +
            std::to_string(in_system) + " in system");
}

}  // namespace swarmavail::sim::audit
