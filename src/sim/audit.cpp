#include "sim/audit.hpp"

#include <string>

#include "util/check.hpp"

namespace swarmavail::sim::audit {

void check_monotone_time(SimTime previous, SimTime next) {
    SWARMAVAIL_INVARIANT(next >= previous,
                         "event time went backwards: next event at t=" +
                             std::to_string(next) + " precedes clock t=" +
                             std::to_string(previous));
}

void check_nonnegative_count(const char* what, std::int64_t count) {
    SWARMAVAIL_INVARIANT(count >= 0, std::string(what) + " count went negative (" +
                                         std::to_string(count) + ")");
}

void check_peer_conservation(std::uint64_t arrivals, std::uint64_t served,
                             std::uint64_t lost, std::uint64_t in_system) {
    SWARMAVAIL_INVARIANT(
        arrivals == served + lost + in_system,
        "peer conservation violated: " + std::to_string(arrivals) + " arrivals != " +
            std::to_string(served) + " served + " + std::to_string(lost) + " lost + " +
            std::to_string(in_system) + " in system");
}

void check_calendar_bucket(SimTime when, SimTime window_start, SimTime width,
                           std::uint64_t num_buckets, std::uint64_t bucket) {
    // Mirror of CalendarLadder's routing expression, operation for
    // operation, so boundary rounding is identical.
    const double offset = (when - window_start) * (1.0 / width);
    SWARMAVAIL_INVARIANT(
        offset >= 0.0 && offset < static_cast<double>(num_buckets),
        "calendar entry outside the bucket window: t=" + std::to_string(when) +
            " routes offset " + std::to_string(offset) + " across " +
            std::to_string(num_buckets) + " buckets");
    SWARMAVAIL_INVARIANT(
        static_cast<std::uint64_t>(offset) == bucket,
        "calendar entry in the wrong bucket: t=" + std::to_string(when) +
            " routes to bucket " +
            std::to_string(static_cast<std::uint64_t>(offset)) +
            " but is stored in bucket " + std::to_string(bucket));
}

void check_ladder_horizon(SimTime when, SimTime window_start, SimTime width,
                          std::uint64_t num_buckets) {
    const double offset = (when - window_start) * (1.0 / width);
    SWARMAVAIL_INVARIANT(
        offset >= static_cast<double>(num_buckets),
        "ladder entry inside the bucket window: t=" + std::to_string(when) +
            " routes offset " + std::to_string(offset) + " but the window spans " +
            std::to_string(num_buckets) + " buckets");
}

}  // namespace swarmavail::sim::audit
