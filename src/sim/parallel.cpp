#include "sim/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/profile.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::sim {
namespace {

/// Publishes the remaining-index count after one more index completed.
/// No-op when telemetry is compiled out or detached.
inline void publish_queue_depth(telemetry::RunCounters* counters, std::size_t n,
                                std::atomic<std::size_t>* completed) {
#ifndef SWARMAVAIL_TELEMETRY_DISABLED
    if (counters != nullptr) {
        const std::size_t done =
            completed->fetch_add(1, std::memory_order_relaxed) + 1;
        counters->queue_depth.store(static_cast<double>(n - (done < n ? done : n)),
                                    std::memory_order_relaxed);
    }
#else
    (void)counters;
    (void)n;
    (void)completed;
#endif
}

}  // namespace

std::size_t ParallelPolicy::resolve() const {
    if (threads > 0) {
        return threads;
    }
    // swarmlint-allow(det-env): selects worker-pool width only; results are bit-identical at every thread count (index-order merge, tests/sim/test_parallel.cpp)
    if (const char* env = std::getenv("SWARMAVAIL_THREADS")) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1) {
            return static_cast<std::size_t>(parsed);
        }
    }
    // swarmlint-allow(det-env): selects worker-pool width only; results are bit-identical at every thread count (index-order merge, tests/sim/test_parallel.cpp)
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

struct Parallel::Impl {
    std::vector<std::thread> workers;
    std::mutex mutex;
    std::condition_variable work_ready;
    std::condition_variable work_done;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    telemetry::RunCounters* counters = nullptr;
    std::size_t n = 0;
    std::uint64_t job_generation = 0;
    std::size_t busy_workers = 0;
    std::exception_ptr first_error;
    bool stopping = false;

    /// Claims indices until the range is exhausted; called by workers and
    /// by the thread driving for_index.
    void run_indices() {
        SWARMAVAIL_PROF_SCOPE("parallel.worker_loop");
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) {
                return;
            }
            try {
                (*fn)(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
            publish_queue_depth(counters, n, &completed);
        }
    }

    void worker_loop() {
        std::uint64_t seen_generation = 0;
        for (;;) {
            std::unique_lock<std::mutex> lock(mutex);
            work_ready.wait(lock, [&] {
                return stopping || job_generation != seen_generation;
            });
            if (stopping) {
                return;
            }
            seen_generation = job_generation;
            lock.unlock();
            run_indices();
            lock.lock();
            if (--busy_workers == 0) {
                work_done.notify_all();
            }
        }
    }
};

Parallel::Parallel(std::size_t threads) : impl_(std::make_unique<Impl>()) {
    require(threads >= 1, "Parallel: requires at least one thread");
    impl_->workers.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
        impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
    }
}

Parallel::~Parallel() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->work_ready.notify_all();
    for (std::thread& worker : impl_->workers) {
        worker.join();
    }
}

std::size_t Parallel::threads() const noexcept { return impl_->workers.size() + 1; }

void Parallel::for_index(std::size_t n, const std::function<void(std::size_t)>& fn,
                         telemetry::RunCounters* counters) {
    require(static_cast<bool>(fn), "Parallel::for_index: fn required");
    if (n == 0) {
        return;
    }
    if (impl_->workers.empty() || n == 1) {
        // Serial path: no shared state, exceptions propagate directly.
        SWARMAVAIL_PROF_SCOPE("parallel.worker_loop");
        std::atomic<std::size_t> completed{0};
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
            publish_queue_depth(counters, n, &completed);
        }
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->fn = &fn;
        impl_->n = n;
        impl_->counters = counters;
        impl_->completed.store(0, std::memory_order_relaxed);
        impl_->next.store(0, std::memory_order_relaxed);
        impl_->busy_workers = impl_->workers.size();
        impl_->first_error = nullptr;
        ++impl_->job_generation;
    }
    impl_->work_ready.notify_all();
    impl_->run_indices();  // the calling thread is the pool's extra worker
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->work_done.wait(lock, [&] { return impl_->busy_workers == 0; });
    impl_->fn = nullptr;
    impl_->counters = nullptr;
    if (impl_->first_error) {
        std::exception_ptr error = impl_->first_error;
        impl_->first_error = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void Parallel::for_index(std::size_t n, const ParallelPolicy& policy,
                         const std::function<void(std::size_t)>& fn,
                         telemetry::RunCounters* counters) {
    require(static_cast<bool>(fn), "Parallel::for_index: fn required");
    std::size_t threads = policy.resolve();
    if (threads > n) {
        threads = n == 0 ? 1 : n;
    }
    if (threads <= 1) {
        SWARMAVAIL_PROF_SCOPE("parallel.worker_loop");
        std::atomic<std::size_t> completed{0};
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
            publish_queue_depth(counters, n, &completed);
        }
        return;
    }
    Parallel pool{threads};
    pool.for_index(n, fn, counters);
}

}  // namespace swarmavail::sim
