// Execution flight recorder: the last N trace records, kept in a fixed ring
// and dumped only when something goes wrong.
//
// A FlightRecorder is a TraceSink that retains the newest `capacity`
// records (40-byte POD TraceRecords, no allocation after construction)
// instead of persisting the whole stream. Attach one to an engine through
// the ordinary Tracer plumbing and the recorder sees every record the
// engine emits; because Tracer::annotate() flushes buffered records before
// forwarding the annotation, the existing `trace_check_failure` path —
// every engine already routes CheckFailure through it — delivers both the
// final event window and the failure text here, in order. On annotation
// the recorder dumps the window as JSONL (JsonlTraceSink's exact shape, so
// trace_inspect parses it) to the configured stream.
//
// divergence_hunt uses the same ring for the "first fingerprint mismatch"
// case: it runs two configs side by side and dumps both recorders' windows
// when their checkpoint digests first disagree.
//
// Observer contract: recording never draws randomness or mutates simulator
// state. Under the trace-off preset every engine SWARMAVAIL_TRACE call
// site is compiled out, so a recorder attached there sees nothing and the
// engines reference none of this machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace swarmavail::sim {

/// Fixed-size ring of the last N TraceRecords with dump-on-annotate.
class FlightRecorder final : public TraceSink {
 public:
    /// `capacity` records are retained (>= 1). Storage is allocated once
    /// here; write() never allocates.
    explicit FlightRecorder(std::size_t capacity = 256);

    void write(const TraceRecord* records, std::size_t count) override;

    /// Records the annotation and dumps the window to the dump stream (if
    /// set). Reached via trace_check_failure -> Tracer::annotate, which
    /// flushes pending records first, so the window ends at the failure.
    void annotate(double time, std::string_view text) override;

    /// Where annotate() dumps to; null (the default) keeps the window in
    /// memory only (read it back with window()). The stream must outlive
    /// the recorder.
    void set_dump_stream(std::ostream* os) noexcept { dump_os_ = os; }

    /// Writes the retained window as JSONL — one record object per line in
    /// JsonlTraceSink's shape, then one annotation line carrying `reason` —
    /// so read_trace_jsonl / trace_inspect consume dumps directly.
    void dump(std::ostream& os, double time, std::string_view reason) const;

    /// The retained window, oldest record first.
    [[nodiscard]] std::vector<TraceRecord> window() const;

    [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
    /// Records ever written (>= window().size(); the excess fell off).
    [[nodiscard]] std::uint64_t total_records() const noexcept { return total_; }
    /// True once annotate() has dumped at least one window.
    [[nodiscard]] std::uint64_t dumps() const noexcept { return dumps_; }
    /// The annotation texts seen, in order (failure diagnostics).
    [[nodiscard]] const std::vector<std::string>& annotations() const noexcept {
        return annotations_;
    }

 private:
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0;        ///< next write position
    std::uint64_t total_ = 0;     ///< records ever written
    std::uint64_t dumps_ = 0;
    std::ostream* dump_os_ = nullptr;
    std::vector<std::string> annotations_;
};

}  // namespace swarmavail::sim
