// Swarm-level observables derived from simulator output: completion
// curves, blocking statistics, and Figure 5-style timelines.
#pragma once

#include <string>
#include <vector>

#include "swarm/swarm_sim.hpp"

namespace swarmavail::swarm {

/// Cumulative number of completions at each time in `grid`, from a sorted
/// completion-time vector (the Figure 4 curves).
[[nodiscard]] std::vector<std::size_t> completions_over_time(
    const std::vector<double>& completion_times, const std::vector<double>& grid);

/// Builds an evenly spaced time grid over [0, horizon] with `points` >= 2.
[[nodiscard]] std::vector<double> time_grid(double horizon, std::size_t points);

/// Detects "flash departures" (Section 4.3 / Figure 5a): the largest number
/// of completions falling within any window of `window` seconds. Swarms
/// that block on an off publisher show large bursts when it returns.
[[nodiscard]] std::size_t max_completion_burst(const std::vector<double>& completion_times,
                                               double window);

/// Renders a textual Figure 5-style timeline: one row per peer, '-' while
/// downloading, '|' at completion, '?' if never completed. `width` columns
/// span [0, horizon].
[[nodiscard]] std::string render_peer_timeline(const std::vector<PeerRecord>& peers,
                                               double horizon, std::size_t width);

/// Aggregates per-run download times across replications into one sample
/// set (the data behind each Figure 6 box).
[[nodiscard]] SampleSet merge_download_times(const std::vector<SwarmSimResult>& runs);

}  // namespace swarmavail::swarm
