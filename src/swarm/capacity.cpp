#include "swarm/capacity.hpp"

#include "util/error.hpp"

namespace swarmavail::swarm {

HomogeneousCapacity::HomogeneousCapacity(double bits_per_second)
    : rate_(bits_per_second) {
    require(rate_ > 0.0, "HomogeneousCapacity: rate must be > 0");
}

double HomogeneousCapacity::sample(Rng& /*rng*/) const {
    return rate_;
}

double HomogeneousCapacity::mean() const {
    return rate_;
}

BitTyrantCapacity::BitTyrantCapacity()
    // Buckets eyeballed from the BitTyrant capacity CDF and tuned so the
    // median is 50 KBps and the mean ~290 KBps, the statistics Section 4.3.2
    // reports for the distribution it replays.
    : weights_{0.10, 0.20, 0.20, 0.20, 0.15, 0.10, 0.04, 0.01},
      rates_{10.0 * kKBps,  25.0 * kKBps,  50.0 * kKBps,   100.0 * kKBps,
             250.0 * kKBps, 700.0 * kKBps, 1800.0 * kKBps, 8000.0 * kKBps} {}

double BitTyrantCapacity::sample(Rng& rng) const {
    return rates_[sample_discrete(rng, weights_)];
}

double BitTyrantCapacity::mean() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        acc += weights_[i] * rates_[i];
    }
    return acc;
}

double BitTyrantCapacity::median() const {
    double mass = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        mass += weights_[i];
        if (mass >= 0.5) {
            return rates_[i];
        }
    }
    return rates_.back();
}

}  // namespace swarmavail::swarm
