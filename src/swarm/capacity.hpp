// Peer upload-capacity distributions for the swarm simulator.
//
// Section 4 runs experiments with homogeneous capacities (33 or 50 KBps)
// and with the heterogeneous distribution measured by the BitTyrant study
// (Piatek et al., NSDI'07), whose summary statistics the paper quotes:
// mean ~280 KBps, median ~50 KBps. We reproduce the latter with a discrete
// bucket mixture matched to those moments (the raw dataset is not public).
#pragma once

#include "util/random.hpp"

namespace swarmavail::swarm {

/// Bits per second in one kilobyte per second.
inline constexpr double kKBps = 8.0 * 1000.0;

/// Source of per-peer upload capacities (bits/s).
class CapacityDistribution {
 public:
    virtual ~CapacityDistribution() = default;
    /// Draws one peer's upload capacity in bits/s (> 0).
    [[nodiscard]] virtual double sample(Rng& rng) const = 0;
    /// Mean capacity in bits/s.
    [[nodiscard]] virtual double mean() const = 0;
};

/// Every peer uploads at the same rate (Sections 4.2-4.3 defaults).
class HomogeneousCapacity final : public CapacityDistribution {
 public:
    /// `bits_per_second` > 0.
    explicit HomogeneousCapacity(double bits_per_second);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;

 private:
    double rate_;
};

/// BitTyrant-like heavy-tailed capacity mixture (Section 4.3.2): a discrete
/// bucket approximation with median 50 KBps and mean ~290 KBps.
class BitTyrantCapacity final : public CapacityDistribution {
 public:
    BitTyrantCapacity();
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    /// Median of the mixture in bits/s (50 KBps by construction).
    [[nodiscard]] double median() const;

 private:
    std::vector<double> weights_;
    std::vector<double> rates_;
};

}  // namespace swarmavail::swarm
