#include "swarm/piece_set.hpp"

#include "util/error.hpp"

namespace swarmavail::swarm {

PieceSet::PieceSet(std::size_t num_pieces) : num_pieces_(num_pieces) {
    require(num_pieces >= 1, "PieceSet: requires at least one piece");
    if (num_words() > 1) {
        heap_words_.assign(num_words(), 0);
    }
}

PieceSet PieceSet::complete(std::size_t num_pieces) {
    PieceSet set{num_pieces};
    std::uint64_t* w = set.words();
    for (std::size_t wi = 0; wi < set.num_words(); ++wi) {
        w[wi] = ~std::uint64_t{0};
    }
    w[set.num_words() - 1] &= set.tail_mask();
    set.count_ = num_pieces;
    return set;
}

std::size_t PieceSet::recount() const noexcept {
    std::size_t owned = 0;
    const std::uint64_t* w = words();
    for (std::size_t wi = 0; wi < num_words(); ++wi) {
        owned += static_cast<std::size_t>(std::popcount(w[wi]));
    }
    return owned;
}

}  // namespace swarmavail::swarm
