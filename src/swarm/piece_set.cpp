#include "swarm/piece_set.hpp"

#include "util/error.hpp"

namespace swarmavail::swarm {

PieceSet::PieceSet(std::size_t num_pieces) : bits_(num_pieces, false) {
    require(num_pieces >= 1, "PieceSet: requires at least one piece");
}

PieceSet PieceSet::complete(std::size_t num_pieces) {
    PieceSet set{num_pieces};
    set.bits_.assign(num_pieces, true);
    set.count_ = num_pieces;
    return set;
}

bool PieceSet::has(std::size_t piece) const {
    require(piece < bits_.size(), "PieceSet::has: piece index out of range");
    return bits_[piece];
}

std::size_t PieceSet::recount() const noexcept {
    std::size_t owned = 0;
    for (const bool bit : bits_) {
        if (bit) {
            ++owned;
        }
    }
    return owned;
}

void PieceSet::add(std::size_t piece) {
    require(piece < bits_.size(), "PieceSet::add: piece index out of range");
    if (!bits_[piece]) {
        bits_[piece] = true;
        ++count_;
    }
}

}  // namespace swarmavail::swarm
