#include "swarm/piece_set.hpp"

#include "util/error.hpp"

namespace swarmavail::swarm {

PieceSet::PieceSet(std::size_t num_pieces)
    : words_((num_pieces + kWordBits - 1) / kWordBits, 0), num_pieces_(num_pieces) {
    require(num_pieces >= 1, "PieceSet: requires at least one piece");
}

PieceSet PieceSet::complete(std::size_t num_pieces) {
    PieceSet set{num_pieces};
    set.words_.assign(set.words_.size(), ~std::uint64_t{0});
    set.words_.back() &= set.tail_mask();
    set.count_ = num_pieces;
    return set;
}

bool PieceSet::has(std::size_t piece) const {
    require(piece < num_pieces_, "PieceSet::has: piece index out of range");
    return ((words_[piece / kWordBits] >> (piece % kWordBits)) & 1U) != 0;
}

std::size_t PieceSet::recount() const noexcept {
    std::size_t owned = 0;
    for (const std::uint64_t word : words_) {
        owned += static_cast<std::size_t>(std::popcount(word));
    }
    return owned;
}

void PieceSet::add(std::size_t piece) {
    require(piece < num_pieces_, "PieceSet::add: piece index out of range");
    const std::uint64_t bit = std::uint64_t{1} << (piece % kWordBits);
    std::uint64_t& word = words_[piece / kWordBits];
    if ((word & bit) == 0) {
        word |= bit;
        ++count_;
    }
}

}  // namespace swarmavail::swarm
