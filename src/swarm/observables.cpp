#include "swarm/observables.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace swarmavail::swarm {

std::vector<std::size_t> completions_over_time(const std::vector<double>& completion_times,
                                               const std::vector<double>& grid) {
    require(std::is_sorted(completion_times.begin(), completion_times.end()),
            "completions_over_time: completion times must be sorted");
    std::vector<std::size_t> out;
    out.reserve(grid.size());
    for (double t : grid) {
        const auto it =
            std::upper_bound(completion_times.begin(), completion_times.end(), t);
        out.push_back(static_cast<std::size_t>(it - completion_times.begin()));
    }
    return out;
}

std::vector<double> time_grid(double horizon, std::size_t points) {
    require(horizon > 0.0, "time_grid: horizon must be > 0");
    require(points >= 2, "time_grid: requires at least 2 points");
    std::vector<double> grid;
    grid.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        grid.push_back(horizon * static_cast<double>(i) /
                       static_cast<double>(points - 1));
    }
    return grid;
}

std::size_t max_completion_burst(const std::vector<double>& completion_times,
                                 double window) {
    require(window > 0.0, "max_completion_burst: window must be > 0");
    require(std::is_sorted(completion_times.begin(), completion_times.end()),
            "max_completion_burst: completion times must be sorted");
    std::size_t best = 0;
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < completion_times.size(); ++hi) {
        while (completion_times[hi] - completion_times[lo] > window) {
            ++lo;
        }
        best = std::max(best, hi - lo + 1);
    }
    return best;
}

std::string render_peer_timeline(const std::vector<PeerRecord>& peers, double horizon,
                                 std::size_t width) {
    require(horizon > 0.0, "render_peer_timeline: horizon must be > 0");
    require(width >= 10, "render_peer_timeline: width must be >= 10");
    std::string out;
    const double step = horizon / static_cast<double>(width);
    for (const auto& peer : peers) {
        std::string row(width, ' ');
        const auto begin = static_cast<std::size_t>(
            std::clamp(peer.arrival / step, 0.0, static_cast<double>(width - 1)));
        const double end_time = peer.completion >= 0.0 ? peer.completion : horizon;
        const auto end = static_cast<std::size_t>(
            std::clamp(end_time / step, 0.0, static_cast<double>(width - 1)));
        for (std::size_t c = begin; c <= end; ++c) {
            row[c] = '-';
        }
        row[end] = peer.completion >= 0.0 ? '|' : '?';
        out += row;
        out += '\n';
    }
    return out;
}

SampleSet merge_download_times(const std::vector<SwarmSimResult>& runs) {
    SampleSet samples;
    for (const auto& run : runs) {
        for (const auto& peer : run.peers) {
            if (peer.completion >= 0.0) {
                samples.add(peer.completion - peer.arrival);
            }
        }
    }
    return samples;
}

}  // namespace swarmavail::swarm
