// Block-level BitTorrent swarm simulator: the repo's substitute for the
// paper's PlanetLab testbed (Section 4).
//
// Content is divided into pieces; peers fetch pieces from each other and
// from an (intermittently available) publisher over capacity-constrained
// upload slots, using rarest-first piece selection. This reproduces the
// dynamics the paper's experiments measure: swarms starve when the
// publisher leaves and the remaining peers do not jointly cover all pieces
// (blocked leechers, flash departures when the publisher returns), while
// sufficiently bundled swarms become self-sustaining (Figures 4-6).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/parallel.hpp"
#include "swarm/capacity.hpp"
#include "util/stats.hpp"

namespace swarmavail {
class MetricsRegistry;
}  // namespace swarmavail

namespace swarmavail::sim {
class Tracer;
}  // namespace swarmavail::sim

namespace swarmavail::telemetry {
class TelemetrySession;
}  // namespace swarmavail::telemetry

namespace swarmavail::swarm {

/// Publisher (initial seed) behavior.
enum class PublisherBehavior {
    kAlwaysOn,                  ///< never leaves (baseline sanity runs)
    kLeaveAfterFirstCompletion, ///< departs forever once one peer completes (Fig. 4)
    kOnOff,                     ///< alternates exp(on)/exp(off) (Figs. 5-6)
};

/// Configuration of one swarm run.
struct SwarmSimConfig {
    std::size_t bundle_size = 1;        ///< K: number of files in the torrent
    double file_size = 4.0e6 * 8.0;     ///< bits per file (default 4 MB)
    std::size_t pieces_per_file = 8;    ///< piece granularity per file
    /// Per-file peer arrival rate lambda (1/s); the bundle swarm sees
    /// aggregate arrivals at K * lambda (a request for any constituent file
    /// downloads the whole bundle).
    double peer_arrival_rate = 1.0 / 60.0;
    /// Distribution of peer upload capacities (bits/s). Required.
    std::shared_ptr<const CapacityDistribution> peer_capacity;
    /// If non-empty, peers arrive at exactly these instants (sorted,
    /// seconds) instead of the Poisson process -- the Section 4.3.4
    /// trace-driven arrival experiments. Times beyond `horizon` are dropped.
    std::vector<double> arrival_trace;
    double publisher_capacity = 50.0 * kKBps;  ///< bits/s
    /// Super-seeding (mainline's "initial seeding" mode): the publisher
    /// only serves pieces no peer currently holds, pushing fresh pieces
    /// into the swarm and leaving replication of held pieces to the peers.
    bool super_seeding = false;
    /// Reciprocity cap (a tit-for-tat proxy for heterogeneous swarms): a
    /// transfer runs at min(src, dst) capacity / slots instead of the
    /// sender's rate alone -- fast peers do not altruistically saturate
    /// slow ones, mirroring BitTorrent's rate-based unchoking. No effect
    /// when capacities are homogeneous. Publisher uploads are exempt.
    bool reciprocity_cap = false;
    /// Peer visibility limit. 0 = global visibility (every peer can fetch
    /// from every other). > 0 = each arriving peer learns at most this many
    /// neighbors from the tracker and extends its view via PEX (adopting a
    /// neighbor's neighbors when it cannot find a usable source) -- the
    /// discovery mechanics the paper's monitoring agents rely on
    /// (Section 2.2). Transfers only flow along neighbor edges; the
    /// publisher is always reachable.
    std::size_t max_neighbors = 0;
    PublisherBehavior publisher = PublisherBehavior::kOnOff;
    double publisher_on_mean = 300.0;   ///< u: mean on duration (s)
    double publisher_off_mean = 900.0;  ///< 1/r: mean off duration (s)
    /// Concurrent piece uploads per node; each slot serves at
    /// capacity / max_upload_slots.
    std::size_t max_upload_slots = 4;
    std::size_t max_download_slots = 4; ///< concurrent piece downloads per peer
    /// Relative transfer-duration jitter: each piece transfer takes
    /// duration * U(1 - jitter, 1 + jitter). Models wide-area rate
    /// variability (cross-traffic, TCP dynamics) and prevents the unphysical
    /// lock-step cohort departures a perfectly deterministic fabric produces.
    double transfer_jitter = 0.15;
    bool peers_linger = false;          ///< stay as seed after completing
    double linger_mean = 0.0;           ///< mean lingering time if enabled (s)
    double horizon = 1200.0;            ///< arrivals stop at this time (s)
    /// If true, the publisher process keeps cycling after `horizon` and the
    /// simulation runs on until every peer completes (or the hard deadline
    /// horizon * drain_deadline_factor). This removes the censoring bias
    /// that would otherwise exclude blocked peers' long download times from
    /// the Figure 6 statistics.
    bool drain_after_horizon = false;
    double drain_deadline_factor = 10.0;
    std::uint64_t seed = 1;
    /// Invariant-audit mode: after every event, re-verify the swarm's
    /// bookkeeping -- piece bitmaps vs cached counts, per-piece holder
    /// counters vs recomputed holders, upload/download slot budgets,
    /// per-link capacity allocation, coverage and availability flags, and
    /// monotone event time in the queue. Throws swarmavail::CheckFailure on
    /// corruption. O(peers x pieces) per event; meant for tests and
    /// debugging runs, off by default.
    bool debug_audit = false;
    /// Optional single-owner metrics registry (see util/metrics.hpp): the
    /// run records its counters/gauges/histograms under "swarm.*" names.
    /// run_swarm_replications gives each replication a private registry and
    /// merges them into this one in seed order, so merged metrics stay
    /// bit-identical at any thread count. Null: no metrics overhead.
    MetricsRegistry* metrics = nullptr;
    /// Optional structured-event tracer (see sim/trace.hpp); single-run
    /// only — run_swarm_replications detaches it from its replications
    /// (a shared tracer across parallel runs would interleave events).
    sim::Tracer* tracer = nullptr;
    /// Optional live-telemetry session (see util/telemetry.hpp). Pure
    /// observer: the run publishes its dispatched-event count and simulated
    /// seconds when it finishes (relaxed atomics, safe to share across
    /// parallel replications — run_swarm_replications keeps it attached and
    /// adds replication progress). Never changes any result.
    telemetry::TelemetrySession* telemetry = nullptr;
    /// Determinism fingerprint (see sim/fingerprint.hpp): fold every event
    /// the private queue dispatches — (when, seq, kind) — plus the final
    /// RNG draw count into the result's fingerprint. Pure observer (cannot
    /// change any result bit); ignored when the build defines
    /// SWARMAVAIL_FINGERPRINT_DISABLED.
    bool fingerprint = true;
};

/// Arrival/departure record of one peer (one line segment of Figure 5).
struct PeerRecord {
    double arrival = 0.0;
    /// Completion time, or a negative value if still incomplete at the horizon.
    double completion = -1.0;
    double capacity = 0.0;  ///< the peer's upload capacity (bits/s)
};

/// A maximal interval during which the full content was covered by the
/// union of online bitmaps (the busy periods of Figure 2).
struct AvailabilityInterval {
    double begin = 0.0;
    double end = 0.0;
};

/// Outcome of one swarm run.
struct SwarmSimResult {
    std::vector<PeerRecord> peers;            ///< every peer that arrived
    std::vector<double> completion_times;     ///< sorted completion instants (Fig. 4)
    StreamingStats download_times;            ///< completion - arrival (s)
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t stuck_at_horizon = 0;       ///< leechers still incomplete at the end
    std::vector<AvailabilityInterval> available_intervals;  ///< busy periods
    double available_fraction = 0.0;          ///< time-average content availability
    /// Time of the last completion (0 if none): how long the swarm kept
    /// serving peers, the Figure 4 "self-sustaining" signal.
    double last_completion = 0.0;
    /// Determinism fingerprint of the run's dispatch path (0 when
    /// fingerprinting is off or compiled out): the digest of every event the
    /// queue dispatched plus the RNG draw count, and the events folded into
    /// it. Two runs with equal configs must match here; a mismatch means the
    /// executions diverged even if the statistics happen to agree.
    std::uint64_t fingerprint = 0;
    std::uint64_t fingerprint_events = 0;
};

/// Runs one block-level swarm simulation.
[[nodiscard]] SwarmSimResult run_swarm_sim(const SwarmSimConfig& config);

/// Runs `runs` independent replications (seeds seed, seed+1, ...) and
/// merges the per-peer download-time statistics; convenience for the
/// Figure 5/6 experiments which average 10 runs.
///
/// Replications run in parallel according to `policy` (default: all
/// hardware threads, overridable via SWARMAVAIL_THREADS). Each replication
/// owns its simulator, RNG, and result slot, and results are returned in
/// seed order, so the output is bit-identical for every thread count.
[[nodiscard]] std::vector<SwarmSimResult> run_swarm_replications(
    const SwarmSimConfig& config, std::size_t runs,
    const sim::ParallelPolicy& policy = {});

}  // namespace swarmavail::swarm
