#include "swarm/audit.hpp"

#include <string>

#include "swarm/piece_set.hpp"
#include "util/check.hpp"

namespace swarmavail::swarm::audit {

void check_piece_accounting(std::size_t bitmap_count, std::size_t recorded_count) {
    SWARMAVAIL_INVARIANT(bitmap_count == recorded_count,
                         "piece accounting mismatch: bitmap holds " +
                             std::to_string(bitmap_count) + " pieces but counter says " +
                             std::to_string(recorded_count));
}

void check_piece_accounting(const PieceSet& have) {
    check_piece_accounting(have.recount(), have.count());
}

void check_holder_consistency(std::size_t piece, std::uint64_t recorded,
                              std::uint64_t recomputed) {
    SWARMAVAIL_INVARIANT(recorded == recomputed,
                         "holder count for piece " + std::to_string(piece) +
                             " is " + std::to_string(recorded) + " but " +
                             std::to_string(recomputed) + " online peers hold it");
}

void check_slot_budget(const char* what, std::size_t used, std::size_t limit) {
    SWARMAVAIL_INVARIANT(used <= limit, std::string(what) + " overcommitted: " +
                                            std::to_string(used) + " slots in use, " +
                                            std::to_string(limit) + " allowed");
}

void check_capacity_budget(double allocated_bps, double budget_bps) {
    // Tolerate float accumulation error; a real overcommit exceeds by a
    // whole per-slot rate, orders of magnitude above this slack.
    constexpr double kRelativeSlack = 1.0e-9;
    SWARMAVAIL_INVARIANT(allocated_bps <= budget_bps * (1.0 + kRelativeSlack),
                         "capacity overcommitted: " + std::to_string(allocated_bps) +
                             " bits/s allocated from a " + std::to_string(budget_bps) +
                             " bits/s link");
}

}  // namespace swarmavail::swarm::audit
