// Piece bitmap of a BitTorrent peer: which pieces of the content a peer
// holds. Mirrors the protocol bitfield our measurement agents record to
// distinguish seeds from leechers (Section 2.2).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace swarmavail::swarm {

/// Fixed-size piece bitmap with O(1) count queries.
///
/// Stored as packed 64-bit words so the rarest-first scans of the swarm
/// simulator can enumerate held/missing pieces a word at a time, skipping
/// fully-held words outright instead of probing every piece.
class PieceSet {
 public:
    /// Creates an all-empty set over `num_pieces` pieces (>= 1).
    explicit PieceSet(std::size_t num_pieces);

    /// Creates a complete set (a seed's bitmap).
    [[nodiscard]] static PieceSet complete(std::size_t num_pieces);

    [[nodiscard]] bool has(std::size_t piece) const;
    /// Marks `piece` owned. Adding an owned piece is a no-op.
    void add(std::size_t piece);

    [[nodiscard]] std::size_t size() const noexcept { return num_pieces_; }
    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool is_complete() const noexcept { return count_ == num_pieces_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Recomputes the owned-piece count from the bitmap in O(pieces / 64).
    /// The invariant-audit mode compares this against count() to catch a
    /// bitmap and counter that drifted apart.
    [[nodiscard]] std::size_t recount() const noexcept;

    /// Fraction of pieces owned, in [0, 1].
    [[nodiscard]] double fraction() const noexcept {
        return num_pieces_ == 0
                   ? 0.0
                   : static_cast<double>(count_) / static_cast<double>(num_pieces_);
    }

    /// Invokes fn(piece) for every owned piece in ascending index order.
    /// fn must not mutate this set.
    template <typename Fn>
    void for_each_held(Fn&& fn) const {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t word = words_[wi];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                fn(wi * kWordBits + bit);
                word &= word - 1;
            }
        }
    }

    /// Invokes fn(piece) for every missing piece in ascending index order
    /// (the swarm simulator's rarest-first candidate enumeration: fully
    /// held words cost one compare). fn must not mutate this set.
    template <typename Fn>
    void for_each_missing(Fn&& fn) const {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t word = ~words_[wi];
            if (wi + 1 == words_.size()) {
                word &= tail_mask();
            }
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                fn(wi * kWordBits + bit);
                word &= word - 1;
            }
        }
    }

 private:
    static constexpr std::size_t kWordBits = 64;

    /// Mask of the valid bits in the last word (all-ones when the piece
    /// count is a multiple of 64).
    [[nodiscard]] std::uint64_t tail_mask() const noexcept {
        const std::size_t tail = num_pieces_ % kWordBits;
        return tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
    }

    std::vector<std::uint64_t> words_;
    std::size_t num_pieces_ = 0;
    std::size_t count_ = 0;
};

}  // namespace swarmavail::swarm
