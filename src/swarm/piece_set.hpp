// Piece bitmap of a BitTorrent peer: which pieces of the content a peer
// holds. Mirrors the protocol bitfield our measurement agents record to
// distinguish seeds from leechers (Section 2.2).
#pragma once

#include <cstddef>
#include <vector>

namespace swarmavail::swarm {

/// Fixed-size piece bitmap with O(1) count queries.
class PieceSet {
 public:
    /// Creates an all-empty set over `num_pieces` pieces (>= 1).
    explicit PieceSet(std::size_t num_pieces);

    /// Creates a complete set (a seed's bitmap).
    [[nodiscard]] static PieceSet complete(std::size_t num_pieces);

    [[nodiscard]] bool has(std::size_t piece) const;
    /// Marks `piece` owned. Adding an owned piece is a no-op.
    void add(std::size_t piece);

    [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool is_complete() const noexcept { return count_ == bits_.size(); }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Recomputes the owned-piece count from the bitmap in O(pieces).
    /// The invariant-audit mode compares this against count() to catch a
    /// bitmap and counter that drifted apart.
    [[nodiscard]] std::size_t recount() const noexcept;

    /// Fraction of pieces owned, in [0, 1].
    [[nodiscard]] double fraction() const noexcept {
        return bits_.empty() ? 0.0
                             : static_cast<double>(count_) / static_cast<double>(bits_.size());
    }

 private:
    std::vector<bool> bits_;
    std::size_t count_ = 0;
};

}  // namespace swarmavail::swarm
