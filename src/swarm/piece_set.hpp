// Piece bitmap of a BitTorrent peer: which pieces of the content a peer
// holds. Mirrors the protocol bitfield our measurement agents record to
// distinguish seeds from leechers (Section 2.2).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace swarmavail::swarm {

/// Fixed-size piece bitmap with O(1) count queries.
///
/// Stored as packed 64-bit words so the rarest-first scans of the swarm
/// simulator can enumerate held/missing pieces a word at a time, skipping
/// fully-held words outright instead of probing every piece. Bitmaps of up
/// to 64 pieces -- the common simulator shape -- live in a single inline
/// word, so a peer's have/in-flight scans touch no storage beyond the
/// object itself; larger bitmaps spill to the heap.
class PieceSet {
 public:
    /// Creates an all-empty set over `num_pieces` pieces (>= 1).
    explicit PieceSet(std::size_t num_pieces);

    /// Creates a complete set (a seed's bitmap).
    [[nodiscard]] static PieceSet complete(std::size_t num_pieces);

    // has/add/remove live in the header: they sit inside the simulator's
    // rarest-first scan, where the call overhead would rival the bit test.
    [[nodiscard]] bool has(std::size_t piece) const {
        require(piece < num_pieces_, "PieceSet::has: piece index out of range");
        return ((words()[piece / kWordBits] >> (piece % kWordBits)) & 1U) != 0;
    }

    /// Marks `piece` owned. Adding an owned piece is a no-op.
    void add(std::size_t piece) {
        require(piece < num_pieces_, "PieceSet::add: piece index out of range");
        const std::uint64_t bit = std::uint64_t{1} << (piece % kWordBits);
        std::uint64_t& word = words()[piece / kWordBits];
        if ((word & bit) == 0) {
            word |= bit;
            ++count_;
        }
    }

    /// Clears `piece`. Removing an unowned piece is a no-op. (Peers never
    /// lose content pieces; this serves bitmap-backed scratch sets such as
    /// the in-flight fetch set.)
    void remove(std::size_t piece) {
        require(piece < num_pieces_, "PieceSet::remove: piece index out of range");
        const std::uint64_t bit = std::uint64_t{1} << (piece % kWordBits);
        std::uint64_t& word = words()[piece / kWordBits];
        if ((word & bit) != 0) {
            word &= ~bit;
            --count_;
        }
    }

    [[nodiscard]] std::size_t size() const noexcept { return num_pieces_; }
    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool is_complete() const noexcept { return count_ == num_pieces_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Recomputes the owned-piece count from the bitmap in O(pieces / 64).
    /// The invariant-audit mode compares this against count() to catch a
    /// bitmap and counter that drifted apart.
    [[nodiscard]] std::size_t recount() const noexcept;

    /// Fraction of pieces owned, in [0, 1].
    [[nodiscard]] double fraction() const noexcept {
        return num_pieces_ == 0
                   ? 0.0
                   : static_cast<double>(count_) / static_cast<double>(num_pieces_);
    }

    /// Invokes fn(piece) for every owned piece in ascending index order.
    /// fn must not mutate this set.
    template <typename Fn>
    void for_each_held(Fn&& fn) const {
        const std::uint64_t* w = words();
        for (std::size_t wi = 0; wi < num_words(); ++wi) {
            std::uint64_t word = w[wi];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                fn(wi * kWordBits + bit);
                word &= word - 1;
            }
        }
    }

    /// Invokes fn(piece) for every missing piece in ascending index order
    /// (the swarm simulator's rarest-first candidate enumeration: fully
    /// held words cost one compare). fn must not mutate this set.
    template <typename Fn>
    void for_each_missing(Fn&& fn) const {
        const std::uint64_t* w = words();
        for (std::size_t wi = 0; wi < num_words(); ++wi) {
            std::uint64_t word = ~w[wi];
            if (wi + 1 == num_words()) {
                word &= tail_mask();
            }
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                fn(wi * kWordBits + bit);
                word &= word - 1;
            }
        }
    }

    /// Like for_each_missing, but also skips pieces present in `excluded`
    /// (same size required): one OR per word replaces a per-piece probe of
    /// the excluded set. Visits exactly the pieces for_each_missing would
    /// visit minus those in `excluded`, in the same ascending order.
    template <typename Fn>
    void for_each_missing_excluding(const PieceSet& excluded, Fn&& fn) const {
        require(excluded.num_pieces_ == num_pieces_,
                "PieceSet::for_each_missing_excluding: size mismatch");
        const std::uint64_t* w = words();
        const std::uint64_t* x = excluded.words();
        for (std::size_t wi = 0; wi < num_words(); ++wi) {
            std::uint64_t word = ~(w[wi] | x[wi]);
            if (wi + 1 == num_words()) {
                word &= tail_mask();
            }
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                fn(wi * kWordBits + bit);
                word &= word - 1;
            }
        }
    }

 private:
    static constexpr std::size_t kWordBits = 64;

    /// Mask of the valid bits in the last word (all-ones when the piece
    /// count is a multiple of 64).
    [[nodiscard]] std::uint64_t tail_mask() const noexcept {
        const std::size_t tail = num_pieces_ % kWordBits;
        return tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
    }

    [[nodiscard]] std::size_t num_words() const noexcept {
        return (num_pieces_ + kWordBits - 1) / kWordBits;
    }

    // Storage accessors: one inline word when the bitmap fits (heap_words_
    // stays empty), a heap vector otherwise. The discriminator is the
    // vector itself, so the object carries no extra flag.
    [[nodiscard]] std::uint64_t* words() noexcept {
        return heap_words_.empty() ? &inline_word_ : heap_words_.data();
    }
    [[nodiscard]] const std::uint64_t* words() const noexcept {
        return heap_words_.empty() ? &inline_word_ : heap_words_.data();
    }

    std::uint64_t inline_word_ = 0;
    std::vector<std::uint64_t> heap_words_;  ///< used only when > 64 pieces
    std::size_t num_pieces_ = 0;
    std::size_t count_ = 0;
};

}  // namespace swarmavail::swarm
