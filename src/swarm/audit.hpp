// Runtime invariant-audit checks for the block-level swarm simulator.
//
// Companions to sim/audit.hpp for the swarm layer's piece and capacity
// bookkeeping. Each function throws swarmavail::CheckFailure on violation;
// SwarmSim calls them at every event when `debug_audit` is set, and the
// negative tests call them with corrupted state to prove detection.
#pragma once

#include <cstddef>
#include <cstdint>

namespace swarmavail::swarm {

class PieceSet;

namespace audit {

/// A peer's cached piece count must equal the popcount of its bitmap.
/// Throws CheckFailure unless `bitmap_count == recorded_count`.
void check_piece_accounting(std::size_t bitmap_count, std::size_t recorded_count);

/// Convenience overload: recounts `have`'s bitmap and compares it with the
/// cached count() (catches a bitmap mutated behind the counter's back).
void check_piece_accounting(const PieceSet& have);

/// The per-piece holder counter must match the number of online peers whose
/// bitmap contains the piece. Throws CheckFailure on mismatch.
void check_holder_consistency(std::size_t piece, std::uint64_t recorded,
                              std::uint64_t recomputed);

/// Slot allocation (upload or download) must never exceed the configured
/// budget. Throws CheckFailure if `used > limit`.
void check_slot_budget(const char* what, std::size_t used, std::size_t limit);

/// Aggregate bandwidth handed out by one source must fit inside its link
/// capacity (small relative tolerance for floating-point accumulation).
/// Throws CheckFailure if `allocated_bps` exceeds `budget_bps`.
void check_capacity_budget(double allocated_bps, double budget_bps);

}  // namespace audit
}  // namespace swarmavail::swarm
