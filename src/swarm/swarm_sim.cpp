#include "swarm/swarm_sim.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "sim/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/fingerprint.hpp"
#include "sim/processes.hpp"
#include "sim/trace.hpp"
#include "swarm/audit.hpp"
#include "swarm/piece_set.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/random.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::swarm {
namespace {

using sim::TraceKind;

/// Shared bucket shape for the "swarm.*" duration histograms: geometric
/// bins covering [0.25s, 2^18 s) — from single-piece transfers to the
/// longest blocked-peer download a drain run can produce.
constexpr double kSwarmHistLo = 0.25;
constexpr double kSwarmHistHi = 262144.0;
constexpr std::size_t kSwarmHistBins = 20;

using sim::EventId;
using sim::EventQueue;
using sim::SimTime;

using PeerId = std::uint64_t;
using TransferId = std::uint64_t;

/// Sentinel id for the publisher as a transfer source.
constexpr PeerId kPublisher = 0;

struct Peer {
    PieceSet have;
    PieceSet inflight;      ///< pieces being fetched (bitmap: O(1) probes on
                            ///< the rarest-first scan, no hashing)
    double capacity = 0.0;  ///< upload capacity, bits/s
    std::size_t up_used = 0;
    SimTime arrival = 0.0;
    std::size_t record_index = 0;  ///< this peer's row in result_.peers
    bool seed_only = false;  ///< completed and lingering: uploads, never downloads
    std::unordered_set<PeerId> neighbors{};       ///< visible peers (PEX/tracker)
    std::vector<TransferId> up_transfers{};       ///< transfers it serves
    std::vector<TransferId> down_transfers{};     ///< transfers it receives
};
// Peer::down_used, Peer::dormant_version and the free-uploader flag live
// in a dense per-id side array on SwarmSim instead (hot_): the pump loop
// reads the first two for every leecher on every pass and most visits end
// right there (slots full, or dormant), and source selection probes the
// flag for every holder of the chosen piece. Packing these fields in one
// flat record spares the pointer-chase into the heap-allocated Peer for
// probes that never needed the rest of it.

/// Drops one occurrence of `value` (order-insensitive swap-erase: every
/// consumer of these lists snapshots and sorts before acting on them).
void erase_value(std::vector<TransferId>& values, TransferId value) {
    const auto it = std::find(values.begin(), values.end(), value);
    if (it != values.end()) {
        *it = values.back();
        values.pop_back();
    }
}

struct Transfer {
    TransferId id = 0;
    PeerId src = 0;
    PeerId dst = 0;
    std::size_t piece = 0;
    EventId event = 0;
};

class SwarmSim {
 public:
    explicit SwarmSim(const SwarmSimConfig& config) : config_(config), rng_(config.seed) {
        require(config_.bundle_size >= 1, "SwarmSim: bundle_size must be >= 1");
        require(config_.file_size > 0.0, "SwarmSim: file_size must be > 0");
        require(config_.pieces_per_file >= 1, "SwarmSim: pieces_per_file must be >= 1");
        require(config_.peer_arrival_rate > 0.0, "SwarmSim: peer arrival rate must be > 0");
        require(config_.peer_capacity != nullptr, "SwarmSim: peer_capacity required");
        require(config_.publisher_capacity > 0.0, "SwarmSim: publisher capacity > 0");
        require(config_.max_upload_slots >= 1, "SwarmSim: max_upload_slots >= 1");
        require(config_.max_download_slots >= 1, "SwarmSim: max_download_slots >= 1");
        require(config_.horizon > 0.0, "SwarmSim: horizon must be > 0");
        require(config_.transfer_jitter >= 0.0 && config_.transfer_jitter < 1.0,
                "SwarmSim: transfer_jitter must lie in [0, 1)");
        if (config_.publisher == PublisherBehavior::kOnOff) {
            require(config_.publisher_on_mean > 0.0 && config_.publisher_off_mean > 0.0,
                    "SwarmSim: on/off publisher requires positive mean durations");
        }
        pieces_total_ = config_.bundle_size * config_.pieces_per_file;
        piece_bits_ = config_.file_size / static_cast<double>(config_.pieces_per_file);
        holders_.assign(pieces_total_, 0);
        holder_list_.assign(pieces_total_, {});
        offered_count_.assign(pieces_total_, 0);
        queue_.set_audit(config_.debug_audit);
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        if (config_.fingerprint) {
            fingerprint_state_ = sim::Fingerprint{config_.seed};
            fingerprint_ = &fingerprint_state_;
            queue_.set_fingerprint(fingerprint_);
        }
#endif
        if (config_.metrics != nullptr) {
            bind_metrics(*config_.metrics);
        }
    }

    SwarmSimResult run() {
        // The bundle swarm aggregates the per-file demand: any peer wanting
        // one constituent downloads the whole bundle (Section 4.1).
        const double aggregate_rate =
            config_.peer_arrival_rate * static_cast<double>(config_.bundle_size);
        // Size the peer/transfer containers for the expected population up
        // front instead of growing them mid-run (capped so a pathological
        // config cannot demand an absurd reserve).
        const auto expected_arrivals = std::min<std::size_t>(
            static_cast<std::size_t>(aggregate_rate * config_.horizon) +
                config_.arrival_trace.size() + 16,
            std::size_t{1} << 20U);
        result_.peers.reserve(expected_arrivals);
        result_.completion_times.reserve(expected_arrivals);
        leechers_.reserve(expected_arrivals);
        pump_order_.reserve(expected_arrivals);
        peer_slots_.reserve(expected_arrivals);
        hot_.reserve(expected_arrivals);
        sim::PoissonProcess arrivals{queue_, rng_, aggregate_rate,
                                     [this] { on_peer_arrival(); }};
        std::vector<double> trimmed_trace;
        for (double t : config_.arrival_trace) {
            if (t <= config_.horizon) {
                trimmed_trace.push_back(t);
            }
        }
        sim::TraceArrivalProcess trace_arrivals{queue_, std::move(trimmed_trace),
                                                [this] { on_peer_arrival(); }};
        if (config_.arrival_trace.empty()) {
            arrivals.start(config_.horizon);
        } else {
            trace_arrivals.start();
        }

        const double hard_deadline =
            config_.drain_after_horizon ? config_.horizon * config_.drain_deadline_factor
                                        : config_.horizon;
        sim::OnOffProcess on_off{queue_,
                                 rng_,
                                 config_.publisher_on_mean,
                                 config_.publisher_off_mean,
                                 [this] { set_publisher(true); },
                                 [this] { set_publisher(false); }};
        if (config_.publisher == PublisherBehavior::kOnOff) {
            on_off.start(hard_deadline);
        } else {
            set_publisher(true);  // kAlwaysOn / kLeaveAfterFirstCompletion start on
        }

        double end_time = config_.horizon;
        try {
            if (config_.drain_after_horizon) {
                // Keep running until every outstanding peer finishes (blocked
                // peers keep waiting for the publisher) or the hard deadline:
                // censoring blocked peers at the horizon would bias the
                // download-time statistics of barely-available swarms downward.
                for (;;) {
                    const sim::SimTime next = queue_.next_time();
                    if (next < 0.0 || next > hard_deadline) {
                        break;
                    }
                    if (next > config_.horizon && leechers_.empty()) {
                        break;  // arrivals over and nobody left downloading
                    }
                    queue_.run_next();
                }
                end_time = std::clamp(queue_.now(), config_.horizon, hard_deadline);
            } else {
                queue_.run_until(config_.horizon);
            }
        } catch (const CheckFailure& failure) {
            // Route audit-mode diagnostics through the structured sink with
            // the sim-time attached before the failure propagates.
            sim::trace_check_failure(config_.tracer, queue_.now(), failure);
            throw;
        }

        close_availability_interval(end_time);
        if (config_.tracer != nullptr) {
            config_.tracer->flush();
        }
        SWARMAVAIL_TELEMETRY(config_.telemetry,
                             counters().events_dispatched.fetch_add(
                                 queue_.dispatched(), std::memory_order_relaxed));
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
        if (config_.telemetry != nullptr) {
            telemetry::atomic_add(config_.telemetry->counters().sim_time_advanced,
                                  end_time);
        }
#endif
        if (config_.metrics != nullptr) {
            record_calendar_metrics(*config_.metrics, queue_.calendar_stats());
        }
        SwarmSimResult out = std::move(result_);
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        if (fingerprint_ != nullptr) {
            // Fold the RNG draw count so divergences that consume randomness
            // without producing a visible event still move the digest.
            fingerprint_->fold(rng_.draws());
            out.fingerprint = fingerprint_->digest();
            out.fingerprint_events = fingerprint_->events();
        }
#endif
        out.stuck_at_horizon = 0;
        for (const auto& slot : peer_slots_) {
            if (slot != nullptr && !slot->seed_only) {
                ++out.stuck_at_horizon;
            }
        }
        double covered_time = 0.0;
        for (const auto& interval : out.available_intervals) {
            covered_time += interval.end - interval.begin;
        }
        out.available_fraction = covered_time / end_time;
        std::sort(out.completion_times.begin(), out.completion_times.end());
        return out;
    }

 private:
    // ---- observability ---------------------------------------------------

    /// Resolves every metric reference once, so event handlers only touch
    /// cached pointers (the registry lookup never runs per event).
    void bind_metrics(MetricsRegistry& m) {
        m_arrivals_ = &m.counter("swarm.arrivals");
        m_completions_ = &m.counter("swarm.completions");
        m_transfers_started_ = &m.counter("swarm.transfers_started");
        m_transfers_completed_ = &m.counter("swarm.transfers_completed");
        m_transfers_cancelled_ = &m.counter("swarm.transfers_cancelled");
        m_publisher_up_ = &m.counter("swarm.publisher_up");
        m_publisher_down_ = &m.counter("swarm.publisher_down");
        const auto hist = [&m](std::string_view name) {
            return &m.histogram(name, kSwarmHistLo, kSwarmHistHi, kSwarmHistBins,
                                HistogramScale::kLog2);
        };
        m_download_hist_ = hist("swarm.download_time_s");
        m_transfer_hist_ = hist("swarm.transfer_duration_s");
        m_avail_interval_hist_ = hist("swarm.availability_interval_s");
        m_pub_up_interval_ = hist("swarm.publisher_up_interval_s");
        m_pub_down_interval_ = hist("swarm.publisher_down_interval_s");
        m_leechers_gauge_ = &m.gauge("swarm.leechers");
        m_coverage_gauge_ = &m.gauge("swarm.coverage_fraction");
        m_queue_depth_ = &m.gauge("swarm.queue_depth");
    }

    /// Publishes the calendar/ladder regime counters once at end of run.
    /// Counters merge by sum across replications; the occupancy gauge keeps
    /// min/mean/max, so a pathological bucket blow-up in any replication is
    /// visible in the merged registry.
    static void record_calendar_metrics(MetricsRegistry& m,
                                        const sim::CalendarDebugStats& cal) {
        m.counter("calendar.rewindows").add(cal.rewindows);
        m.counter("calendar.small_rewindows").add(cal.small_rewindows);
        m.counter("calendar.ladder_spills").add(cal.ladder_spills);
        m.counter("calendar.staged_merges").add(cal.staged_merges);
        m.counter("calendar.insertion_merges").add(cal.insertion_merges);
        m.gauge("calendar.max_bucket_occupancy")
            .set(static_cast<double>(cal.max_bucket_occupancy));
    }

    /// Samples the population/coverage/queue-depth gauges; called at peer
    /// arrivals and transfer completions so the gauge statistics form an
    /// event-sampled series.
    void sample_gauges() {
        if (m_leechers_gauge_ != nullptr) {
            m_leechers_gauge_->set(static_cast<double>(leechers_.size()));
            m_coverage_gauge_->set(static_cast<double>(covered_) /
                                   static_cast<double>(pieces_total_));
            m_queue_depth_->set(static_cast<double>(queue_.size()));
        }
    }

    // ---- peer store -------------------------------------------------------

    /// Resolves a peer id to its record, or nullptr if it departed (or the
    /// id was never handed out). O(1) indexing into the dense slot store.
    [[nodiscard]] Peer* find_peer(PeerId id) noexcept {
        return id < peer_slots_.size() ? peer_slots_[id].get() : nullptr;
    }
    [[nodiscard]] const Peer* find_peer(PeerId id) const noexcept {
        return id < peer_slots_.size() ? peer_slots_[id].get() : nullptr;
    }

    /// Resolves a peer id known to be live (leecher lists, holder lists and
    /// transfer endpoints only ever reference live peers).
    [[nodiscard]] Peer& peer_at(PeerId id) { return *peer_slots_[id]; }

    // ---- coverage bookkeeping -------------------------------------------

    [[nodiscard]] bool piece_covered(std::size_t p) const noexcept {
        return holders_[p] > 0 || publisher_on_;
    }

    void inc_holder(std::size_t p) {
        if (holders_[p] == 0 && !publisher_on_) {
            ++covered_;
        }
        ++holders_[p];
    }

    void dec_holder(std::size_t p) {
        ensure(holders_[p] > 0, "SwarmSim: holder count underflow");
        --holders_[p];
        if (holders_[p] == 0 && !publisher_on_) {
            --covered_;
        }
    }

    void refresh_coverage_after_publisher_toggle() {
        covered_ = 0;
        for (std::size_t p = 0; p < pieces_total_; ++p) {
            if (piece_covered(p)) {
                ++covered_;
            }
        }
    }

    void update_availability() {
        const bool now_available = covered_ == pieces_total_;
        if (now_available == available_) {
            return;
        }
        if (now_available) {
            available_ = true;
            interval_begin_ = queue_.now();
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kAvailabilityBegin, queue_.now());
        } else {
            // Close the interval before flipping the flag: the close helper
            // only records while available_ is still true.
            close_availability_interval(queue_.now());
            available_ = false;
        }
    }

    void close_availability_interval(SimTime end) {
        if (available_ && end > interval_begin_) {
            result_.available_intervals.push_back({interval_begin_, end});
            if (m_avail_interval_hist_ != nullptr) {
                m_avail_interval_hist_->add(end - interval_begin_);
            }
            // `a` carries the interval's begin time, so the intervals of
            // result_.available_intervals reconstruct exactly from the
            // kAvailabilityEnd records alone.
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kAvailabilityEnd, end, 0,
                             interval_begin_);
            interval_begin_ = end;
        }
    }

    // ---- invariant audit -------------------------------------------------

    /// Full-state audit, run after every event handler when
    /// config_.debug_audit is set. Recomputes the piece/holder/offer
    /// bookkeeping from the ground truth (the peers' bitmaps) and verifies
    /// the cached indices, slot budgets, link-capacity allocations, and the
    /// coverage/availability flags against it.
    void audit_state() const {
        if (!config_.debug_audit) {
            return;
        }
        const double per_slot_divisor = static_cast<double>(config_.max_upload_slots);
        SWARMAVAIL_INVARIANT(result_.arrivals == next_peer_id_ - 1,
                             "SwarmSim: arrival counter diverged from handed-out ids");
        std::size_t lingering_seeds = 0;
        std::size_t live_peers = 0;
        std::size_t free_uploaders = 0;
        std::vector<std::uint64_t> recomputed_holders(pieces_total_, 0);
        std::vector<std::uint64_t> recomputed_offers(pieces_total_, 0);
        for (PeerId id = 0; id < peer_slots_.size(); ++id) {
            if (peer_slots_[id] == nullptr) {
                continue;
            }
            const Peer& peer = *peer_slots_[id];
            ++live_peers;
            if (peer.seed_only) {
                ++lingering_seeds;
            }
            audit::check_piece_accounting(peer.have);
            audit::check_slot_budget("peer upload slots", peer.up_used,
                                     config_.max_upload_slots);
            audit::check_slot_budget("peer download slots", hot_[id].down_used,
                                     config_.max_download_slots);
            SWARMAVAIL_INVARIANT(peer.up_used == peer.up_transfers.size(),
                                 "SwarmSim: upload slot counter diverged from the "
                                 "transfer set");
            SWARMAVAIL_INVARIANT(hot_[id].down_used == peer.down_transfers.size(),
                                 "SwarmSim: download slot counter diverged from the "
                                 "transfer set");
            SWARMAVAIL_INVARIANT(peer.inflight.count() == hot_[id].down_used,
                                 "SwarmSim: in-flight piece set diverged from the "
                                 "download slot counter");
            audit::check_capacity_budget(
                static_cast<double>(peer.up_used) * (peer.capacity / per_slot_divisor),
                peer.capacity);
            const bool listed_free = hot_[id].free_uploader != 0;
            if (listed_free) {
                ++free_uploaders;
            }
            SWARMAVAIL_INVARIANT(listed_free ==
                                     (peer.up_used < config_.max_upload_slots),
                                 "SwarmSim: free-uploader index out of sync with slot "
                                 "usage");
            for (std::size_t p = 0; p < pieces_total_; ++p) {
                if (peer.have.has(p)) {
                    ++recomputed_holders[p];
                    if (listed_free) {
                        ++recomputed_offers[p];
                    }
                }
            }
        }
        SWARMAVAIL_INVARIANT(live_peers == live_peers_,
                             "SwarmSim: live-peer counter diverged from the slot "
                             "store");
        SWARMAVAIL_INVARIANT(free_uploaders == free_uploader_count_,
                             "SwarmSim: free-uploader counter diverged from the "
                             "per-peer flags");
        SWARMAVAIL_INVARIANT(leechers_.size() + lingering_seeds == live_peers,
                             "SwarmSim: leecher list and lingering seeds do not "
                             "partition the peer set");
        audit::check_slot_budget("publisher upload slots", publisher_up_used_,
                                 config_.max_upload_slots);
        SWARMAVAIL_INVARIANT(publisher_up_used_ == publisher_up_transfers_.size(),
                             "SwarmSim: publisher slot counter diverged from its "
                             "transfer set");
        audit::check_capacity_budget(static_cast<double>(publisher_up_used_) *
                                         (config_.publisher_capacity / per_slot_divisor),
                                     config_.publisher_capacity);
        std::size_t recomputed_covered = 0;
        for (std::size_t p = 0; p < pieces_total_; ++p) {
            audit::check_holder_consistency(p, holders_[p], recomputed_holders[p]);
            SWARMAVAIL_INVARIANT(holder_list_[p].size() == recomputed_holders[p],
                                 "SwarmSim: holder list length diverged from the "
                                 "holder counter");
            SWARMAVAIL_INVARIANT(offered_count_[p] == recomputed_offers[p],
                                 "SwarmSim: offered-piece counter diverged from the "
                                 "free uploaders' bitmaps");
            if (holders_[p] > 0 || publisher_on_) {
                ++recomputed_covered;
            }
        }
        SWARMAVAIL_INVARIANT(covered_ == recomputed_covered,
                             "SwarmSim: coverage counter diverged from the recomputed "
                             "piece coverage");
        SWARMAVAIL_INVARIANT(available_ == (recomputed_covered == pieces_total_),
                             "SwarmSim: availability flag out of sync with piece "
                             "coverage");
    }

    // ---- event handlers --------------------------------------------------

    void on_peer_arrival() {
        ++result_.arrivals;
        const PeerId id = next_peer_id_++;
        Peer peer{.have = PieceSet{pieces_total_},
                  .inflight = PieceSet{pieces_total_},
                  .capacity = config_.peer_capacity->sample(rng_),
                  .arrival = queue_.now()};
        if (m_arrivals_ != nullptr) {
            m_arrivals_->add();
        }
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerArrival, queue_.now(), id,
                         peer.capacity);
        result_.peers.push_back({queue_.now(), -1.0, peer.capacity});
        peer.record_index = result_.peers.size() - 1;
        if (peer_slots_.size() <= id) {
            peer_slots_.resize(id + 1);
            hot_.resize(id + 1, PeerHot{UINT64_MAX, 0, 0});
        }
        peer_slots_[id] = std::make_unique<Peer>(std::move(peer));
        ++live_peers_;
        leechers_.push_back(id);
        refresh_uploader_status(id);
        if (config_.max_neighbors > 0) {
            tracker_handout(id);
        }
        pump();
        sample_gauges();
        audit_state();
    }

    void set_publisher(bool on) {
        if (publisher_on_ == on) {
            return;
        }
        publisher_on_ = on;
        if (on) {
            if (m_publisher_up_ != nullptr) {
                m_publisher_up_->add();
                if (publisher_ever_toggled_) {
                    m_pub_down_interval_->add(queue_.now() - last_publisher_change_);
                }
            }
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPublisherUp, queue_.now(), 1);
        } else {
            if (m_publisher_down_ != nullptr) {
                m_publisher_down_->add();
                m_pub_up_interval_->add(queue_.now() - last_publisher_change_);
            }
            SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPublisherDown, queue_.now(), 0);
        }
        last_publisher_change_ = queue_.now();
        publisher_ever_toggled_ = true;
        if (!on) {
            // Uploads from the publisher die with it.
            cancel_transfers(publisher_up_transfers_, /*src_left=*/true);
            publisher_up_transfers_.clear();
            publisher_up_used_ = 0;
        }
        refresh_coverage_after_publisher_toggle();
        update_availability();
        if (on) {
            ++offered_gain_version_;  // the publisher offers every piece
            pump();
        }
        audit_state();
    }

    void on_transfer_complete(TransferId tid) {
        SWARMAVAIL_PROF_SCOPE("swarm.piece_transfer");
        const auto it = find_transfer(tid);
        ensure(it != transfers_.end() && it->id == tid,
               "SwarmSim: completion for unknown transfer");
        const Transfer transfer = *it;
        transfers_.erase(it);
        if (m_transfers_completed_ != nullptr) {
            m_transfers_completed_->add();
        }
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kTransferComplete, queue_.now(), tid,
                         static_cast<double>(transfer.piece),
                         static_cast<double>(transfer.dst));

        release_src_slot(tid, transfer);
        Peer& dst = peer_at(transfer.dst);
        erase_value(dst.down_transfers, tid);
        --hot_[transfer.dst].down_used;
        dst.inflight.remove(transfer.piece);

        if (!dst.have.has(transfer.piece)) {
            dst.have.add(transfer.piece);
            inc_holder(transfer.piece);
            holder_list_[transfer.piece].push_back(transfer.dst);
            if (hot_[transfer.dst].free_uploader != 0) {
                if (offered_count_[transfer.piece]++ == 0) {
                    ++offered_gain_version_;
                }
            }
            update_availability();
        }

        if (dst.have.is_complete() && !dst.seed_only) {
            on_peer_complete(transfer.dst);
        }
        pump();
        sample_gauges();
        audit_state();
    }

    void on_peer_complete(PeerId id) {
        Peer& peer = peer_at(id);
        const double elapsed = queue_.now() - peer.arrival;
        ++result_.completions;
        if (m_completions_ != nullptr) {
            m_completions_->add();
            m_download_hist_->add(elapsed);
        }
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kPeerCompletion, queue_.now(), id,
                         elapsed);
        result_.download_times.add(elapsed);
        result_.completion_times.push_back(queue_.now());
        result_.last_completion = queue_.now();
        result_.peers[peer.record_index].completion = queue_.now();

        if (config_.publisher == PublisherBehavior::kLeaveAfterFirstCompletion &&
            !publisher_departed_) {
            publisher_departed_ = true;
            set_publisher(false);
        }

        if (config_.peers_linger && config_.linger_mean > 0.0) {
            peer.seed_only = true;
            leechers_.erase(std::remove(leechers_.begin(), leechers_.end(), id),
                            leechers_.end());
            const double stay = rng_.exponential_mean(config_.linger_mean);
            queue_.schedule_at(queue_.now() + stay, [this, id] { remove_peer(id); });
        } else {
            remove_peer(id);
        }
    }

    void remove_peer(PeerId id) {
        Peer* found = find_peer(id);
        if (found == nullptr) {
            return;
        }
        Peer& peer = *found;
        // Cancel transfers in both directions.
        cancel_transfers(peer.up_transfers, /*src_left=*/true);
        cancel_transfers(peer.down_transfers, /*src_left=*/false);
        // Retire its offered pieces while its bitmap is still known.
        if (hot_[id].free_uploader != 0) {
            hot_[id].free_uploader = 0;
            --free_uploader_count_;
            remove_offer(peer.have);
        }
        // Drop its pieces from the coverage map.
        peer.have.for_each_held([&](std::size_t p) {
            dec_holder(p);
            auto& list = holder_list_[p];
            list.erase(std::remove(list.begin(), list.end(), id), list.end());
        });
        // swarmlint-allow(det-unordered-iter): erases `id` from each neighbor's set by key; per-edge, commutative, no RNG
        for (const PeerId other : peer.neighbors) {
            Peer* other_peer = find_peer(other);
            if (other_peer != nullptr) {
                other_peer->neighbors.erase(id);
            }
        }
        leechers_.erase(std::remove(leechers_.begin(), leechers_.end(), id),
                        leechers_.end());
        peer_slots_[id].reset();
        --live_peers_;
        update_availability();
        pump();
        audit_state();
    }

    /// Cancels every transfer in `ids` (a snapshot is taken: cancellation
    /// mutates the sets). `src_left` selects which endpoint is going away.
    void cancel_transfers(const std::vector<TransferId>& ids, bool src_left) {
        cancel_snapshot_.assign(ids.begin(), ids.end());
        // Cancellation frees slots and re-registers uploaders; process in id
        // order so none of that bookkeeping depends on hash layout.
        std::sort(cancel_snapshot_.begin(), cancel_snapshot_.end());
        for (TransferId tid : cancel_snapshot_) {
            const auto it = find_transfer(tid);
            if (it == transfers_.end() || it->id != tid) {
                continue;
            }
            const Transfer transfer = *it;
            queue_.cancel(transfer.event);
            transfers_.erase(it);
            if (m_transfers_cancelled_ != nullptr) {
                m_transfers_cancelled_->add();
            }
            if (src_left) {
                // The receiver keeps nothing but frees its slot.
                Peer* dst = find_peer(transfer.dst);
                if (dst != nullptr) {
                    erase_value(dst->down_transfers, tid);
                    --hot_[transfer.dst].down_used;
                    dst->inflight.remove(transfer.piece);
                }
                if (transfer.src != kPublisher) {
                    Peer* src = find_peer(transfer.src);
                    if (src != nullptr) {
                        erase_value(src->up_transfers, tid);
                    }
                }
            } else {
                release_src_slot(tid, transfer);
                Peer* dst = find_peer(transfer.dst);
                if (dst != nullptr) {
                    erase_value(dst->down_transfers, tid);
                }
            }
        }
    }

    /// Locates a live transfer by id (binary search: transfers_ stays
    /// sorted because ids are handed out monotonically and erases keep
    /// order). Callers check the returned iterator against end() and the
    /// stored id -- a cancelled/completed transfer is simply absent.
    [[nodiscard]] std::vector<Transfer>::iterator find_transfer(TransferId tid) {
        return std::lower_bound(transfers_.begin(), transfers_.end(), tid,
                                [](const Transfer& t, TransferId key) {
                                    return t.id < key;
                                });
    }

    void release_src_slot(TransferId tid, const Transfer& transfer) {
        if (transfer.src == kPublisher) {
            erase_value(publisher_up_transfers_, tid);
            if (publisher_up_used_ > 0) {
                --publisher_up_used_;
            }
        } else {
            Peer* src = find_peer(transfer.src);
            if (src != nullptr) {
                erase_value(src->up_transfers, tid);
                --src->up_used;
                refresh_uploader_status(transfer.src);
            }
        }
    }

    /// Keeps the free-uploader index and the offered-piece counts in sync
    /// with a peer's slot usage.
    void refresh_uploader_status(PeerId id) {
        Peer* peer = find_peer(id);
        if (peer == nullptr) {
            return;  // departed: its flag and offers died with it
        }
        const bool was_free = hot_[id].free_uploader != 0;
        const bool now_free = peer->up_used < config_.max_upload_slots;
        if (was_free == now_free) {
            return;
        }
        hot_[id].free_uploader = now_free ? 1 : 0;
        if (now_free) {
            ++free_uploader_count_;
            add_offer(peer->have);
        } else {
            --free_uploader_count_;
            remove_offer(peer->have);
        }
    }

    /// Adds a free uploader's pieces to the offered set; pieces becoming
    /// newly obtainable bump the version that wakes dormant leechers.
    void add_offer(const PieceSet& have) {
        bool gained = false;
        have.for_each_held([&](std::size_t p) {
            if (offered_count_[p]++ == 0) {
                gained = true;
            }
        });
        if (gained) {
            ++offered_gain_version_;
        }
    }

    void remove_offer(const PieceSet& have) {
        have.for_each_held([&](std::size_t p) {
            ensure(offered_count_[p] > 0, "SwarmSim: offered count underflow");
            --offered_count_[p];
        });
    }

    // ---- transfer scheduling ----------------------------------------------

    /// Greedily starts transfers until no leecher can make progress.
    /// Leechers are visited in random order: freed upload slots (notably the
    /// publisher's) rotate across the swarm like BitTorrent unchokes instead
    /// of being monopolized by the oldest peer, which is what lets a full
    /// copy spread over many peers before the first completion.
    void pump() {
        SWARMAVAIL_PROF_SCOPE("swarm.choke_pump");
        bool progress = true;
        while (progress) {
            progress = false;
            // pump() never re-enters itself (event handlers are not run from
            // inside it), so one scratch vector serves every pass.
            pump_order_.assign(leechers_.begin(), leechers_.end());
            for (std::size_t i = pump_order_.size(); i > 1; --i) {
                std::swap(pump_order_[i - 1], pump_order_[rng_.uniform_index(i)]);
            }
            const bool publisher_free =
                publisher_on_ && publisher_up_used_ < config_.max_upload_slots;
            for (std::size_t j = 0; j < pump_order_.size(); ++j) {
                // The visit order is random, so each hot_ probe is a cold
                // line; warming the next peer's record overlaps that miss
                // with this peer's check.
                if (j + 1 < pump_order_.size()) {
                    __builtin_prefetch(&hot_[pump_order_[j + 1]]);
                }
                const PeerId id = pump_order_[j];
                if (config_.max_neighbors == 0 && !publisher_free &&
                    hot_[id].dormant_version == offered_gain_version_) {
                    continue;  // nothing new offered since its last failure
                }
                while (hot_[id].down_used < config_.max_download_slots &&
                       try_start_transfer(id)) {
                    progress = true;
                }
            }
        }
    }

    /// Tracker bootstrap: a newcomer learns up to max_neighbors random
    /// existing peers; edges are bidirectional (BitTorrent connections are).
    void tracker_handout(PeerId id) {
        SWARMAVAIL_PROF_SCOPE("swarm.tracker");
        std::vector<PeerId>& candidates = tracker_candidates_;
        candidates.clear();
        // The slot store iterates in ascending id order, so the starting
        // permutation the Fisher-Yates pass below consumes is already
        // canonical (the RNG draws map onto the same positions the sorted
        // hash-map snapshot used to produce).
        for (PeerId other = 1; other < peer_slots_.size(); ++other) {
            if (other != id && peer_slots_[other] != nullptr) {
                candidates.push_back(other);
            }
        }
        for (std::size_t i = candidates.size(); i > 1; --i) {
            std::swap(candidates[i - 1], candidates[rng_.uniform_index(i)]);
        }
        Peer& me = peer_at(id);
        for (const PeerId other : candidates) {
            if (me.neighbors.size() >= config_.max_neighbors) {
                break;
            }
            me.neighbors.insert(other);
            peer_at(other).neighbors.insert(id);
        }
    }

    /// PEX pull: adopt a random neighbor's neighbors, growing the view when
    /// the current one offers no usable source. Returns true if any new
    /// edge was added.
    bool pex_expand(PeerId id) {
        Peer& me = peer_at(id);
        if (me.neighbors.empty()) {
            return false;
        }
        // swarmlint-allow(det-unordered-iter): snapshot order is discarded by the sort below
        pex_view_.assign(me.neighbors.begin(), me.neighbors.end());
        // The RNG draw indexes into this view; sort so the draw lands on the
        // same neighbor regardless of hash layout.
        std::sort(pex_view_.begin(), pex_view_.end());
        const PeerId via = pex_view_[rng_.uniform_index(pex_view_.size())];
        const Peer* via_peer = find_peer(via);
        if (via_peer == nullptr) {
            return false;
        }
        bool added = false;
        // Adoption stops at the view cap, so which candidates make the cut
        // depends on traversal order; canonicalize it.
        // swarmlint-allow(det-unordered-iter): snapshot order is discarded by the sort below
        pex_adopt_.assign(via_peer->neighbors.begin(), via_peer->neighbors.end());
        std::sort(pex_adopt_.begin(), pex_adopt_.end());
        for (const PeerId candidate : pex_adopt_) {
            if (candidate == id || me.neighbors.count(candidate) != 0) {
                continue;
            }
            Peer* candidate_peer = find_peer(candidate);
            if (candidate_peer == nullptr) {
                continue;
            }
            me.neighbors.insert(candidate);
            candidate_peer->neighbors.insert(id);
            added = true;
            if (me.neighbors.size() >= 4 * config_.max_neighbors) {
                break;
            }
        }
        return added;
    }

    [[nodiscard]] bool has_free_visible_uploader(std::size_t piece, PeerId dst_id,
                                                 const Peer& dst) const {
        for (const PeerId src : holder_list_[piece]) {
            if (src == dst_id || dst.neighbors.count(src) == 0) {
                continue;
            }
            if (hot_[src].free_uploader != 0) {
                return true;
            }
        }
        return false;
    }

    /// Attempts to start one transfer toward `dst`: picks the rarest needed
    /// piece that some free uploader holds, breaking ties uniformly.
    ///
    /// Candidates are enumerated from the free-uploader index rather than by
    /// scanning every piece's holder list: when the publisher has a free
    /// slot every missing piece is obtainable, otherwise only pieces held by
    /// a peer with a free slot qualify. This keeps the hot path O(free
    /// uploaders x pieces) instead of O(pieces x holders).
    bool try_start_transfer(PeerId dst_id) {
        Peer& dst = peer_at(dst_id);
        const bool publisher_free =
            publisher_on_ && publisher_up_used_ < config_.max_upload_slots;
        std::size_t best_piece = pieces_total_;
        std::size_t best_rarity = SIZE_MAX;
        std::size_t ties = 0;
        if (!publisher_free && free_uploader_count_ == 0) {
            hot_[dst_id].dormant_version = offered_gain_version_;
            return false;
        }
        // Enumerating missing-and-not-in-flight pieces word-at-a-time over
        // the two bitmaps skips fully-held regions and in-flight fetches in
        // one OR; candidate order stays ascending, so the rarest-first
        // choice (and the RNG draw sequence) is unchanged.
        dst.have.for_each_missing_excluding(dst.inflight, [&](std::size_t p) {
            // A piece is obtainable if the publisher has a free slot (it
            // holds everything) or some free uploader holds it. Note the
            // subtlety: offered_count_ counts the receiver itself if it is a
            // free uploader, but it never lacks its own pieces, so the
            // self-offer can only refer to pieces already skipped above.
            // Under super-seeding the publisher withholds pieces peers
            // already hold, so it only "offers" unheld pieces.
            const bool publisher_offers =
                publisher_free && (!config_.super_seeding || holders_[p] == 0);
            if (config_.max_neighbors == 0) {
                if (!publisher_offers && offered_count_[p] == 0) {
                    return;
                }
            } else {
                // Limited visibility: a peer source must be a free neighbor.
                if (!publisher_offers && !has_free_visible_uploader(p, dst_id, dst)) {
                    return;
                }
            }
            const std::size_t rarity =
                holders_[p] + (publisher_on_ ? std::size_t{1} : std::size_t{0});
            if (rarity > best_rarity) {
                return;
            }
            if (rarity < best_rarity) {
                best_rarity = rarity;
                best_piece = p;
                ties = 1;
            } else {
                // Reservoir tie-break keeps the choice uniform over ties.
                ++ties;
                if (rng_.uniform_index(ties) == 0) {
                    best_piece = p;
                }
            }
        });
        if (best_piece == pieces_total_) {
            if (config_.max_neighbors > 0) {
                // Nothing fetchable in the current view: try to widen it
                // via PEX once; the next pump pass retries.
                (void)pex_expand(dst_id);
            } else if (!publisher_free) {
                hot_[dst_id].dormant_version = offered_gain_version_;
            }
            return false;
        }
        if (start_transfer(best_piece, dst_id)) {
            hot_[dst_id].dormant_version = UINT64_MAX;
            return true;
        }
        return false;
    }

    bool start_transfer(std::size_t piece, PeerId dst_id) {
        // Collect eligible sources: the publisher plus free holders of the
        // piece, chosen uniformly.
        std::vector<PeerId>& sources = source_candidates_;
        sources.clear();
        if (publisher_on_ && publisher_up_used_ < config_.max_upload_slots &&
            (!config_.super_seeding || holders_[piece] == 0)) {
            sources.push_back(kPublisher);
        }
        const Peer& dst_view = peer_at(dst_id);
        for (PeerId src : holder_list_[piece]) {
            if (src == dst_id) {
                continue;
            }
            if (config_.max_neighbors > 0 && dst_view.neighbors.count(src) == 0) {
                continue;
            }
            if (hot_[src].free_uploader != 0) {
                sources.push_back(src);
            }
        }
        if (sources.empty()) {
            return false;
        }
        const PeerId src_id = sources[rng_.uniform_index(sources.size())];
        double capacity = src_id == kPublisher ? config_.publisher_capacity
                                               : peer_at(src_id).capacity;
        if (config_.reciprocity_cap && src_id != kPublisher) {
            capacity = std::min(capacity, dst_view.capacity);
        }
        const double rate = capacity / static_cast<double>(config_.max_upload_slots);
        double duration = piece_bits_ / rate;
        if (config_.transfer_jitter > 0.0) {
            duration *= rng_.uniform(1.0 - config_.transfer_jitter,
                                     1.0 + config_.transfer_jitter);
        }

        const TransferId tid = next_transfer_id_++;
        Peer& dst = peer_at(dst_id);
        ++hot_[dst_id].down_used;
        dst.inflight.add(piece);

        if (m_transfers_started_ != nullptr) {
            m_transfers_started_->add();
            m_transfer_hist_->add(duration);
        }
        SWARMAVAIL_TRACE(config_.tracer, TraceKind::kTransferStart, queue_.now(), tid,
                         static_cast<double>(piece), duration);
        const EventId event = queue_.schedule_at(
            queue_.now() + duration, [this, tid] { on_transfer_complete(tid); });
        transfers_.push_back(Transfer{tid, src_id, dst_id, piece, event});
        dst.down_transfers.push_back(tid);
        if (src_id == kPublisher) {
            ++publisher_up_used_;
            publisher_up_transfers_.push_back(tid);
        } else {
            Peer& src = peer_at(src_id);
            ++src.up_used;
            src.up_transfers.push_back(tid);
            refresh_uploader_status(src_id);
        }
        return true;
    }

    // ---- members -----------------------------------------------------------

    SwarmSimConfig config_;
    Rng rng_;
    EventQueue queue_;
    SwarmSimResult result_;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    sim::Fingerprint fingerprint_state_;
    sim::Fingerprint* fingerprint_ = nullptr;  ///< null: fingerprinting off
#endif

    std::size_t pieces_total_ = 0;
    double piece_bits_ = 0.0;

    /// Dense peer store indexed by PeerId (ids are handed out sequentially
    /// from 1; slot 0 is the publisher sentinel and stays empty). A null
    /// slot is a departed or not-yet-arrived peer. Event handlers resolve
    /// peers by direct indexing -- no hash lookup anywhere on the hot path.
    std::vector<std::unique_ptr<Peer>> peer_slots_;
    std::size_t live_peers_ = 0;
    std::vector<PeerId> leechers_;  ///< active downloaders, arrival order
    std::size_t free_uploader_count_ = 0;  ///< peers with hot_[id].free_uploader set
    std::vector<std::uint32_t> offered_count_;   ///< free uploaders holding each piece
    std::uint64_t offered_gain_version_ = 0;     ///< bumped when new pieces get offered
    PeerId next_peer_id_ = 1;

    /// Live transfers ordered by id. Ids are handed out monotonically and
    /// erases keep order, so the vector stays sorted: lookups are a binary
    /// search over the (small) set of concurrent transfers instead of a
    /// hash probe, and start/finish never allocate hash nodes.
    std::vector<Transfer> transfers_;
    TransferId next_transfer_id_ = 1;

    /// Dense per-peer-id mirror of the fields the pump pass and source
    /// scans read for every candidate; see the note at struct Peer. Packed
    /// into one 16-byte record so a randomly-ordered visit costs one cache
    /// line, not one per field. Sized in step with peer_slots_; entries of
    /// departed peers are stale but the loops only visit live peers.
    struct PeerHot {
        std::uint64_t dormant_version;  ///< offered_gain_version_ at last failed scan
        std::uint32_t down_used;        ///< busy download slots
        std::uint8_t free_uploader;     ///< nonzero iff online with a free upload slot
    };
    std::vector<PeerHot> hot_;

    bool publisher_on_ = false;
    bool publisher_departed_ = false;
    SimTime last_publisher_change_ = 0.0;
    bool publisher_ever_toggled_ = false;
    std::size_t publisher_up_used_ = 0;
    std::vector<TransferId> publisher_up_transfers_;

    std::vector<std::uint32_t> holders_;            ///< online peer holders per piece
    std::vector<std::vector<PeerId>> holder_list_;  ///< who holds each piece
    std::size_t covered_ = 0;                       ///< pieces with >= 1 source online
    bool available_ = false;
    SimTime interval_begin_ = 0.0;

    // Scratch buffers reused across events (the per-event vector churn
    // showed up in the micro benches). Each has exactly one non-reentrant
    // user: pump passes, source selection, tracker handouts, PEX pulls,
    // and transfer-cancellation snapshots never nest with themselves.
    std::vector<PeerId> pump_order_;
    std::vector<PeerId> source_candidates_;
    std::vector<PeerId> tracker_candidates_;
    std::vector<PeerId> pex_view_;
    std::vector<PeerId> pex_adopt_;
    std::vector<TransferId> cancel_snapshot_;

    // Cached metric references (null when config_.metrics is null); see
    // bind_metrics. Either all are bound or none.
    Counter* m_arrivals_ = nullptr;
    Counter* m_completions_ = nullptr;
    Counter* m_transfers_started_ = nullptr;
    Counter* m_transfers_completed_ = nullptr;
    Counter* m_transfers_cancelled_ = nullptr;
    Counter* m_publisher_up_ = nullptr;
    Counter* m_publisher_down_ = nullptr;
    HistogramMetric* m_download_hist_ = nullptr;
    HistogramMetric* m_transfer_hist_ = nullptr;
    HistogramMetric* m_avail_interval_hist_ = nullptr;
    HistogramMetric* m_pub_up_interval_ = nullptr;
    HistogramMetric* m_pub_down_interval_ = nullptr;
    Gauge* m_leechers_gauge_ = nullptr;
    Gauge* m_coverage_gauge_ = nullptr;
    Gauge* m_queue_depth_ = nullptr;
};

}  // namespace

SwarmSimResult run_swarm_sim(const SwarmSimConfig& config) {
    SwarmSim sim{config};
    return sim.run();
}

std::vector<SwarmSimResult> run_swarm_replications(const SwarmSimConfig& config,
                                                   std::size_t runs,
                                                   const sim::ParallelPolicy& policy) {
    require(runs >= 1, "run_swarm_replications: requires runs >= 1");
    // Every replication owns its simulator and RNG and writes only its own
    // slot, so any thread count yields the same per-seed results in the
    // same (seed) order. The same single-owner discipline covers metrics:
    // each replication records into a private registry, and the fold below
    // runs strictly in seed order, so the merged metrics are bit-identical
    // for every thread count too.
    telemetry::RunCounters* counters = nullptr;
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
    if (config.telemetry != nullptr) {
        counters = &config.telemetry->counters();
        counters->replications_total.fetch_add(runs, std::memory_order_relaxed);
    }
#endif
    std::vector<SwarmSimResult> results(runs);
    std::vector<MetricsRegistry> registries(config.metrics != nullptr ? runs : 0);
    sim::Parallel::for_index(
        runs, policy,
        [&](std::size_t i) {
            SwarmSimConfig run_config = config;
            run_config.seed = config.seed + i;
            run_config.metrics = registries.empty() ? nullptr : &registries[i];
            run_config.tracer = nullptr;  // tracing is single-run (see config docs)
            results[i] = run_swarm_sim(run_config);
            SWARMAVAIL_TELEMETRY(config.telemetry,
                                 counters().replications_completed.fetch_add(
                                     1, std::memory_order_relaxed));
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
            SWARMAVAIL_TELEMETRY(config.telemetry,
                                 counters().fingerprint_xor.fetch_xor(
                                     results[i].fingerprint,
                                     std::memory_order_relaxed));
#endif
            if (results[i].download_times.count() > 0) {
                SWARMAVAIL_TELEMETRY(config.telemetry,
                                     tracker().observe("swarm.download_time_s",
                                                       results[i].download_times.mean()));
            }
        },
        counters);
    for (const MetricsRegistry& registry : registries) {
        config.metrics->merge(registry);
    }
    return results;
}

}  // namespace swarmavail::swarm
