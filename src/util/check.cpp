#include "util/check.hpp"

#include <utility>

namespace swarmavail {

namespace {

std::string format_failure(const char* kind, const char* expression, const char* file,
                           int line, const std::string& message) {
    std::string out;
    out.reserve(message.size() + 96);
    out += kind;
    out += " failed at ";
    out += file;
    out += ':';
    out += std::to_string(line);
    out += ": ";
    out += message;
    if (expression != nullptr && expression[0] != '\0') {
        out += " (";
        out += expression;
        out += ')';
    }
    return out;
}

}  // namespace

CheckFailure::CheckFailure(const std::string& formatted, const char* file, int line,
                           std::string message)
    : std::logic_error(formatted), file_(file), line_(line), message_(std::move(message)) {}

namespace detail {

void check_failed(const char* kind, const char* expression, const char* file, int line,
                  const std::string& message) {
    throw CheckFailure(format_failure(kind, expression, file, line, message), file, line,
                       message);
}

void require_failed(const char* expression, const char* file, int line,
                    const std::string& message) {
    throw std::invalid_argument(
        format_failure("SWARMAVAIL_REQUIRE", expression, file, line, message));
}

}  // namespace detail
}  // namespace swarmavail
