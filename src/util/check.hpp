// Contract and invariant checking macros for the whole library.
//
// Three tiers, by who is at fault and when the check runs:
//
//   SWARMAVAIL_REQUIRE(cond, msg)    -- caller-supplied input is invalid.
//       Always compiled. Throws std::invalid_argument (the project's
//       public-API error policy) with file/line context in what().
//
//   SWARMAVAIL_INVARIANT(cond, msg)  -- internal consistency that is cheap
//       enough to verify unconditionally (O(1) bookkeeping checks). Always
//       compiled. Throws swarmavail::CheckFailure, which carries the
//       failing file, line, and message.
//
//   SWARMAVAIL_ASSERT(cond, msg)     -- internal consistency that may be
//       expensive or extremely hot. Compiled out in release builds (NDEBUG)
//       unless the build force-enables auditing by defining
//       SWARMAVAIL_ENABLE_AUDIT (the asan-ubsan preset does, via the
//       SWARMAVAIL_ENABLE_AUDIT CMake option). Throws CheckFailure when
//       active.
//
// The runtime invariant-audit mode of the simulators (the `debug_audit`
// config flags) is orthogonal: those audits are gated by a runtime flag and
// use SWARMAVAIL_INVARIANT underneath, so they work in every build type.
//
// This header subsumes the ad-hoc require()/ensure() helpers in
// util/error.hpp, which are now thin wrappers over the same failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace swarmavail {

/// Thrown when a SWARMAVAIL_ASSERT / SWARMAVAIL_INVARIANT check fails (or
/// an ensure() call, which routes through the same machinery). Derives from
/// std::logic_error: a failed check is a bug in this library, not bad input.
class CheckFailure : public std::logic_error {
 public:
    CheckFailure(const std::string& formatted, const char* file, int line,
                 std::string message);

    /// Source file of the failing check (__FILE__ / source_location).
    [[nodiscard]] const char* file() const noexcept { return file_; }
    /// Source line of the failing check.
    [[nodiscard]] int line() const noexcept { return line_; }
    /// The bare message passed to the check, without file/line decoration.
    [[nodiscard]] const std::string& message() const noexcept { return message_; }

 private:
    const char* file_;
    int line_;
    std::string message_;
};

namespace detail {

/// Formats and throws CheckFailure. `kind` names the macro ("SWARMAVAIL_ASSERT",
/// "SWARMAVAIL_INVARIANT", "ensure"), `expression` is the stringified condition
/// (may be empty for the function-style wrappers).
[[noreturn]] void check_failed(const char* kind, const char* expression,
                               const char* file, int line, const std::string& message);

/// Formats and throws std::invalid_argument for a failed precondition.
[[noreturn]] void require_failed(const char* expression, const char* file, int line,
                                 const std::string& message);

}  // namespace detail
}  // namespace swarmavail

/// 1 when SWARMAVAIL_ASSERT expands to a real check in this translation
/// unit, 0 when it is compiled out. Debug builds (no NDEBUG) and audit
/// builds (SWARMAVAIL_ENABLE_AUDIT defined) check; release builds do not.
#if !defined(NDEBUG) || defined(SWARMAVAIL_ENABLE_AUDIT)
#define SWARMAVAIL_AUDIT_CHECKS_ENABLED 1
#else
#define SWARMAVAIL_AUDIT_CHECKS_ENABLED 0
#endif

#define SWARMAVAIL_REQUIRE(condition, message)                                     \
    do {                                                                           \
        if (!(condition)) {                                                        \
            ::swarmavail::detail::require_failed(#condition, __FILE__, __LINE__,   \
                                                 (message));                       \
        }                                                                          \
    } while (false)

#define SWARMAVAIL_INVARIANT(condition, message)                                   \
    do {                                                                           \
        if (!(condition)) {                                                        \
            ::swarmavail::detail::check_failed("SWARMAVAIL_INVARIANT", #condition, \
                                               __FILE__, __LINE__, (message));     \
        }                                                                          \
    } while (false)

#if SWARMAVAIL_AUDIT_CHECKS_ENABLED
#define SWARMAVAIL_ASSERT(condition, message)                                      \
    do {                                                                           \
        if (!(condition)) {                                                        \
            ::swarmavail::detail::check_failed("SWARMAVAIL_ASSERT", #condition,    \
                                               __FILE__, __LINE__, (message));     \
        }                                                                          \
    } while (false)
#else
// The condition stays inside an unevaluated operand so variables used only
// by the assertion do not trigger -Wunused warnings in release builds.
#define SWARMAVAIL_ASSERT(condition, message) \
    static_cast<void>(sizeof(static_cast<bool>(condition) ? 1 : 0))
#endif
