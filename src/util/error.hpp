// Precondition checking helpers used across the library.
//
// Public API functions validate their inputs with `require` and throw
// std::invalid_argument on violation, per the project error-handling policy
// (exceptions for programming/usage errors, no error codes).
//
// Both helpers are thin wrappers over the contract machinery in
// util/check.hpp, so failures carry the caller's file and line. Prefer the
// SWARMAVAIL_REQUIRE / SWARMAVAIL_INVARIANT / SWARMAVAIL_ASSERT macros in
// new code; these function forms remain for call sites where a macro is
// awkward (e.g. inside other macros, or when the condition is a variable).
#pragma once

#include <source_location>
#include <string>

#include "util/check.hpp"

namespace swarmavail {

/// Throws std::invalid_argument with `message` if `condition` is false.
///
/// Use at public API boundaries to validate caller-supplied parameters:
///
///     require(rate > 0.0, "arrival rate must be positive");
inline void require(bool condition, const std::string& message,
                    std::source_location where = std::source_location::current()) {
    if (!condition) {
        detail::require_failed("", where.file_name(), static_cast<int>(where.line()),
                               message);
    }
}

/// Throws swarmavail::CheckFailure (a std::logic_error): used for internal
/// invariants that indicate a bug in this library rather than bad caller
/// input.
inline void ensure(bool invariant, const std::string& message,
                   std::source_location where = std::source_location::current()) {
    if (!invariant) {
        detail::check_failed("ensure", "", where.file_name(),
                             static_cast<int>(where.line()), message);
    }
}

}  // namespace swarmavail
