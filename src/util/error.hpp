// Precondition checking helpers used across the library.
//
// Public API functions validate their inputs with `require` and throw
// std::invalid_argument on violation, per the project error-handling policy
// (exceptions for programming/usage errors, no error codes).
#pragma once

#include <stdexcept>
#include <string>

namespace swarmavail {

/// Throws std::invalid_argument with `message` if `condition` is false.
///
/// Use at public API boundaries to validate caller-supplied parameters:
///
///     require(rate > 0.0, "arrival rate must be positive");
inline void require(bool condition, const std::string& message) {
    if (!condition) {
        throw std::invalid_argument(message);
    }
}

/// Throws std::logic_error: used for internal invariants that indicate a bug
/// in this library rather than bad caller input.
inline void ensure(bool invariant, const std::string& message) {
    if (!invariant) {
        throw std::logic_error(message);
    }
}

}  // namespace swarmavail
