// Numerical helpers for the queueing formulas: robust infinite-series
// summation, log-space combinatorics, and Poisson probabilities.
//
// The busy-period expressions in the paper (eqs. 9, 12, 13, 16) are infinite
// series whose terms involve beta^i / i! -- these explode in linear space for
// the large exponents bundling produces (beta * alpha ~ K^2), so everything
// here is computed with guarded term recurrences or log-space arithmetic.
#pragma once

#include <cstddef>
#include <functional>

namespace swarmavail {

/// Result of an adaptive series summation.
struct SeriesResult {
    double value = 0.0;        ///< the summed value
    std::size_t terms = 0;     ///< number of terms evaluated
    bool converged = false;    ///< true if the tolerance was met
};

/// Options controlling series summation.
struct SeriesOptions {
    /// Stop when |term| <= rel_tol * |partial_sum| (after min_terms).
    double rel_tol = 1e-13;
    /// Always evaluate at least this many terms (series with humps --
    /// e.g. beta^i/i! -- grow before they shrink).
    std::size_t min_terms = 8;
    /// Hard cap on evaluated terms.
    std::size_t max_terms = 100000;
};

/// Sums term(i) for i = 1, 2, ... until convergence. The term callback must
/// eventually decay (all series in this library are dominated by x^i / i!).
/// Convergence requires two consecutive below-tolerance terms, which guards
/// against stopping inside the pre-hump dip of non-monotone series.
[[nodiscard]] SeriesResult sum_series(const std::function<double(std::size_t)>& term,
                                      const SeriesOptions& options = {});

/// log(n!) via lgamma.
[[nodiscard]] double log_factorial(std::size_t n);

/// log of the binomial coefficient C(n, k). Requires k <= n.
[[nodiscard]] double log_binomial(std::size_t n, std::size_t k);

/// Poisson pmf P(N = k) for mean `mu` >= 0, computed in log space.
[[nodiscard]] double poisson_pmf(std::size_t k, double mu);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_add_exp(double a, double b);

/// Numerically careful (e^x - 1) / y for y > 0: uses expm1 so small x keeps
/// full precision; large x saturates to +inf gracefully.
[[nodiscard]] double expm1_over(double x, double y);

/// Relative difference |a - b| / max(|a|, |b|, floor); 0 when both are ~0.
[[nodiscard]] double relative_difference(double a, double b, double floor = 1e-300);

}  // namespace swarmavail
