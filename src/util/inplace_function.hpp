// Small-buffer-optimized, move-only callable wrapper.
//
// The discrete-event queue stores one callback per scheduled event; with
// std::function every schedule_at() pays a heap allocation because the
// simulators' capture lists ([this, id]) exceed libstdc++'s tiny inline
// buffer. InplaceFunction keeps callables up to `Capacity` bytes inline in
// the object (no allocation, no pointer chase on invoke) and falls back to
// the heap only for oversized captures.
//
// Deliberately minimal compared to std::function: move-only (no copy, so
// captured move-only resources work), no target_type/target accessors, and
// invoking an empty function is a contract violation checked by the caller
// (EventQueue never stores empty actions in live slots).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace swarmavail {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
    InplaceFunction() noexcept = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            vtable_ = &inline_vtable<D>;
        } else {
            ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
            vtable_ = &heap_vtable<D>;
        }
    }

    InplaceFunction(InplaceFunction&& other) noexcept { take(std::move(other)); }

    InplaceFunction& operator=(InplaceFunction&& other) noexcept {
        if (this != &other) {
            reset();
            take(std::move(other));
        }
        return *this;
    }

    InplaceFunction(const InplaceFunction&) = delete;
    InplaceFunction& operator=(const InplaceFunction&) = delete;

    ~InplaceFunction() { reset(); }

    /// Destroys the held callable (releasing captured resources), leaving
    /// the wrapper empty.
    void reset() noexcept {
        if (vtable_ != nullptr) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

    /// True when the held callable lives in the inline buffer (test hook
    /// for the small-buffer optimization; empty functions report true).
    [[nodiscard]] bool is_inline() const noexcept {
        return vtable_ == nullptr || !vtable_->heap_allocated;
    }

    R operator()(Args... args) {
        return vtable_->invoke(storage_, std::forward<Args>(args)...);
    }

 private:
    struct VTable {
        R (*invoke)(void*, Args&&...);
        /// Move-constructs the callable at `dst` from `src` and destroys the
        /// source (a destructive relocate, used by moves and slab growth).
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
        bool heap_allocated;
    };

    template <typename D>
    static constexpr bool fits_inline() noexcept {
        return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr VTable inline_vtable{
        [](void* s, Args&&... args) -> R {
            return (*std::launder(static_cast<D*>(s)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            D* from = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        [](void* s) noexcept { std::launder(static_cast<D*>(s))->~D(); },
        /*heap_allocated=*/false,
    };

    template <typename D>
    static constexpr VTable heap_vtable{
        [](void* s, Args&&... args) -> R {
            return (**std::launder(static_cast<D**>(s)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
        },
        [](void* s) noexcept { delete *std::launder(static_cast<D**>(s)); },
        /*heap_allocated=*/true,
    };

    void take(InplaceFunction&& other) noexcept {
        if (other.vtable_ != nullptr) {
            vtable_ = other.vtable_;
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity > sizeof(void*)
                                                         ? Capacity
                                                         : sizeof(void*)]{};
    const VTable* vtable_ = nullptr;
};

}  // namespace swarmavail
