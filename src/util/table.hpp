// Aligned-table and CSV output used by the bench harnesses to print the
// rows/series corresponding to each table and figure of the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swarmavail {

/// Collects rows of stringified cells and prints them either as an aligned
/// text table (for terminal reading) or CSV (for plotting).
class TableWriter {
 public:
    explicit TableWriter(std::vector<std::string> header);

    /// Appends a row. Row length must match the header length.
    void add_row(std::vector<std::string> row);

    /// Convenience: formats each double with `precision` significant digits.
    void add_numeric_row(const std::vector<double>& row, int precision = 6);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

    /// Writes an aligned, pipe-separated table.
    void print(std::ostream& os) const;

    /// Writes RFC-4180-ish CSV (cells containing commas/quotes are quoted).
    void print_csv(std::ostream& os) const;

 private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant digits (shared helper so
/// tables and logs agree on formatting).
[[nodiscard]] std::string format_double(double value, int precision = 6);

/// Shortest decimal representation that parses back to exactly the same
/// double (std::to_chars). Used wherever output must round-trip losslessly
/// (trace sinks, bench JSON).
[[nodiscard]] std::string format_double_exact(double value);

/// Escapes one cell per RFC 4180 (quotes cells containing commas, quotes,
/// or newlines; doubles embedded quotes).
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Writes one escaped, comma-separated, newline-terminated CSV row.
/// TableWriter::print_csv and the streaming CSV trace sink share this.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

/// Prints a section banner for bench output, e.g. "== Figure 3 ==".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace swarmavail
