// Live run telemetry: periodic wall-clock snapshots of a running
// experiment, published through pluggable exporters.
//
// A TelemetrySession sits beside a long run (a replication batch, a
// catalog sweep) and makes it observable while it executes, the way
// production swarming systems are observed: every `interval_s` seconds a
// background sampler thread reads the run-level counters (replications and
// swarms completed, events dispatched, sim-time advanced, queue depth),
// the process RSS, and the streaming convergence statistics, assembles a
// TelemetrySnapshot, and hands it to each exporter — a JSONL stream
// (tailable with examples/telemetry_watch), a Prometheus text-exposition
// file (scrapable with a node_exporter textfile collector or a plain HTTP
// file server), or an in-memory ring for tests.
//
// Threading and determinism model:
//   - engines publish progress through relaxed atomics in RunCounters and
//     per-completion ConvergenceTracker::observe calls (mutex, off the
//     event hot path: one update per completed replication/swarm, never
//     per event), so the sampler thread is tsan-clean against the workers;
//   - the sampler only ever *reads* shared state; it draws no randomness
//     and touches no simulator, so an attached session cannot change any
//     simulation result (the engines' observer-neutrality tests pin this);
//   - call sites in the engines go through SWARMAVAIL_TELEMETRY, a
//     null-pointer branch when detached and compiled out entirely under
//     SWARMAVAIL_TELEMETRY_DISABLED (the trace-off preset).
//
// StopRule is the one deliberate exception to observer neutrality: an
// *opt-in* control hook that ends a replication batch or catalog sweep
// early once the 95% confidence half-width of the tracked estimate falls
// below a target. It changes which work runs, so the early-stop decision
// is recorded in the result (ExperimentCell::stopped_early,
// CatalogReport::stopped_early) and determinism-sensitive callers simply
// leave the rule unset. StopRule lives here header-only so the engines can
// evaluate it without linking any telemetry machinery.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace swarmavail::telemetry {

/// Adds `delta` to an atomic double with relaxed ordering. A CAS loop, not
/// std::atomic<double>::fetch_add, so the toolchain floor stays C++20-less
/// on this member; contention is negligible (one call per completed work
/// unit).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
}

/// Run-level progress counters shared between the engines (writers) and
/// the sampler thread (reader). All members are relaxed atomics; engines
/// update them once per completed work unit (replication, swarm, shared-
/// queue slice) — never per event — so the hot path stays untouched and
/// every published value is monotone except the queue-depth gauge.
struct RunCounters {
    std::atomic<std::uint64_t> replications_total{0};
    std::atomic<std::uint64_t> replications_completed{0};
    std::atomic<std::uint64_t> swarms_total{0};
    std::atomic<std::uint64_t> swarms_completed{0};
    std::atomic<std::uint64_t> events_dispatched{0};
    /// Completed simulated seconds, summed over finished work units (and
    /// advanced incrementally by the shared-queue engine's slices).
    std::atomic<double> sim_time_advanced{0.0};
    /// Total simulated seconds the run intends to execute (0 if unknown).
    std::atomic<double> sim_time_target{0.0};
    /// Pending-work gauge, last writer wins: event-queue depth in shared-
    /// queue/single-sim runs, unclaimed fan-out indices under sim::Parallel.
    std::atomic<double> queue_depth{0.0};
    /// Running XOR of completed work units' determinism fingerprints (see
    /// sim/fingerprint.hpp). XOR is commutative, so the value at run
    /// completion is identical for every thread count / completion order;
    /// mid-run it only reflects the units finished so far. The canonical
    /// order-sensitive catalog fingerprint lives in CatalogReport — this is
    /// the live view. Stays 0 with fingerprinting off or compiled out.
    std::atomic<std::uint64_t> fingerprint_xor{0};
};

/// One tracked estimate's streaming summary at snapshot time.
struct TrackedStat {
    std::string name;
    std::size_t count = 0;
    double mean = 0.0;
    double ci95_halfwidth = 0.0;
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;
};

/// Streaming per-metric convergence statistics: engines observe one value
/// per completed work unit (a replication's mean unavailability, a swarm's
/// arrival unavailability) and snapshots report the live 95% CI half-width
/// — the quantity a StopRule targets and telemetry_watch plots. Mutex-
/// guarded; safe for concurrent observers and the sampler thread.
class ConvergenceTracker {
 public:
    void observe(std::string_view metric, double value);

    /// Every tracked metric in first-observation order.
    [[nodiscard]] std::vector<TrackedStat> snapshot() const;

 private:
    struct Slot {
        std::string name;
        StreamingStats stats;
        double last = 0.0;
    };

    mutable std::mutex mutex_;
    std::vector<Slot> slots_;
};

/// Early-stop criterion over a streaming estimate: satisfied once at least
/// `min_observations` values have been seen and the ~95% confidence
/// half-width of their mean is at or below `ci95_target`. Header-only on
/// purpose (see the file comment): usable by the engines in builds that
/// compile the telemetry call sites out.
struct StopRule {
    double ci95_target = 0.0;        ///< required > 0 to ever fire
    std::size_t min_observations = 8;

    [[nodiscard]] bool satisfied(const StreamingStats& stats) const noexcept {
        return ci95_target > 0.0 && stats.count() >= min_observations &&
               stats.count() >= 2 && stats.ci95_halfwidth() <= ci95_target;
    }
};

/// One periodic observation of the run, as published to exporters.
struct TelemetrySnapshot {
    std::uint64_t sequence = 0;       ///< 0-based emission index
    double wall_time_s = 0.0;         ///< seconds since the session started
    bool final_snapshot = false;      ///< emitted by stop(), after the run
    std::uint64_t replications_total = 0;
    std::uint64_t replications_completed = 0;
    std::uint64_t swarms_total = 0;
    std::uint64_t swarms_completed = 0;
    std::uint64_t events_dispatched = 0;
    double events_per_s = 0.0;        ///< dispatch rate since the prior snapshot
    double sim_time_advanced = 0.0;   ///< completed simulated seconds
    double sim_time_target = 0.0;
    double sim_time_rate = 0.0;       ///< sim s per wall s since the prior snapshot
    double queue_depth = 0.0;
    double progress = 0.0;            ///< completed fraction in [0, 1] (0 if unknown)
    double eta_s = -1.0;              ///< estimated remaining wall seconds (< 0 unknown)
    std::uint64_t rss_bytes = 0;      ///< resident set size (0 where unsupported)
    std::uint64_t peak_rss_bytes = 0;
    /// XOR of completed work units' determinism fingerprints at sample time
    /// (see RunCounters::fingerprint_xor); 0 when fingerprinting is off.
    std::uint64_t fingerprint_xor = 0;
    std::vector<TrackedStat> tracked; ///< convergence-tracker summaries
};

/// Where snapshots go. The session calls export_snapshot from its sampler
/// thread (and once more from stop() for the final snapshot, after the
/// sampler joined), never concurrently; finish() follows the last snapshot.
class TelemetryExporter {
 public:
    virtual ~TelemetryExporter() = default;
    virtual void export_snapshot(const TelemetrySnapshot& snapshot) = 0;
    virtual void finish() {}
};

/// One JSON object per line per snapshot, lossless doubles, flushed after
/// every line so `tail -f` (and examples/telemetry_watch) see snapshots as
/// they happen. Parse the stream back with read_telemetry_jsonl.
class JsonlTelemetryExporter final : public TelemetryExporter {
 public:
    /// The stream must outlive the exporter.
    explicit JsonlTelemetryExporter(std::ostream& os) : os_(os) {}
    void export_snapshot(const TelemetrySnapshot& snapshot) override;

 private:
    std::ostream& os_;
};

/// Rewrites a Prometheus text-exposition file on every snapshot (write to
/// `path`.tmp, then atomic rename), so a scraper never reads a torn file.
/// The exposition carries every run-level series under the `swarmavail_`
/// prefix plus per-tracked-metric mean/ci gauges; see write_prometheus.
class PrometheusTextExporter final : public TelemetryExporter {
 public:
    explicit PrometheusTextExporter(std::string path) : path_(std::move(path)) {}
    void export_snapshot(const TelemetrySnapshot& snapshot) override;

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
    std::string path_;
};

/// Keeps the last `capacity` snapshots in memory (drop-oldest ring); the
/// in-process exporter the tests and acceptance checks read.
class MemoryTelemetryExporter final : public TelemetryExporter {
 public:
    explicit MemoryTelemetryExporter(std::size_t capacity = 4096);
    void export_snapshot(const TelemetrySnapshot& snapshot) override;

    /// Snapshots in emission order (oldest first among those retained).
    [[nodiscard]] const std::vector<TelemetrySnapshot>& snapshots() const noexcept {
        return snapshots_;
    }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
    std::size_t capacity_;
    std::vector<TelemetrySnapshot> snapshots_;
    std::uint64_t dropped_ = 0;
};

/// Session configuration. Exporters are non-owning and must outlive the
/// session; with no exporters the session still samples (snapshots_taken
/// advances) but publishes nowhere.
struct TelemetryConfig {
    double interval_s = 0.25;  ///< wall-clock sampling period (> 0)
    std::vector<TelemetryExporter*> exporters;
};

/// The live-telemetry harness. Owned by the caller, attached to engine
/// configs by pointer; engines only touch counters()/tracker() (through
/// SWARMAVAIL_TELEMETRY), the session owns the sampler thread and the
/// exporters' cadence.
///
/// Lifecycle: construct, start() (spawns the sampler), attach to one or
/// more runs, stop() (joins the sampler and emits the final snapshot;
/// also called by the destructor). A stopped session can be restarted;
/// counters accumulate across runs for the session's life.
class TelemetrySession {
 public:
    explicit TelemetrySession(TelemetryConfig config);
    ~TelemetrySession();

    TelemetrySession(const TelemetrySession&) = delete;
    TelemetrySession& operator=(const TelemetrySession&) = delete;

    [[nodiscard]] RunCounters& counters() noexcept { return counters_; }
    [[nodiscard]] const RunCounters& counters() const noexcept { return counters_; }
    [[nodiscard]] ConvergenceTracker& tracker() noexcept { return tracker_; }

    /// Spawns the sampler thread. No-op if already running.
    void start();
    /// Joins the sampler and emits one final snapshot (final_snapshot =
    /// true), then finish()es the exporters. No-op if never started and
    /// nothing was ever emitted; safe to call repeatedly.
    void stop();
    [[nodiscard]] bool running() const noexcept { return sampler_ != nullptr; }

    /// Assembles and publishes a snapshot right now (also usable without
    /// start() for externally-paced sampling). Thread-safe against the
    /// sampler.
    TelemetrySnapshot snapshot_now(bool final_snapshot = false);

    [[nodiscard]] std::uint64_t snapshots_taken() const noexcept {
        return snapshots_taken_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double interval_s() const noexcept { return config_.interval_s; }

 private:
    struct Sampler;

    TelemetryConfig config_;
    RunCounters counters_;
    ConvergenceTracker tracker_;

    std::mutex emit_mutex_;  ///< serializes snapshot assembly + export
    std::atomic<std::uint64_t> snapshots_taken_{0};
    std::uint64_t next_sequence_ = 0;
    bool finished_ = false;
    std::chrono::steady_clock::time_point started_at_;
    /// Rate baseline: previous snapshot's wall time / events / sim time.
    double prev_wall_s_ = 0.0;
    std::uint64_t prev_events_ = 0;
    double prev_sim_time_ = 0.0;

    std::unique_ptr<Sampler> sampler_;
};

/// Writes one snapshot in Prometheus text exposition format (HELP/TYPE
/// headers plus `swarmavail_*` samples). Exposed for tests and for callers
/// that serve /metrics themselves.
void write_prometheus(const TelemetrySnapshot& snapshot, std::ostream& os);

/// Structural check of a Prometheus text exposition: every line is a
/// comment/HELP/TYPE line or `metric_name[{labels}] value`, metric names
/// are legal, TYPE precedes first use, and the text ends with a newline.
/// On failure returns false and, if `error` is non-null, why.
[[nodiscard]] bool validate_prometheus_text(std::string_view text,
                                            std::string* error = nullptr);

/// Parses a JSONL snapshot stream produced by JsonlTelemetryExporter.
/// Restricted to that writer's output shape; throws std::invalid_argument
/// on malformed lines. Doubles round-trip bit-exactly.
[[nodiscard]] std::vector<TelemetrySnapshot> read_telemetry_jsonl(std::istream& in);

/// Current resident-set size and peak RSS of this process in bytes
/// (Linux: /proc/self/status VmRSS/VmHWM). Returns false (zeros) where
/// unsupported.
bool read_process_rss(std::uint64_t& rss_bytes, std::uint64_t& peak_rss_bytes);

}  // namespace swarmavail::telemetry

#if defined(SWARMAVAIL_TELEMETRY_DISABLED)
#define SWARMAVAIL_TELEMETRY(session, ...) static_cast<void>(0)
#else
/// Engine-side telemetry call site, e.g.
///   SWARMAVAIL_TELEMETRY(session, counters().swarms_completed.fetch_add(
///       1, std::memory_order_relaxed));
/// One null-pointer branch when no session is attached; removed entirely
/// under SWARMAVAIL_TELEMETRY_DISABLED (the trace-off preset), which the
/// CI symbol check relies on.
#define SWARMAVAIL_TELEMETRY(session, ...)  \
    do {                                    \
        if ((session) != nullptr) {         \
            (session)->__VA_ARGS__;         \
        }                                   \
    } while (false)
#endif
