// Phase-scoped wall-time profiling for the simulation engines.
//
// `SWARMAVAIL_PROF_SCOPE("sim.event_dispatch")` drops an RAII timer into a
// block; every scope with the same name accumulates into one process-wide
// phase (calls + wall seconds, inclusive of nested scopes). Accumulators
// are per-thread relaxed atomics, so scopes are safe inside sim::Parallel
// workers and the tsan build stays clean; Profiler::snapshot() folds the
// per-thread slots on demand.
//
// Cost model: profiling is runtime-gated. Disabled (the default), a scope
// costs one relaxed atomic load and a branch — no clock reads. Compiling
// with SWARMAVAIL_PROFILING_DISABLED (CMake: -DSWARMAVAIL_ENABLE_PROFILING=OFF)
// removes the call sites entirely.
//
// Profiling measures wall time only; it never touches simulator state or
// RNG draws, so enabling it cannot change any simulation result.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace swarmavail::prof {

namespace detail {
/// The runtime gate, read on every scope entry; defined in profile.cpp.
extern std::atomic<bool> g_profiling_enabled;
}  // namespace detail

/// Aggregated totals of one phase across all threads.
struct PhaseTotal {
    std::string name;
    std::uint64_t calls = 0;
    double seconds = 0.0;  ///< inclusive wall time (nested scopes double-count)
};

/// Process-wide phase registry and accumulator. All members are static:
/// phases are identified by the index register_phase hands out, and scope
/// call sites cache that index in a function-local static.
class Profiler {
 public:
    /// Registers (or looks up) a phase by name; returns its index.
    /// Throws std::invalid_argument beyond kMaxPhases distinct phases.
    static std::size_t register_phase(std::string_view name);

    static void set_enabled(bool on) noexcept {
        detail::g_profiling_enabled.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] static bool enabled() noexcept {
        return detail::g_profiling_enabled.load(std::memory_order_relaxed);
    }

    /// Adds one call of `ns` nanoseconds to `phase` on this thread's slot.
    static void record(std::size_t phase, std::uint64_t ns) noexcept;

    /// Folds every thread's accumulators; phases in registration order.
    /// Phases recorded concurrently with the snapshot may be partially
    /// counted — quiesce first for exact numbers.
    [[nodiscard]] static std::vector<PhaseTotal> snapshot();

    /// Zeroes all accumulators (registered names are kept).
    static void reset();

    /// Writes {"phases":[{"name":...,"calls":N,"seconds":S},...]} — the
    /// per-phase wall-time breakdown scripts/bench.sh embeds in BENCH_perf.json.
    static void write_json(std::ostream& os);

    static constexpr std::size_t kMaxPhases = 64;
};

/// RAII timer for one phase. Reads the clock only while profiling is
/// enabled; the disabled path is a relaxed load plus a branch.
class ProfScope {
 public:
    explicit ProfScope(std::size_t phase) noexcept {
        if (Profiler::enabled()) {
            phase_ = phase;
            start_ns_ = now_ns();
            armed_ = true;
        }
    }
    ~ProfScope() {
        if (armed_) {
            Profiler::record(phase_, now_ns() - start_ns_);
        }
    }

    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;

 private:
    [[nodiscard]] static std::uint64_t now_ns() noexcept;

    std::size_t phase_ = 0;
    std::uint64_t start_ns_ = 0;
    bool armed_ = false;
};

}  // namespace swarmavail::prof

#define SWARMAVAIL_PROF_CAT2(a, b) a##b
#define SWARMAVAIL_PROF_CAT(a, b) SWARMAVAIL_PROF_CAT2(a, b)

#if defined(SWARMAVAIL_PROFILING_DISABLED)
#define SWARMAVAIL_PROF_SCOPE(name) static_cast<void>(0)
#else
/// Times the enclosing block under phase `name` (a string literal). The
/// phase index is registered once per call site via a function-local static.
#define SWARMAVAIL_PROF_SCOPE(name)                                              \
    static const std::size_t SWARMAVAIL_PROF_CAT(swarmavail_prof_id_, __LINE__) = \
        ::swarmavail::prof::Profiler::register_phase(name);                       \
    const ::swarmavail::prof::ProfScope SWARMAVAIL_PROF_CAT(                      \
        swarmavail_prof_scope_, __LINE__) {                                       \
        SWARMAVAIL_PROF_CAT(swarmavail_prof_id_, __LINE__)                        \
    }
#endif
