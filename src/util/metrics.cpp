#include "util/metrics.hpp"

#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace swarmavail {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins,
                                 HistogramScale scale)
    : lo_(lo), hi_(hi), scale_(scale) {
    require(bins >= 1, "HistogramMetric: needs at least one bin");
    require(hi > lo, "HistogramMetric: hi must exceed lo");
    if (scale_ == HistogramScale::kLog2) {
        require(lo > 0.0, "HistogramMetric: log scale requires lo > 0");
        // Base-2 logs, not natural: log2/exp2 are exact at powers of two,
        // so for power-of-two lo/hi the bucket edges land exactly on the
        // powers of two and an edge value never rounds into the wrong bin.
        log_lo_ = std::log2(lo_);
        inv_log_ratio_ = static_cast<double>(bins) / (std::log2(hi_) - log_lo_);
    } else {
        inv_width_ = static_cast<double>(bins) / (hi_ - lo_);
    }
    counts_.assign(bins, 0);
}

std::size_t HistogramMetric::bucket_of(double x) const noexcept {
    double position = 0.0;
    if (scale_ == HistogramScale::kLog2) {
        if (x <= lo_) {
            return 0;
        }
        position = (std::log2(x) - log_lo_) * inv_log_ratio_;
    } else {
        position = (x - lo_) * inv_width_;
    }
    if (position <= 0.0) {
        return 0;
    }
    const auto bucket = static_cast<std::size_t>(position);
    return bucket >= counts_.size() ? counts_.size() - 1 : bucket;
}

void HistogramMetric::add(double x) noexcept {
    ++counts_[bucket_of(x)];
    ++total_;
    stats_.add(x);
}

std::uint64_t HistogramMetric::bin_count(std::size_t i) const {
    require(i < counts_.size(), "HistogramMetric::bin_count: bin out of range");
    return counts_[i];
}

double HistogramMetric::bin_lo(std::size_t i) const {
    require(i < counts_.size(), "HistogramMetric::bin_lo: bin out of range");
    if (scale_ == HistogramScale::kLog2) {
        return std::exp2(log_lo_ + static_cast<double>(i) / inv_log_ratio_);
    }
    return lo_ + static_cast<double>(i) / inv_width_;
}

double HistogramMetric::bin_hi(std::size_t i) const {
    require(i < counts_.size(), "HistogramMetric::bin_hi: bin out of range");
    return i + 1 == counts_.size() ? hi_ : bin_lo(i + 1);
}

void HistogramMetric::merge(const HistogramMetric& other) {
    require(lo_ == other.lo_ && hi_ == other.hi_ &&
                counts_.size() == other.counts_.size() && scale_ == other.scale_,
            "HistogramMetric::merge: shapes differ");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
    stats_.merge(other.stats_);
}

/// One registered metric: the name, the kind tag, and exactly one of the
/// payloads below (a tagged union spelled as optional-by-kind members; the
/// registry is not hot enough to justify a real variant).
struct MetricsRegistry::Entry {
    std::string name;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<HistogramMetric> histogram;

    Entry(std::string entry_name, MetricKind entry_kind)
        : name(std::move(entry_name)), kind(entry_kind) {}
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;
MetricsRegistry::MetricsRegistry(MetricsRegistry&&) noexcept = default;
MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&&) noexcept = default;

MetricsRegistry::Entry& MetricsRegistry::get_or_create(std::string_view name,
                                                       MetricKind kind) {
    const auto it = index_.find(std::string{name});
    if (it != index_.end()) {
        Entry& entry = *entries_[it->second];
        require(entry.kind == kind,
                "MetricsRegistry: name already registered as a different kind: " +
                    entry.name);
        return entry;
    }
    entries_.push_back(std::make_unique<Entry>(std::string{name}, kind));
    index_.emplace(entries_.back()->name, entries_.size() - 1);
    return *entries_.back();
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    MetricKind kind) const noexcept {
    const auto it = index_.find(std::string{name});
    if (it == index_.end() || entries_[it->second]->kind != kind) {
        return nullptr;
    }
    return entries_[it->second].get();
}

Counter& MetricsRegistry::counter(std::string_view name) {
    return get_or_create(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    return get_or_create(name, MetricKind::kGauge).gauge;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t bins,
                                            HistogramScale scale) {
    Entry& entry = get_or_create(name, MetricKind::kHistogram);
    if (entry.histogram == nullptr) {
        entry.histogram = std::make_unique<HistogramMetric>(lo, hi, bins, scale);
    } else {
        require(entry.histogram->bins() == bins && entry.histogram->scale() == scale &&
                    entry.histogram->lo() == lo && entry.histogram->hi() == hi,
                "MetricsRegistry::histogram: shape differs from first registration: " +
                    entry.name);
    }
    return *entry.histogram;
}

std::vector<std::string> MetricsRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_) {
        out.push_back(entry->name);
    }
    return out;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const noexcept {
    const Entry* entry = find(name, MetricKind::kCounter);
    return entry == nullptr ? nullptr : &entry->counter;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const noexcept {
    const Entry* entry = find(name, MetricKind::kGauge);
    return entry == nullptr ? nullptr : &entry->gauge;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    std::string_view name) const noexcept {
    const Entry* entry = find(name, MetricKind::kHistogram);
    return entry == nullptr ? nullptr : entry->histogram.get();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    for (const auto& theirs : other.entries_) {
        switch (theirs->kind) {
            case MetricKind::kCounter:
                counter(theirs->name).merge(theirs->counter);
                break;
            case MetricKind::kGauge:
                gauge(theirs->name).merge(theirs->gauge);
                break;
            case MetricKind::kHistogram: {
                // An unshaped histogram (registered but never configured)
                // cannot occur: histogram() always constructs the payload.
                const HistogramMetric& h = *theirs->histogram;
                histogram(theirs->name, h.lo(), h.hi(), h.bins(), h.scale()).merge(h);
                break;
            }
        }
    }
}

void MetricsRegistry::write_json(std::ostream& os) const {
    os << '[';
    bool first = true;
    for (const auto& entry : entries_) {
        if (!first) {
            os << ',';
        }
        first = false;
        os << "\n  {\"name\":\"" << entry->name << "\",";
        switch (entry->kind) {
            case MetricKind::kCounter:
                os << "\"kind\":\"counter\",\"value\":" << entry->counter.value();
                break;
            case MetricKind::kGauge: {
                const auto& stats = entry->gauge.stats();
                os << "\"kind\":\"gauge\",\"value\":"
                   << format_double_exact(entry->gauge.value())
                   << ",\"count\":" << stats.count()
                   << ",\"mean\":" << format_double_exact(stats.mean())
                   << ",\"min\":" << format_double_exact(stats.min())
                   << ",\"max\":" << format_double_exact(stats.max());
                break;
            }
            case MetricKind::kHistogram: {
                const HistogramMetric& h = *entry->histogram;
                os << "\"kind\":\"histogram\",\"total\":" << h.total()
                   << ",\"mean\":" << format_double_exact(h.stats().mean())
                   << ",\"scale\":"
                   << (h.scale() == HistogramScale::kLog2 ? "\"log2\"" : "\"linear\"")
                   << ",\"bins\":[";
                for (std::size_t i = 0; i < h.bins(); ++i) {
                    os << (i == 0 ? "" : ",") << h.bin_count(i);
                }
                os << ']';
                break;
            }
        }
        os << '}';
    }
    os << "\n]\n";
}

}  // namespace swarmavail
