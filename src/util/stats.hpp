// Streaming and batch statistics used by the simulators and benches:
// Welford accumulators, sample summaries with quantiles and confidence
// intervals, empirical CDFs, and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <vector>

namespace swarmavail {

/// Numerically stable streaming mean/variance accumulator (Welford).
class StreamingStats {
 public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    /// Mean of the observations added so far; 0 if empty.
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance; 0 with fewer than two observations.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean; 0 with fewer than two observations.
    [[nodiscard]] double std_error() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept;

    /// Half-width of the ~95% normal-approximation confidence interval for
    /// the mean (1.96 standard errors). 0 with fewer than two observations.
    [[nodiscard]] double ci95_halfwidth() const noexcept;

    /// Merges another accumulator into this one (parallel Welford).
    void merge(const StreamingStats& other) noexcept;

 private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch sample container offering quantiles in addition to moments.
/// Keeps all observations; intended for per-experiment result vectors
/// (thousands of samples), not unbounded streams.
class SampleSet {
 public:
    SampleSet() = default;
    /// Takes ownership of an existing batch of observations.
    explicit SampleSet(std::vector<double> samples) : samples_(std::move(samples)) {}

    void add(double x);
    void add_all(const std::vector<double>& xs);

    /// Appends another set's observations (in their original order) and
    /// leaves `other` empty. Merging preserves pooled moments and quantiles
    /// exactly: the result is identical to having added every observation
    /// to one set in sequence. Used by the parallel replication engine to
    /// combine per-replication batches in index order.
    void merge(SampleSet&& other);

    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    /// Linear-interpolation quantile, q in [0, 1]. Requires non-empty set.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double median() const { return quantile(0.5); }
    [[nodiscard]] double ci95_halfwidth() const;

    [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
    void sort_if_needed() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

/// Empirical CDF over a batch of observations.
class EmpiricalCdf {
 public:
    explicit EmpiricalCdf(std::vector<double> samples);

    /// Fraction of observations <= x.
    [[nodiscard]] double operator()(double x) const;
    /// Inverse CDF (lower quantile), q in [0, 1]. Requires non-empty data.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

    /// Evaluates the CDF at `points` evenly spaced values covering
    /// [lo, hi]; convenient for printing CDF curves in benches.
    [[nodiscard]] std::vector<std::pair<double, double>> curve(
        double lo, double hi, std::size_t points) const;

 private:
    std::vector<double> sorted_;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values are clamped
/// into the first/last bin so totals are preserved.
class Histogram {
 public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    [[nodiscard]] std::size_t bin_count(std::size_t i) const;
    [[nodiscard]] double bin_lo(std::size_t i) const;
    [[nodiscard]] double bin_hi(std::size_t i) const;
    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    /// Fraction of observations in bin i; 0 if empty.
    [[nodiscard]] double bin_fraction(std::size_t i) const;

 private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

}  // namespace swarmavail
