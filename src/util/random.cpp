#include "util/random.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace swarmavail {
namespace {

// SplitMix64: expands a single seed into well-distributed state words.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

std::uint64_t Rng::poisson(double mean) {
    require(mean >= 0.0, "poisson: requires mean >= 0");
    if (mean == 0.0) {
        return 0;
    }
    if (mean < 30.0) {
        // Inversion by sequential search (Devroye): exact and fast for small means.
        const double limit = std::exp(-mean);
        double prod = uniform();
        std::uint64_t count = 0;
        while (prod > limit) {
            prod *= uniform();
            ++count;
        }
        return count;
    }
    // For large means, use the normal approximation with continuity
    // correction and rejection against negativity. Error is negligible for
    // mean >= 30 at the accuracy the simulators need.
    const double stddev = std::sqrt(mean);
    for (;;) {
        // Box-Muller.
        const double u1 = std::max(uniform(), 1e-300);
        const double u2 = uniform();
        const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        const double candidate = mean + stddev * z + 0.5;
        if (candidate >= 0.0) {
            return static_cast<std::uint64_t>(candidate);
        }
    }
}

bool Rng::bernoulli(double p) {
    require(p >= 0.0 && p <= 1.0, "bernoulli: requires p in [0, 1]");
    return uniform() < p;
}

double Rng::pareto(double xm, double shape) {
    require(xm > 0.0, "pareto: requires xm > 0");
    require(shape > 0.0, "pareto: requires shape > 0");
    double v = uniform();
    while (v <= 0.0) {
        v = uniform();
    }
    return xm / std::pow(v, 1.0 / shape);
}

Rng Rng::fork() noexcept {
    return Rng{(*this)()};
}

std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights) {
    require(!weights.empty(), "sample_discrete: requires non-empty weights");
    double total = 0.0;
    for (double w : weights) {
        require(w >= 0.0, "sample_discrete: weights must be non-negative");
        total += w;
    }
    require(total > 0.0, "sample_discrete: weights must have positive sum");
    const double target = rng.uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc) {
            return i;
        }
    }
    return weights.size() - 1;  // guard against floating-point shortfall
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) : exponent_(exponent) {
    require(n >= 1, "ZipfDistribution: requires n >= 1");
    require(exponent >= 0.0, "ZipfDistribution: requires exponent >= 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
        acc += std::pow(static_cast<double>(k), -exponent);
        cdf_[k - 1] = acc;
    }
    for (auto& c : cdf_) {
        c /= acc;
    }
    cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t k) const {
    require(k >= 1 && k <= cdf_.size(), "ZipfDistribution::pmf: rank out of range");
    const double upper = cdf_[k - 1];
    const double lower = (k == 1) ? 0.0 : cdf_[k - 2];
    return upper - lower;
}

}  // namespace swarmavail
