#include "util/table.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace swarmavail {

TableWriter::TableWriter(std::vector<std::string> header) : header_(std::move(header)) {
    require(!header_.empty(), "TableWriter: header must not be empty");
}

void TableWriter::add_row(std::vector<std::string> row) {
    require(row.size() == header_.size(),
            "TableWriter::add_row: row length must match header length");
    rows_.push_back(std::move(row));
}

void TableWriter::add_numeric_row(const std::vector<double>& row, int precision) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) {
        cells.push_back(format_double(v, precision));
    }
    add_row(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };
    print_row(header_);
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
        return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') {
            out += '"';
        }
        out += ch;
    }
    out += '"';
    return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c != 0) {
            os << ',';
        }
        os << csv_escape(cells[c]);
    }
    os << '\n';
}

void TableWriter::print_csv(std::ostream& os) const {
    write_csv_row(os, header_);
    for (const auto& row : rows_) {
        write_csv_row(os, row);
    }
}

std::string format_double(double value, int precision) {
    std::ostringstream ss;
    ss.precision(precision);
    ss << value;
    return ss.str();
}

std::string format_double_exact(double value) {
    std::array<char, 32> buffer{};
    const auto [end, ec] = std::to_chars(buffer.data(), buffer.data() + buffer.size(),
                                         value);
    ensure(ec == std::errc{}, "format_double_exact: to_chars failed");
    return std::string{buffer.data(), end};
}

void print_banner(std::ostream& os, const std::string& title) {
    os << "\n== " << title << " ==\n";
}

}  // namespace swarmavail
