#include "util/profile.hpp"

#include <array>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace swarmavail::prof {

namespace detail {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace detail

namespace {

/// One thread's accumulators. Relaxed atomics: the owning thread is the
/// only writer; snapshot() reads concurrently without tearing.
struct PhaseSlots {
    std::array<std::atomic<std::uint64_t>, Profiler::kMaxPhases> calls{};
    std::array<std::atomic<std::uint64_t>, Profiler::kMaxPhases> ns{};
};

struct Registry {
    std::mutex mutex;
    std::vector<std::string> names;              ///< phase index -> name
    std::vector<std::unique_ptr<PhaseSlots>> slots;  ///< one block per thread
};

Registry& registry() {
    static Registry instance;
    return instance;
}

/// This thread's slot block; allocated on first record and owned by the
/// registry (kept alive past thread exit so snapshot() stays valid).
PhaseSlots& thread_slots() {
    thread_local PhaseSlots* slots = [] {
        auto owned = std::make_unique<PhaseSlots>();
        PhaseSlots* raw = owned.get();
        Registry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        reg.slots.push_back(std::move(owned));
        return raw;
    }();
    return *slots;
}

}  // namespace

std::size_t Profiler::register_phase(std::string_view name) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (std::size_t i = 0; i < reg.names.size(); ++i) {
        if (reg.names[i] == name) {
            return i;
        }
    }
    require(reg.names.size() < kMaxPhases,
            "Profiler::register_phase: too many distinct phases");
    reg.names.emplace_back(name);
    return reg.names.size() - 1;
}

void Profiler::record(std::size_t phase, std::uint64_t ns) noexcept {
    PhaseSlots& slots = thread_slots();
    slots.calls[phase].fetch_add(1, std::memory_order_relaxed);
    slots.ns[phase].fetch_add(ns, std::memory_order_relaxed);
}

std::vector<PhaseTotal> Profiler::snapshot() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<PhaseTotal> out(reg.names.size());
    for (std::size_t i = 0; i < reg.names.size(); ++i) {
        out[i].name = reg.names[i];
    }
    for (const auto& slots : reg.slots) {
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i].calls += slots->calls[i].load(std::memory_order_relaxed);
            out[i].seconds +=
                static_cast<double>(slots->ns[i].load(std::memory_order_relaxed)) * 1e-9;
        }
    }
    return out;
}

void Profiler::reset() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& slots : reg.slots) {
        for (std::size_t i = 0; i < kMaxPhases; ++i) {
            slots->calls[i].store(0, std::memory_order_relaxed);
            slots->ns[i].store(0, std::memory_order_relaxed);
        }
    }
}

void Profiler::write_json(std::ostream& os) {
    const std::vector<PhaseTotal> phases = snapshot();
    os << "{\"phases\":[";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        os << (i == 0 ? "" : ",") << "\n  {\"name\":\"" << phases[i].name
           << "\",\"calls\":" << phases[i].calls
           << ",\"seconds\":" << format_double_exact(phases[i].seconds) << '}';
    }
    os << "\n]}\n";
}

std::uint64_t ProfScope::now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace swarmavail::prof
