// Metrics registry for the simulation engines: counters, gauges, and
// fixed-bucket / log-scale histograms behind a name-keyed registry.
//
// Threading and determinism model: a registry is single-owner — each
// simulator (and each replication inside the parallel engine) writes to its
// own instance, so the hot path is plain unsynchronized arithmetic (no
// atomics, no locks). Parallel replications buffer one registry per index
// and the harness folds them with merge() strictly in index order — the
// same index-order reduction StreamingStats/SampleSet use — so merged
// metrics are bit-identical for every thread count.
//
// Hot-path usage: resolve metric references once at setup
// (`Counter& arrivals = registry.counter("arrivals");`) and increment the
// references inside event handlers; the name lookup never runs per event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace swarmavail {

/// Monotone event counter.
class Counter {
 public:
    void add(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

    /// Counters merge by summation.
    void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
    std::uint64_t value_ = 0;
};

/// Last-value gauge that also keeps streaming statistics over every set()
/// (so a sampled series — queue depth, population — yields mean/min/max
/// without storing the samples).
class Gauge {
 public:
    void set(double value) noexcept {
        value_ = value;
        stats_.add(value);
    }

    [[nodiscard]] double value() const noexcept { return value_; }
    [[nodiscard]] const StreamingStats& stats() const noexcept { return stats_; }

    /// Merges the sample statistics (parallel Welford); the merged last
    /// value is the other side's if it ever recorded (merge order is the
    /// replication index order, so "later replication wins" deterministically).
    void merge(const Gauge& other) noexcept {
        stats_.merge(other.stats_);
        if (other.stats_.count() > 0) {
            value_ = other.value_;
        }
    }

 private:
    double value_ = 0.0;
    StreamingStats stats_;
};

/// Bucket layout of a HistogramMetric.
enum class HistogramScale {
    kLinear,  ///< equal-width bins over [lo, hi)
    kLog2,    ///< geometric bins over [lo, hi); lo must be > 0
};

/// Bucketed histogram with clamping semantics (out-of-range observations
/// land in the first/last bin so totals are preserved) plus streaming
/// moments over the raw values.
class HistogramMetric {
 public:
    /// Requires hi > lo, bins >= 1, and lo > 0 for the log scale.
    HistogramMetric(double lo, double hi, std::size_t bins,
                    HistogramScale scale = HistogramScale::kLinear);

    void add(double x) noexcept;

    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }
    [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
    /// Lower/upper edge of bin i (clamping means observations outside
    /// [lo, hi) are counted in the edge bins regardless).
    [[nodiscard]] double bin_lo(std::size_t i) const;
    [[nodiscard]] double bin_hi(std::size_t i) const;
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] HistogramScale scale() const noexcept { return scale_; }
    /// Streaming moments over the exact observed values (not bin midpoints).
    [[nodiscard]] const StreamingStats& stats() const noexcept { return stats_; }

    /// Merges bin counts and moments. Requires identical shape
    /// (lo/hi/bins/scale); throws std::invalid_argument otherwise.
    void merge(const HistogramMetric& other);

 private:
    [[nodiscard]] std::size_t bucket_of(double x) const noexcept;

    double lo_;
    double hi_;
    double log_lo_ = 0.0;        ///< cached log2(lo) for the log scale
    double inv_log_ratio_ = 0.0; ///< bins / log2(hi / lo) for the log scale
    double inv_width_ = 0.0;     ///< bins / (hi - lo) for the linear scale
    HistogramScale scale_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    StreamingStats stats_;
};

/// What a registry entry is; exposed for introspection/reporting.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Name-keyed collection of metrics with deterministic (registration-order)
/// iteration and index-order merge. Move-only: replication harnesses keep a
/// vector of per-index registries and fold them into one.
class MetricsRegistry {
 public:
    // Special members live in metrics.cpp: Entry is incomplete here.
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(MetricsRegistry&&) noexcept;
    MetricsRegistry& operator=(MetricsRegistry&&) noexcept;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Returns the counter registered under `name`, creating it on first
    /// use. Throws std::invalid_argument if `name` is already registered as
    /// a different kind. The reference stays valid for the registry's life.
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    /// For an existing histogram the shape arguments must match the
    /// original registration (mismatch throws).
    HistogramMetric& histogram(std::string_view name, double lo, double hi,
                               std::size_t bins,
                               HistogramScale scale = HistogramScale::kLinear);

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    /// Metric names in registration order (the merge/reporting order).
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] const Counter* find_counter(std::string_view name) const noexcept;
    [[nodiscard]] const Gauge* find_gauge(std::string_view name) const noexcept;
    [[nodiscard]] const HistogramMetric* find_histogram(
        std::string_view name) const noexcept;

    /// Merges `other` into this registry: entries are matched by name
    /// (missing ones are created with the other side's shape) and combined
    /// with the per-metric merge rules. Folding per-replication registries
    /// in index order yields bit-identical results at any thread count.
    /// Throws std::invalid_argument on a name registered as different kinds
    /// or histograms with different shapes.
    void merge(const MetricsRegistry& other);

    /// Writes the whole registry as a JSON array in registration order:
    /// [{"name":...,"kind":"counter","value":N}, ...]. Doubles use the
    /// shortest exact representation.
    void write_json(std::ostream& os) const;

 private:
    struct Entry;

    Entry& get_or_create(std::string_view name, MetricKind kind);
    [[nodiscard]] const Entry* find(std::string_view name,
                                    MetricKind kind) const noexcept;

    std::vector<std::unique_ptr<Entry>> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace swarmavail
