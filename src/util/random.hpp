// Deterministic, fast pseudo-random generation for simulations.
//
// All simulators in this library draw randomness through `Rng`, a
// xoshiro256** generator with SplitMix64 seeding. A single 64-bit seed fully
// determines a simulation run, which keeps experiments reproducible and lets
// tests pin expected statistical behaviour.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace swarmavail {

/// xoshiro256** pseudo-random generator (Blackman & Vigna), seeded via
/// SplitMix64. Satisfies std::uniform_random_bit_generator so it can also be
/// plugged into <random> distributions, though the methods below are the
/// preferred sampling interface.
class Rng {
 public:
    using result_type = std::uint64_t;

    /// Constructs a generator whose entire stream is determined by `seed`.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    // The raw generator and the bounded draws are defined inline: they sit
    // inside simulator shuffle/tie-break loops that draw millions of times
    // per run, where an out-of-line call would cost more than the draw.

    /// Next raw 64-bit output.
    result_type operator()() noexcept {
        const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17U;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = std::rotl(state_[3], 45);
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
        ++draws_;
#endif
        return result;
    }

#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    /// Raw 64-bit outputs generated so far. A determinism-fingerprint
    /// probe (two runs consuming different draw counts diverged even if
    /// their visible results agree); counter and accessor are absent under
    /// SWARMAVAIL_FINGERPRINT_DISABLED so the generator pays nothing.
    [[nodiscard]] std::uint64_t draws() const noexcept { return draws_; }
#endif

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept {
        // 53 high bits -> double in [0, 1).
        return static_cast<double>((*this)() >> 11U) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi). Requires lo < hi.
    [[nodiscard]] double uniform(double lo, double hi) {
        require(lo < hi, "uniform(lo, hi): requires lo < hi");
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). Requires n > 0.
    [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
        require(n > 0, "uniform_index: requires n > 0");
        // Lemire's nearly-divisionless bounded sampling with rejection.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = -n % n;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64U);
    }

    /// Exponential variate with the given mean. Requires mean > 0.
    /// Inline for the same reason as the draws above: every simulated
    /// arrival, transfer, and residence time is one of these.
    [[nodiscard]] double exponential_mean(double mean) {
        require(mean > 0.0, "exponential_mean: requires mean > 0");
        double v = uniform();
        // uniform() can return exactly 0; -log(0) would be inf.
        while (v <= 0.0) {
            v = uniform();
        }
        return -mean * std::log(v);
    }

    /// Exponential variate with the given rate. Requires rate > 0.
    [[nodiscard]] double exponential_rate(double rate) {
        require(rate > 0.0, "exponential_rate: requires rate > 0");
        return exponential_mean(1.0 / rate);
    }

    /// Poisson variate with the given mean (inversion for small means,
    /// PTRS-style transformed rejection for large). Requires mean >= 0.
    [[nodiscard]] std::uint64_t poisson(double mean);

    /// Bernoulli trial with success probability p in [0, 1].
    [[nodiscard]] bool bernoulli(double p);

    /// Pareto (Lomax-shifted) variate with scale xm > 0 and shape a > 0:
    /// support [xm, inf), heavy-tailed for small a. Used for synthetic
    /// heavy-tailed popularity/capacity mixes.
    [[nodiscard]] double pareto(double xm, double shape);

    /// Forks an independent generator: the child is seeded from this
    /// generator's stream, so sub-simulations stay reproducible without
    /// sharing a sequence.
    [[nodiscard]] Rng fork() noexcept;

 private:
    std::array<std::uint64_t, 4> state_{};
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    std::uint64_t draws_ = 0;
#endif
};

/// Samples an index in [0, weights.size()) with probability proportional to
/// weights[i]. Requires a non-empty vector of non-negative weights with a
/// positive sum.
[[nodiscard]] std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights);

/// Zipf distribution over ranks {1, ..., n}: P(k) proportional to k^-s.
/// Precomputes the CDF; sampling is O(log n).
class ZipfDistribution {
 public:
    /// Requires n >= 1 and exponent >= 0 (exponent 0 is uniform).
    ZipfDistribution(std::size_t n, double exponent);

    /// Returns a rank in [1, n].
    [[nodiscard]] std::size_t sample(Rng& rng) const;

    /// P(rank = k), k in [1, n].
    [[nodiscard]] double pmf(std::size_t k) const;

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
    [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
    std::vector<double> cdf_;  // cumulative probabilities, back() == 1
    double exponent_{};
};

}  // namespace swarmavail
