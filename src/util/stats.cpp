#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace swarmavail {

void StreamingStats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept {
    return std::sqrt(variance());
}

double StreamingStats::std_error() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double StreamingStats::sum() const noexcept {
    return mean_ * static_cast<double>(count_);
}

double StreamingStats::ci95_halfwidth() const noexcept {
    return 1.96 * std_error();
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
}

void SampleSet::add_all(const std::vector<double>& xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_valid_ = false;
}

void SampleSet::merge(SampleSet&& other) {
    if (other.samples_.empty()) {
        return;
    }
    if (samples_.empty()) {
        samples_ = std::move(other.samples_);
    } else {
        samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    }
    other.samples_.clear();
    other.sorted_valid_ = false;
    sorted_valid_ = false;
}

double SampleSet::mean() const {
    require(!samples_.empty(), "SampleSet::mean: empty sample set");
    double acc = 0.0;
    for (double x : samples_) {
        acc += x;
    }
    return acc / static_cast<double>(samples_.size());
}

double SampleSet::variance() const {
    require(!samples_.empty(), "SampleSet::variance: empty sample set");
    if (samples_.size() < 2) {
        return 0.0;
    }
    const double m = mean();
    double acc = 0.0;
    for (double x : samples_) {
        acc += (x - m) * (x - m);
    }
    return acc / static_cast<double>(samples_.size() - 1);
}

double SampleSet::stddev() const {
    return std::sqrt(variance());
}

double SampleSet::min() const {
    require(!samples_.empty(), "SampleSet::min: empty sample set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
    require(!samples_.empty(), "SampleSet::max: empty sample set");
    return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::sort_if_needed() const {
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double SampleSet::quantile(double q) const {
    require(!samples_.empty(), "SampleSet::quantile: empty sample set");
    require(q >= 0.0 && q <= 1.0, "SampleSet::quantile: q must be in [0, 1]");
    sort_if_needed();
    if (sorted_.size() == 1) {
        return sorted_.front();
    }
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= sorted_.size()) {
        return sorted_.back();
    }
    return sorted_[idx] * (1.0 - frac) + sorted_[idx + 1] * frac;
}

double SampleSet::ci95_halfwidth() const {
    require(!samples_.empty(), "SampleSet::ci95_halfwidth: empty sample set");
    if (samples_.size() < 2) {
        return 0.0;
    }
    return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
    if (sorted_.empty()) {
        return 0.0;
    }
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
    require(!sorted_.empty(), "EmpiricalCdf::quantile: empty data");
    require(q >= 0.0 && q <= 1.0, "EmpiricalCdf::quantile: q must be in [0, 1]");
    if (q >= 1.0) {
        return sorted_.back();
    }
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_.size()));
    return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    double lo, double hi, std::size_t points) const {
    require(points >= 2, "EmpiricalCdf::curve: requires at least 2 points");
    require(lo <= hi, "EmpiricalCdf::curve: requires lo <= hi");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
        out.emplace_back(x, (*this)(x));
    }
    return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
    require(bins >= 1, "Histogram: requires at least one bin");
    require(lo < hi, "Histogram: requires lo < hi");
    width_ = (hi - lo) / static_cast<double>(bins);
    counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
    auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
    require(i < counts_.size(), "Histogram::bin_count: bin index out of range");
    return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
    require(i < counts_.size(), "Histogram::bin_lo: bin index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
    return bin_lo(i) + width_;
}

double Histogram::bin_fraction(std::size_t i) const {
    if (total_ == 0) {
        return 0.0;
    }
    return static_cast<double>(bin_count(i)) / static_cast<double>(total_);
}

}  // namespace swarmavail
