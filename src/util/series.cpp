#include "util/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace swarmavail {

SeriesResult sum_series(const std::function<double(std::size_t)>& term,
                        const SeriesOptions& options) {
    require(options.max_terms >= 1, "sum_series: max_terms must be >= 1");
    SeriesResult result;
    std::size_t consecutive_small = 0;
    for (std::size_t i = 1; i <= options.max_terms; ++i) {
        const double t = term(i);
        result.value += t;
        result.terms = i;
        if (!std::isfinite(result.value)) {
            // The series saturated (e.g. busy period ~ e^{K^2}); report as-is.
            result.converged = true;
            return result;
        }
        const double scale = std::max(std::abs(result.value), 1e-300);
        if (i >= options.min_terms && std::abs(t) <= options.rel_tol * scale) {
            if (++consecutive_small >= 2) {
                result.converged = true;
                return result;
            }
        } else {
            consecutive_small = 0;
        }
    }
    return result;
}

double log_factorial(std::size_t n) {
    return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::size_t n, std::size_t k) {
    require(k <= n, "log_binomial: requires k <= n");
    return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double poisson_pmf(std::size_t k, double mu) {
    require(mu >= 0.0, "poisson_pmf: requires mu >= 0");
    if (mu == 0.0) {
        return k == 0 ? 1.0 : 0.0;
    }
    const double log_p =
        static_cast<double>(k) * std::log(mu) - mu - log_factorial(k);
    return std::exp(log_p);
}

double log_add_exp(double a, double b) {
    if (std::isinf(a) && a < 0.0) {
        return b;
    }
    if (std::isinf(b) && b < 0.0) {
        return a;
    }
    const double hi = std::max(a, b);
    const double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

double expm1_over(double x, double y) {
    require(y > 0.0, "expm1_over: requires y > 0");
    if (x > 700.0) {
        // exp would overflow; the quantity is effectively infinite.
        return std::numeric_limits<double>::infinity();
    }
    return std::expm1(x) / y;
}

double relative_difference(double a, double b, double floor) {
    const double scale = std::max({std::abs(a), std::abs(b), floor});
    return std::abs(a - b) / scale;
}

}  // namespace swarmavail
