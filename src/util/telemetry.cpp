#include "util/telemetry.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/table.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace swarmavail::telemetry {

// ---------------------------------------------------------------------------
// ConvergenceTracker

void ConvergenceTracker::observe(std::string_view metric, double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Slot& slot : slots_) {
        if (slot.name == metric) {
            slot.stats.add(value);
            slot.last = value;
            return;
        }
    }
    // Linear scan on registration: the tracker holds a handful of run-level
    // estimates, not a metric namespace.
    Slot slot;
    slot.name = std::string{metric};
    slot.stats.add(value);
    slot.last = value;
    slots_.push_back(std::move(slot));
}

std::vector<TrackedStat> ConvergenceTracker::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TrackedStat> out;
    out.reserve(slots_.size());
    for (const Slot& slot : slots_) {
        TrackedStat stat;
        stat.name = slot.name;
        stat.count = slot.stats.count();
        stat.mean = slot.stats.mean();
        stat.ci95_halfwidth = slot.stats.ci95_halfwidth();
        stat.min = slot.stats.min();
        stat.max = slot.stats.max();
        stat.last = slot.last;
        out.push_back(std::move(stat));
    }
    return out;
}

// ---------------------------------------------------------------------------
// RSS

bool read_process_rss(std::uint64_t& rss_bytes, std::uint64_t& peak_rss_bytes) {
    rss_bytes = 0;
    peak_rss_bytes = 0;
#if defined(__linux__)
    std::ifstream status("/proc/self/status");
    if (!status) {
        return false;
    }
    std::string line;
    while (std::getline(status, line)) {
        std::uint64_t* target = nullptr;
        std::size_t prefix = 0;
        if (line.rfind("VmRSS:", 0) == 0) {
            target = &rss_bytes;
            prefix = 6;
        } else if (line.rfind("VmHWM:", 0) == 0) {
            target = &peak_rss_bytes;
            prefix = 6;
        }
        if (target == nullptr) {
            continue;
        }
        // "VmRSS:     1234 kB"
        std::uint64_t kb = 0;
        bool any = false;
        for (std::size_t i = prefix; i < line.size(); ++i) {
            const char c = line[i];
            if (c >= '0' && c <= '9') {
                kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
                any = true;
            } else if (any) {
                break;
            }
        }
        *target = kb * 1024;
    }
    return rss_bytes > 0 || peak_rss_bytes > 0;
#else
    return false;
#endif
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

void write_tracked_json(const TrackedStat& stat, std::ostream& os) {
    os << "{\"name\":\"" << stat.name << "\",\"count\":" << stat.count
       << ",\"mean\":" << format_double_exact(stat.mean)
       << ",\"ci95\":" << format_double_exact(stat.ci95_halfwidth)
       << ",\"min\":" << format_double_exact(stat.min)
       << ",\"max\":" << format_double_exact(stat.max)
       << ",\"last\":" << format_double_exact(stat.last) << "}";
}

}  // namespace

void JsonlTelemetryExporter::export_snapshot(const TelemetrySnapshot& s) {
    os_ << "{\"seq\":" << s.sequence
        << ",\"wall_s\":" << format_double_exact(s.wall_time_s)
        << ",\"final\":" << (s.final_snapshot ? "true" : "false")
        << ",\"replications_total\":" << s.replications_total
        << ",\"replications_completed\":" << s.replications_completed
        << ",\"swarms_total\":" << s.swarms_total
        << ",\"swarms_completed\":" << s.swarms_completed
        << ",\"events_dispatched\":" << s.events_dispatched
        << ",\"events_per_s\":" << format_double_exact(s.events_per_s)
        << ",\"sim_time_advanced\":" << format_double_exact(s.sim_time_advanced)
        << ",\"sim_time_target\":" << format_double_exact(s.sim_time_target)
        << ",\"sim_time_rate\":" << format_double_exact(s.sim_time_rate)
        << ",\"queue_depth\":" << format_double_exact(s.queue_depth)
        << ",\"progress\":" << format_double_exact(s.progress)
        << ",\"eta_s\":" << format_double_exact(s.eta_s)
        << ",\"rss_bytes\":" << s.rss_bytes
        << ",\"peak_rss_bytes\":" << s.peak_rss_bytes
        << ",\"fingerprint_xor\":" << s.fingerprint_xor << ",\"tracked\":[";
    for (std::size_t i = 0; i < s.tracked.size(); ++i) {
        if (i > 0) {
            os_ << ',';
        }
        write_tracked_json(s.tracked[i], os_);
    }
    os_ << "]}\n";
    os_.flush();  // tailers must see whole lines as they happen
}

MemoryTelemetryExporter::MemoryTelemetryExporter(std::size_t capacity)
    : capacity_(capacity) {
    require(capacity >= 1, "MemoryTelemetryExporter: capacity must be >= 1");
}

void MemoryTelemetryExporter::export_snapshot(const TelemetrySnapshot& snapshot) {
    if (snapshots_.size() >= capacity_) {
        snapshots_.erase(snapshots_.begin());
        ++dropped_;
    }
    snapshots_.push_back(snapshot);
}

namespace {

/// Sanitizes a tracked-metric name into a Prometheus label value (the
/// exposition's one quoting context): backslash, quote, newline escaped.
std::string prometheus_label_value(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        if (c == '\\' || c == '"') {
            out.push_back('\\');
            out.push_back(c);
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out.push_back(c);
        }
    }
    return out;
}

void prom_sample(std::ostream& os, const char* name, const char* help,
                 const char* type, double value) {
    os << "# HELP " << name << ' ' << help << '\n'
       << "# TYPE " << name << ' ' << type << '\n'
       << name << ' ' << format_double_exact(value) << '\n';
}

}  // namespace

void write_prometheus(const TelemetrySnapshot& s, std::ostream& os) {
    prom_sample(os, "swarmavail_snapshot_sequence",
                "Telemetry snapshot sequence number.", "counter",
                static_cast<double>(s.sequence));
    prom_sample(os, "swarmavail_wall_time_seconds",
                "Wall-clock seconds since the telemetry session started.",
                "counter", s.wall_time_s);
    prom_sample(os, "swarmavail_replications_total",
                "Replications the run intends to execute.", "gauge",
                static_cast<double>(s.replications_total));
    prom_sample(os, "swarmavail_replications_completed",
                "Replications completed so far.", "counter",
                static_cast<double>(s.replications_completed));
    prom_sample(os, "swarmavail_swarms_total",
                "Catalog swarms the run intends to simulate.", "gauge",
                static_cast<double>(s.swarms_total));
    prom_sample(os, "swarmavail_swarms_completed", "Catalog swarms completed so far.",
                "counter", static_cast<double>(s.swarms_completed));
    prom_sample(os, "swarmavail_events_dispatched_total",
                "Simulation events dispatched so far.", "counter",
                static_cast<double>(s.events_dispatched));
    prom_sample(os, "swarmavail_events_per_second",
                "Event dispatch rate since the previous snapshot.", "gauge",
                s.events_per_s);
    prom_sample(os, "swarmavail_sim_time_advanced_seconds",
                "Completed simulated seconds across work units.", "counter",
                s.sim_time_advanced);
    prom_sample(os, "swarmavail_sim_time_target_seconds",
                "Total simulated seconds the run intends to execute.", "gauge",
                s.sim_time_target);
    prom_sample(os, "swarmavail_sim_time_rate",
                "Simulated seconds per wall second since the previous snapshot.",
                "gauge", s.sim_time_rate);
    prom_sample(os, "swarmavail_queue_depth", "Pending work items (see RunCounters).",
                "gauge", s.queue_depth);
    prom_sample(os, "swarmavail_progress_ratio", "Completed fraction of the run.",
                "gauge", s.progress);
    prom_sample(os, "swarmavail_eta_seconds",
                "Estimated remaining wall seconds (negative if unknown).", "gauge",
                s.eta_s);
    prom_sample(os, "swarmavail_resident_memory_bytes", "Resident set size.", "gauge",
                static_cast<double>(s.rss_bytes));
    prom_sample(os, "swarmavail_peak_resident_memory_bytes", "Peak resident set size.",
                "gauge", static_cast<double>(s.peak_rss_bytes));
    // The 64-bit fingerprint XOR is split into 32-bit halves: Prometheus
    // samples are doubles, which lose integer precision past 2^53.
    prom_sample(os, "swarmavail_fingerprint_xor_lo",
                "Low 32 bits of the completed-work fingerprint XOR.", "gauge",
                static_cast<double>(s.fingerprint_xor & 0xffffffffULL));
    prom_sample(os, "swarmavail_fingerprint_xor_hi",
                "High 32 bits of the completed-work fingerprint XOR.", "gauge",
                static_cast<double>(s.fingerprint_xor >> 32U));

    if (!s.tracked.empty()) {
        os << "# HELP swarmavail_tracked_mean Streaming mean of a tracked estimate.\n"
              "# TYPE swarmavail_tracked_mean gauge\n";
        for (const TrackedStat& stat : s.tracked) {
            os << "swarmavail_tracked_mean{metric=\""
               << prometheus_label_value(stat.name)
               << "\"} " << format_double_exact(stat.mean) << '\n';
        }
        os << "# HELP swarmavail_tracked_ci95_halfwidth 95% confidence half-width "
              "of a tracked estimate.\n"
              "# TYPE swarmavail_tracked_ci95_halfwidth gauge\n";
        for (const TrackedStat& stat : s.tracked) {
            os << "swarmavail_tracked_ci95_halfwidth{metric=\""
               << prometheus_label_value(stat.name)
               << "\"} " << format_double_exact(stat.ci95_halfwidth) << '\n';
        }
        os << "# HELP swarmavail_tracked_observations Observations of a tracked "
              "estimate.\n"
              "# TYPE swarmavail_tracked_observations counter\n";
        for (const TrackedStat& stat : s.tracked) {
            os << "swarmavail_tracked_observations{metric=\""
               << prometheus_label_value(stat.name)
               << "\"} " << stat.count << '\n';
        }
    }
}

void PrometheusTextExporter::export_snapshot(const TelemetrySnapshot& snapshot) {
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            return;  // telemetry must never take the run down
        }
        write_prometheus(snapshot, os);
    }
    std::rename(tmp.c_str(), path_.c_str());  // atomic on POSIX
}

// ---------------------------------------------------------------------------
// Prometheus format validation

namespace {

bool legal_metric_name(std::string_view name) {
    if (name.empty()) {
        return false;
    }
    const auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    };
    if (!head(name[0])) {
        return false;
    }
    for (const char c : name.substr(1)) {
        if (!head(c) && !(c >= '0' && c <= '9')) {
            return false;
        }
    }
    return true;
}

bool is_prometheus_number(std::string_view text) {
    if (text.empty()) {
        return false;
    }
    if (text == "+Inf" || text == "-Inf" || text == "NaN") {
        return true;
    }
    char* end = nullptr;
    const std::string owned{text};
    (void)std::strtod(owned.c_str(), &end);
    return end == owned.c_str() + owned.size();
}

}  // namespace

bool validate_prometheus_text(std::string_view text, std::string* error) {
    const auto fail = [error](std::size_t line_no, const std::string& why) {
        if (error != nullptr) {
            *error = "line " + std::to_string(line_no) + ": " + why;
        }
        return false;
    };
    if (text.empty()) {
        return fail(0, "empty exposition");
    }
    if (text.back() != '\n') {
        return fail(0, "exposition must end with a newline");
    }

    std::size_t line_no = 0;
    std::size_t pos = 0;
    std::vector<std::string> typed;  // names with a seen TYPE line
    while (pos < text.size()) {
        ++line_no;
        const std::size_t eol = text.find('\n', pos);
        std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            // "# HELP name text" / "# TYPE name kind" / arbitrary comment.
            std::istringstream fields{std::string{line}};
            std::string hash;
            std::string keyword;
            std::string name;
            fields >> hash >> keyword >> name;
            if (keyword == "TYPE") {
                std::string kind;
                fields >> kind;
                if (!legal_metric_name(name)) {
                    return fail(line_no, "illegal metric name in TYPE: " + name);
                }
                if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
                    kind != "summary" && kind != "untyped") {
                    return fail(line_no, "unknown TYPE kind: " + kind);
                }
                typed.push_back(name);
            } else if (keyword == "HELP" && !legal_metric_name(name)) {
                return fail(line_no, "illegal metric name in HELP: " + name);
            }
            continue;
        }
        // Sample line: name[{labels}] value
        std::size_t name_end = line.find_first_of("{ ");
        if (name_end == std::string_view::npos) {
            return fail(line_no, "sample line without a value");
        }
        const std::string_view name = line.substr(0, name_end);
        if (!legal_metric_name(name)) {
            return fail(line_no, "illegal metric name: " + std::string{name});
        }
        std::string_view rest = line.substr(name_end);
        if (!rest.empty() && rest[0] == '{') {
            // Scan the label block respecting quoted values.
            std::size_t i = 1;
            bool closed = false;
            while (i < rest.size()) {
                if (rest[i] == '"') {
                    ++i;
                    while (i < rest.size() && rest[i] != '"') {
                        i += rest[i] == '\\' ? 2 : 1;
                    }
                    if (i >= rest.size()) {
                        return fail(line_no, "unterminated label value");
                    }
                    ++i;
                } else if (rest[i] == '}') {
                    closed = true;
                    ++i;
                    break;
                } else {
                    ++i;
                }
            }
            if (!closed) {
                return fail(line_no, "unterminated label block");
            }
            rest = rest.substr(i);
        }
        if (rest.empty() || rest[0] != ' ') {
            return fail(line_no, "missing space before value");
        }
        std::string_view value = rest.substr(1);
        // An optional trailing timestamp (integer) is allowed by the format.
        const std::size_t space = value.find(' ');
        if (space != std::string_view::npos) {
            value = value.substr(0, space);
        }
        if (!is_prometheus_number(value)) {
            return fail(line_no, "malformed sample value: " + std::string{value});
        }
    }
    if (typed.empty()) {
        return fail(0, "no TYPE lines found");
    }
    return true;
}

// ---------------------------------------------------------------------------
// JSONL snapshot reader

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
    throw std::invalid_argument("telemetry jsonl line " + std::to_string(line_no) +
                                ": " + why);
}

/// Minimal scanner over one exporter-produced line (same philosophy as the
/// trace reader: this reads back our own writer's shape, it is not a JSON
/// library).
class Scanner {
 public:
    Scanner(std::string_view line, std::size_t line_no)
        : line_(line), line_no_(line_no) {}

    void expect(char c) {
        if (pos_ >= line_.size() || line_[pos_] != c) {
            parse_fail(line_no_, std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    void expect_key(std::string_view key) {
        expect('"');
        if (line_.substr(pos_, key.size()) != key) {
            parse_fail(line_no_, "expected key '" + std::string{key} + "'");
        }
        pos_ += key.size();
        expect('"');
        expect(':');
    }

    [[nodiscard]] bool read_bool() {
        if (line_.substr(pos_, 4) == "true") {
            pos_ += 4;
            return true;
        }
        if (line_.substr(pos_, 5) == "false") {
            pos_ += 5;
            return false;
        }
        parse_fail(line_no_, "expected boolean");
    }

    [[nodiscard]] std::uint64_t read_u64() {
        if (pos_ >= line_.size() || line_[pos_] < '0' || line_[pos_] > '9') {
            parse_fail(line_no_, "expected unsigned integer");
        }
        std::uint64_t value = 0;
        while (pos_ < line_.size() && line_[pos_] >= '0' && line_[pos_] <= '9') {
            value = value * 10 + static_cast<std::uint64_t>(line_[pos_] - '0');
            ++pos_;
        }
        return value;
    }

    [[nodiscard]] double read_double() {
        const std::string owned{line_.substr(pos_)};
        char* end = nullptr;
        const double value = std::strtod(owned.c_str(), &end);
        if (end == owned.c_str()) {
            parse_fail(line_no_, "expected number");
        }
        pos_ += static_cast<std::size_t>(end - owned.c_str());
        return value;
    }

    [[nodiscard]] std::string read_string() {
        expect('"');
        std::string out;
        while (pos_ < line_.size() && line_[pos_] != '"') {
            if (line_[pos_] == '\\' && pos_ + 1 < line_.size()) {
                ++pos_;
            }
            out.push_back(line_[pos_++]);
        }
        expect('"');
        return out;
    }

    [[nodiscard]] bool peek(char c) const {
        return pos_ < line_.size() && line_[pos_] == c;
    }

    /// Consumes `"key":` if it is next; false (no movement) otherwise.
    /// For fields added after the format shipped: streams written before
    /// the field existed still parse (the field keeps its default).
    [[nodiscard]] bool try_key(std::string_view key) {
        const std::size_t need = key.size() + 3;  // quotes and colon
        if (line_.size() - pos_ < need || line_[pos_] != '"' ||
            line_.substr(pos_ + 1, key.size()) != key ||
            line_[pos_ + 1 + key.size()] != '"' ||
            line_[pos_ + 2 + key.size()] != ':') {
            return false;
        }
        pos_ += need;
        return true;
    }

    void expect_end() {
        if (pos_ != line_.size()) {
            parse_fail(line_no_, "trailing characters");
        }
    }

 private:
    std::string_view line_;
    std::size_t pos_ = 0;
    std::size_t line_no_;
};

}  // namespace

std::vector<TelemetrySnapshot> read_telemetry_jsonl(std::istream& in) {
    std::vector<TelemetrySnapshot> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        Scanner scan(line, line_no);
        TelemetrySnapshot s;
        scan.expect('{');
        scan.expect_key("seq");
        s.sequence = scan.read_u64();
        scan.expect(',');
        scan.expect_key("wall_s");
        s.wall_time_s = scan.read_double();
        scan.expect(',');
        scan.expect_key("final");
        s.final_snapshot = scan.read_bool();
        scan.expect(',');
        scan.expect_key("replications_total");
        s.replications_total = scan.read_u64();
        scan.expect(',');
        scan.expect_key("replications_completed");
        s.replications_completed = scan.read_u64();
        scan.expect(',');
        scan.expect_key("swarms_total");
        s.swarms_total = scan.read_u64();
        scan.expect(',');
        scan.expect_key("swarms_completed");
        s.swarms_completed = scan.read_u64();
        scan.expect(',');
        scan.expect_key("events_dispatched");
        s.events_dispatched = scan.read_u64();
        scan.expect(',');
        scan.expect_key("events_per_s");
        s.events_per_s = scan.read_double();
        scan.expect(',');
        scan.expect_key("sim_time_advanced");
        s.sim_time_advanced = scan.read_double();
        scan.expect(',');
        scan.expect_key("sim_time_target");
        s.sim_time_target = scan.read_double();
        scan.expect(',');
        scan.expect_key("sim_time_rate");
        s.sim_time_rate = scan.read_double();
        scan.expect(',');
        scan.expect_key("queue_depth");
        s.queue_depth = scan.read_double();
        scan.expect(',');
        scan.expect_key("progress");
        s.progress = scan.read_double();
        scan.expect(',');
        scan.expect_key("eta_s");
        s.eta_s = scan.read_double();
        scan.expect(',');
        scan.expect_key("rss_bytes");
        s.rss_bytes = scan.read_u64();
        scan.expect(',');
        scan.expect_key("peak_rss_bytes");
        s.peak_rss_bytes = scan.read_u64();
        scan.expect(',');
        if (scan.try_key("fingerprint_xor")) {
            s.fingerprint_xor = scan.read_u64();
            scan.expect(',');
        }
        scan.expect_key("tracked");
        scan.expect('[');
        if (!scan.peek(']')) {
            for (;;) {
                TrackedStat stat;
                scan.expect('{');
                scan.expect_key("name");
                stat.name = scan.read_string();
                scan.expect(',');
                scan.expect_key("count");
                stat.count = scan.read_u64();
                scan.expect(',');
                scan.expect_key("mean");
                stat.mean = scan.read_double();
                scan.expect(',');
                scan.expect_key("ci95");
                stat.ci95_halfwidth = scan.read_double();
                scan.expect(',');
                scan.expect_key("min");
                stat.min = scan.read_double();
                scan.expect(',');
                scan.expect_key("max");
                stat.max = scan.read_double();
                scan.expect(',');
                scan.expect_key("last");
                stat.last = scan.read_double();
                scan.expect('}');
                s.tracked.push_back(std::move(stat));
                if (scan.peek(']')) {
                    break;
                }
                scan.expect(',');
            }
        }
        scan.expect(']');
        scan.expect('}');
        scan.expect_end();
        out.push_back(std::move(s));
    }
    return out;
}

// ---------------------------------------------------------------------------
// TelemetrySession

/// The background sampler: waits `interval_s` between snapshots on a
/// condition variable so stop() interrupts a sleep immediately.
struct TelemetrySession::Sampler {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable wake;
    bool stopping = false;
};

TelemetrySession::TelemetrySession(TelemetryConfig config)
    : config_(std::move(config)), started_at_(std::chrono::steady_clock::now()) {
    require(config_.interval_s > 0.0, "TelemetrySession: interval_s must be > 0");
    for (TelemetryExporter* exporter : config_.exporters) {
        require(exporter != nullptr, "TelemetrySession: null exporter");
    }
}

TelemetrySession::~TelemetrySession() { stop(); }

void TelemetrySession::start() {
    if (sampler_ != nullptr) {
        return;
    }
    started_at_ = std::chrono::steady_clock::now();
    sampler_ = std::make_unique<Sampler>();
    sampler_->thread = std::thread([this] {
        const auto interval = std::chrono::duration<double>(config_.interval_s);
        std::unique_lock<std::mutex> lock(sampler_->mutex);
        for (;;) {
            if (sampler_->wake.wait_for(lock, interval,
                                        [&] { return sampler_->stopping; })) {
                return;
            }
            lock.unlock();
            (void)snapshot_now(false);
            lock.lock();
        }
    });
}

void TelemetrySession::stop() {
    if (sampler_ != nullptr) {
        {
            const std::lock_guard<std::mutex> lock(sampler_->mutex);
            sampler_->stopping = true;
        }
        sampler_->wake.notify_all();
        sampler_->thread.join();
        sampler_.reset();
        (void)snapshot_now(true);
    }
    const std::lock_guard<std::mutex> lock(emit_mutex_);
    if (!finished_ && next_sequence_ > 0) {
        for (TelemetryExporter* exporter : config_.exporters) {
            exporter->finish();
        }
        finished_ = true;
    }
}

TelemetrySnapshot TelemetrySession::snapshot_now(bool final_snapshot) {
    const std::lock_guard<std::mutex> lock(emit_mutex_);
    TelemetrySnapshot s;
    s.sequence = next_sequence_++;
    s.final_snapshot = final_snapshot;
    s.wall_time_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  started_at_)
                        .count();
    const RunCounters& c = counters_;
    s.replications_total = c.replications_total.load(std::memory_order_relaxed);
    s.replications_completed = c.replications_completed.load(std::memory_order_relaxed);
    s.swarms_total = c.swarms_total.load(std::memory_order_relaxed);
    s.swarms_completed = c.swarms_completed.load(std::memory_order_relaxed);
    s.events_dispatched = c.events_dispatched.load(std::memory_order_relaxed);
    s.sim_time_advanced = c.sim_time_advanced.load(std::memory_order_relaxed);
    s.sim_time_target = c.sim_time_target.load(std::memory_order_relaxed);
    s.queue_depth = c.queue_depth.load(std::memory_order_relaxed);
    s.fingerprint_xor = c.fingerprint_xor.load(std::memory_order_relaxed);

    const double wall_delta = s.wall_time_s - prev_wall_s_;
    if (wall_delta > 0.0) {
        s.events_per_s =
            static_cast<double>(s.events_dispatched - prev_events_) / wall_delta;
        s.sim_time_rate = (s.sim_time_advanced - prev_sim_time_) / wall_delta;
    }
    prev_wall_s_ = s.wall_time_s;
    prev_events_ = s.events_dispatched;
    prev_sim_time_ = s.sim_time_advanced;

    // Progress: the most advanced of the defined completion fractions (the
    // counters describe the same run from different altitudes).
    double progress = 0.0;
    if (s.replications_total > 0) {
        progress = std::max(progress,
                            static_cast<double>(s.replications_completed) /
                                static_cast<double>(s.replications_total));
    }
    if (s.swarms_total > 0) {
        progress = std::max(progress, static_cast<double>(s.swarms_completed) /
                                          static_cast<double>(s.swarms_total));
    }
    if (s.sim_time_target > 0.0) {
        progress = std::max(progress, s.sim_time_advanced / s.sim_time_target);
    }
    s.progress = progress > 1.0 ? 1.0 : progress;
    if (s.progress > 0.0 && s.progress < 1.0 && s.wall_time_s > 0.0) {
        s.eta_s = s.wall_time_s * (1.0 - s.progress) / s.progress;
    } else if (s.progress >= 1.0) {
        s.eta_s = 0.0;
    }

    (void)read_process_rss(s.rss_bytes, s.peak_rss_bytes);
    s.tracked = tracker_.snapshot();

    for (TelemetryExporter* exporter : config_.exporters) {
        exporter->export_snapshot(s);
    }
    snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
    return s;
}

}  // namespace swarmavail::telemetry
