#include "measurement/arrival_patterns.hpp"

#include <cmath>

#include "sim/processes.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace swarmavail::measurement {
namespace {
constexpr double kSecondsPerDay = 86400.0;
}

std::vector<double> new_swarm_arrivals(Rng& rng, double lambda0_per_day, double tau_days,
                                       double horizon_days) {
    require(horizon_days > 0.0, "new_swarm_arrivals: horizon must be > 0");
    return sim::sample_decaying_poisson(rng, lambda0_per_day / kSecondsPerDay,
                                        tau_days * kSecondsPerDay,
                                        horizon_days * kSecondsPerDay);
}

std::vector<double> old_swarm_arrivals(Rng& rng, double lambda_per_day,
                                       double horizon_days) {
    require(horizon_days > 0.0, "old_swarm_arrivals: horizon must be > 0");
    return sim::sample_homogeneous_poisson(rng, lambda_per_day / kSecondsPerDay,
                                           horizon_days * kSecondsPerDay);
}

std::vector<std::size_t> daily_counts(const std::vector<double>& arrivals,
                                      double horizon_days) {
    require(horizon_days > 0.0, "daily_counts: horizon must be > 0");
    const auto days = static_cast<std::size_t>(std::ceil(horizon_days));
    std::vector<std::size_t> counts(days, 0);
    for (double t : arrivals) {
        const auto day = static_cast<std::size_t>(t / kSecondsPerDay);
        if (day < counts.size()) {
            ++counts[day];
        }
    }
    return counts;
}

double count_variation(const std::vector<std::size_t>& counts) {
    require(!counts.empty(), "count_variation: counts must not be empty");
    StreamingStats stats;
    for (std::size_t c : counts) {
        stats.add(static_cast<double>(c));
    }
    return stats.mean() == 0.0 ? 0.0 : stats.stddev() / stats.mean();
}

}  // namespace swarmavail::measurement
