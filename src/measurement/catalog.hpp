// Synthetic BitTorrent ecosystem catalog: the substitute for the paper's
// Mininova snapshot (Section 2.3, 1,087,933 swarms with categories, file
// lists, creation dates and seed/leecher counts).
//
// The generator produces swarms whose *distributional* knobs (category mix,
// per-category bundling frequency, file-extension conventions, popularity
// skew, seed uptime coupling) are set so the analysis pipeline in
// analysis.hpp recovers the aggregates the paper reports; the analysis code
// itself never looks at the generator's hidden labels -- it classifies from
// file names and observed bitmaps exactly as the measurement study did.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hpp"

namespace swarmavail::measurement {

/// Content categories of the Mininova taxonomy used in Section 2.3.
enum class Category {
    kMusic,
    kTv,
    kBooks,
    kMovies,
    kOther,
};

[[nodiscard]] std::string to_string(Category category);

/// One file inside a torrent. The name carries the extension the
/// bundle classifier keys on.
struct FileEntry {
    std::string name;
    double size_bits = 0.0;
};

/// One swarm of the snapshot.
struct SwarmEntry {
    std::uint64_t id = 0;
    Category category = Category::kOther;
    std::string title;
    std::vector<FileEntry> files;
    double age_days = 0.0;        ///< days since swarm creation at snapshot time
    double popularity = 0.0;      ///< peer arrival rate at creation (peers/day)
    /// Seed on/off process parameters (hours). Together they define the
    /// swarm's intrinsic seed availability u/(u+d).
    double seed_uptime_hours = 0.0;
    double seed_downtime_hours = 0.0;
    /// Dedicated-publisher phase: for this many hours after creation the
    /// publisher keeps its seed continuously online (0 = none). Captures
    /// the Figure 1 population whose first-month availability is 1 before
    /// the publisher loses interest.
    double dedicated_hours = 0.0;
    std::uint64_t downloads = 0;  ///< accumulated download count
    /// For collection-subset analysis: swarms in the same series share a
    /// series id; a larger series_scope strictly contains a smaller one
    /// (e.g. "Garfield 1978-2000" inside "Garfield complete"). 0 = none.
    std::uint64_t series_id = 0;
    std::size_t series_scope = 0;
};

/// Knobs of the synthetic snapshot.
struct CatalogConfig {
    std::size_t music_swarms = 26712;   ///< 1/10 of the paper's 267,117
    std::size_t tv_swarms = 16493;      ///< 1/10 of 164,930
    std::size_t book_swarms = 6639;     ///< 1/10 of 66,387
    std::size_t movie_swarms = 15000;
    std::size_t other_swarms = 12000;
    double music_bundle_fraction = 0.724;  ///< 193,491 / 267,117
    double tv_bundle_fraction = 0.158;     ///< 25,990 / 164,930
    double book_bundle_fraction = 0.094;   ///< 6,270 / 66,387
    double book_collection_fraction = 0.0127;  ///< 841 / 66,387
    /// Pareto tail index of per-swarm popularity (must exceed 1 for the
    /// mean download comparisons of Section 2.3.2 to concentrate).
    double popularity_exponent = 1.5;
    /// Base seed uptime/downtime (hours); per-swarm values are randomized
    /// around these, and bundles receive a seed-availability boost coupled
    /// to their higher demand (Section 2.3.2's observed correlation).
    double base_uptime_hours = 24.0;
    double base_downtime_hours = 72.0;
    double bundle_uptime_boost = 3.0;
    /// Fraction of swarms whose publisher runs a dedicated always-on seed
    /// for an exponential initial phase, and that phase's mean (hours).
    double dedicated_seed_fraction = 0.42;
    double dedicated_mean_hours = 24.0 * 90.0;
    std::uint64_t seed = 2009;
};

using Catalog = std::vector<SwarmEntry>;

/// Generates the synthetic snapshot.
[[nodiscard]] Catalog generate_catalog(const CatalogConfig& config);

/// Intrinsic long-run seed availability of a swarm: u / (u + d).
[[nodiscard]] double intrinsic_availability(const SwarmEntry& swarm);

}  // namespace swarmavail::measurement
