#include "measurement/analysis.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "util/error.hpp"

namespace swarmavail::measurement {
namespace {

/// Extensions the classifier counts per category (Section 2.3.1).
std::array<const char*, 3> classifier_extensions(Category category) {
    switch (category) {
        case Category::kMusic:
            return {".mp3", ".mid", ".wav"};
        case Category::kTv:
            return {".mpg", ".avi", ".mkv"};
        case Category::kBooks:
            return {".pdf", ".djvu", ".epub"};
        case Category::kMovies:
        case Category::kOther:
            return {"", "", ""};  // no automatic classification (Section 2.3.1)
    }
    return {"", "", ""};
}

const SwarmTrace& trace_for(const Catalog& catalog, const std::vector<SwarmTrace>& traces,
                            std::size_t index) {
    require(traces.size() == catalog.size(),
            "analysis: traces must be index-aligned with the catalog");
    require(traces[index].swarm_id == catalog[index].id,
            "analysis: trace/catalog id mismatch");
    return traces[index];
}

bool seeded_at(const SwarmTrace& trace, std::uint32_t hour) {
    for (const auto& obs : trace.observations) {
        if (obs.hour == hour) {
            return obs.seeds > 0;
        }
    }
    return false;
}

}  // namespace

bool has_extension(const std::string& name, const std::string& extension) {
    if (extension.empty() || name.size() < extension.size()) {
        return false;
    }
    return name.compare(name.size() - extension.size(), extension.size(), extension) == 0;
}

bool classify_bundle(const SwarmEntry& swarm) {
    const auto extensions = classifier_extensions(swarm.category);
    std::size_t media = 0;
    for (const auto& file : swarm.files) {
        for (const char* ext : extensions) {
            if (ext[0] != '\0' && has_extension(file.name, ext)) {
                ++media;
                break;
            }
        }
        if (media >= 2) {
            return true;
        }
    }
    return false;
}

bool classify_collection(const SwarmEntry& swarm) {
    return swarm.category == Category::kBooks &&
           swarm.title.find("collection") != std::string::npos;
}

std::vector<BundlingExtent> bundling_extent(const Catalog& catalog) {
    std::unordered_map<int, BundlingExtent> rows;
    for (const auto& swarm : catalog) {
        auto& row = rows[static_cast<int>(swarm.category)];
        row.category = swarm.category;
        ++row.swarms;
        if (classify_bundle(swarm)) {
            ++row.bundles;
        }
        if (classify_collection(swarm)) {
            ++row.collections;
        }
    }
    std::vector<BundlingExtent> out;
    out.reserve(rows.size());
    // swarmlint-allow(det-unordered-iter): every row is collected and the vector is sorted by category immediately below; iteration order cannot reach the result
    for (auto& [key, row] : rows) {
        out.push_back(row);
    }
    std::sort(out.begin(), out.end(), [](const BundlingExtent& a, const BundlingExtent& b) {
        return static_cast<int>(a.category) < static_cast<int>(b.category);
    });
    return out;
}

AvailabilityComparison compare_availability(const Catalog& catalog,
                                            const std::vector<SwarmTrace>& traces,
                                            Category category, bool use_collections,
                                            std::uint32_t snapshot_hour) {
    AvailabilityComparison out;
    double plain_downloads = 0.0;
    double bundled_downloads = 0.0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto& swarm = catalog[i];
        if (swarm.category != category) {
            continue;
        }
        const bool special =
            use_collections ? classify_collection(swarm) : classify_bundle(swarm);
        const bool seedless = !seeded_at(trace_for(catalog, traces, i), snapshot_hour);
        if (special) {
            ++out.bundled_swarms;
            out.bundled_seedless += seedless ? 1 : 0;
            bundled_downloads += static_cast<double>(swarm.downloads);
        } else {
            ++out.plain_swarms;
            out.plain_seedless += seedless ? 1 : 0;
            plain_downloads += static_cast<double>(swarm.downloads);
        }
    }
    out.plain_mean_downloads =
        out.plain_swarms == 0 ? 0.0 : plain_downloads / static_cast<double>(out.plain_swarms);
    out.bundled_mean_downloads =
        out.bundled_swarms == 0
            ? 0.0
            : bundled_downloads / static_cast<double>(out.bundled_swarms);
    return out;
}

SubsetAnalysis analyze_collection_subsets(const Catalog& catalog,
                                          const std::vector<SwarmTrace>& traces,
                                          std::uint32_t snapshot_hour) {
    // Widest seeded scope per series.
    std::unordered_map<std::uint64_t, std::size_t> seeded_scope;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto& swarm = catalog[i];
        if (swarm.series_id == 0 || !classify_collection(swarm)) {
            continue;
        }
        if (seeded_at(trace_for(catalog, traces, i), snapshot_hour)) {
            auto& scope = seeded_scope[swarm.series_id];
            scope = std::max(scope, swarm.series_scope);
        }
    }

    SubsetAnalysis out;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto& swarm = catalog[i];
        if (!classify_collection(swarm)) {
            continue;
        }
        ++out.collections;
        if (seeded_at(trace_for(catalog, traces, i), snapshot_hour)) {
            continue;
        }
        ++out.seedless;
        // Covered if a strictly wider collection of the same series is seeded.
        const auto it =
            swarm.series_id != 0 ? seeded_scope.find(swarm.series_id) : seeded_scope.end();
        const bool covered = it != seeded_scope.end() && it->second > swarm.series_scope;
        if (!covered) {
            ++out.seedless_without_superset;
        }
    }
    return out;
}

BundleAvailabilityContingency bundling_availability_contingency(
    const Catalog& catalog, const std::vector<SwarmTrace>& traces, Category category,
    std::uint32_t snapshot_hour) {
    BundleAvailabilityContingency table;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto& swarm = catalog[i];
        if (swarm.category != category) {
            continue;
        }
        const bool bundle = classify_bundle(swarm);
        const bool seeded = seeded_at(trace_for(catalog, traces, i), snapshot_hour);
        if (seeded) {
            (bundle ? table.available_bundles : table.available_singles) += 1;
        } else {
            (bundle ? table.unavailable_bundles : table.unavailable_singles) += 1;
        }
    }
    return table;
}

std::vector<double> availability_fractions(const std::vector<SwarmTrace>& traces,
                                           std::uint32_t from_hour, std::uint32_t to_hour) {
    std::vector<double> out;
    out.reserve(traces.size());
    for (const auto& trace : traces) {
        bool any = false;
        for (const auto& obs : trace.observations) {
            if (obs.hour >= from_hour && obs.hour < to_hour) {
                any = true;
                break;
            }
        }
        if (any) {
            out.push_back(seed_availability(trace, from_hour, to_hour));
        }
    }
    return out;
}

}  // namespace swarmavail::measurement
