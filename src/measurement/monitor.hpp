// The monitoring pipeline of Section 2.2: agents scrape each swarm hourly,
// recording per-peer bitmaps, and seed availability is derived from the
// presence of at least one complete bitmap.
//
// The seed population of each swarm follows its on/off process (uptime /
// downtime drawn per visit), with an age-dependent decay: after the initial
// popularity wave, seeds return more rarely, which is what separates the
// first-month curve from the whole-trace curve in Figure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "measurement/catalog.hpp"
#include "util/random.hpp"

namespace swarmavail::measurement {

/// One hourly observation of one swarm.
struct Observation {
    std::uint64_t swarm_id = 0;
    std::uint32_t hour = 0;        ///< hours since the swarm was created
    std::uint16_t seeds = 0;       ///< peers observed with complete bitmaps
    std::uint16_t leechers = 0;    ///< peers observed with partial bitmaps
};

/// Per-swarm hourly trace.
struct SwarmTrace {
    std::uint64_t swarm_id = 0;
    std::vector<Observation> observations;
};

/// Monitoring setup.
struct MonitorConfig {
    std::uint32_t duration_hours = 7 * 30 * 24;  ///< the paper's 7 months
    /// Seed interarrival grows by this factor per 30 days of swarm age: the
    /// post-flash-crowd decay of publisher interest.
    double downtime_growth_per_month = 1.9;
    std::uint64_t seed = 42;
};

/// Simulates the seed on/off process of every swarm over the monitoring
/// window and returns hourly traces. Swarms are monitored from their
/// creation (hour 0 of the trace = swarm creation).
[[nodiscard]] std::vector<SwarmTrace> monitor_catalog(const Catalog& catalog,
                                                      const MonitorConfig& config);

/// Fraction of observed hours within [from_hour, to_hour) in which at least
/// one seed was present. Returns 0 when the window is empty.
[[nodiscard]] double seed_availability(const SwarmTrace& trace, std::uint32_t from_hour,
                                       std::uint32_t to_hour);

}  // namespace swarmavail::measurement
