// Arrival-pattern traces of Section 4.3.4 / Figure 7: a typical newly
// published swarm sees a decaying flash crowd, while an old swarm sees a
// low, steady trickle. These generators feed the trace-driven arrival path
// of the simulators and the Figure 7 bench.
#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hpp"

namespace swarmavail::measurement {

/// Arrival instants (seconds) of a newly created swarm over `horizon_days`:
/// a non-homogeneous Poisson process with rate lambda0 * exp(-t / tau).
[[nodiscard]] std::vector<double> new_swarm_arrivals(Rng& rng, double lambda0_per_day,
                                                     double tau_days,
                                                     double horizon_days);

/// Arrival instants of an old swarm: homogeneous Poisson at
/// `lambda_per_day` over `horizon_days`.
[[nodiscard]] std::vector<double> old_swarm_arrivals(Rng& rng, double lambda_per_day,
                                                     double horizon_days);

/// Bins arrival instants (seconds) into per-day counts over `horizon_days`.
[[nodiscard]] std::vector<std::size_t> daily_counts(const std::vector<double>& arrivals,
                                                    double horizon_days);

/// Coefficient of variation of the counts (stddev / mean): Figure 7's
/// observation is that old swarms have much lower variation than new ones.
[[nodiscard]] double count_variation(const std::vector<std::size_t>& counts);

}  // namespace swarmavail::measurement
