#include "measurement/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace swarmavail::measurement {

std::vector<SwarmTrace> monitor_catalog(const Catalog& catalog,
                                        const MonitorConfig& config) {
    require(config.duration_hours > 0, "monitor_catalog: duration must be > 0");
    require(config.downtime_growth_per_month >= 1.0,
            "monitor_catalog: downtime growth must be >= 1");
    Rng rng{config.seed};
    std::vector<SwarmTrace> traces;
    traces.reserve(catalog.size());

    for (const auto& swarm : catalog) {
        Rng swarm_rng = rng.fork();
        SwarmTrace trace;
        trace.swarm_id = swarm.id;
        trace.observations.reserve(config.duration_hours);

        // Alternating seed presence process in continuous hours; downtime
        // stretches as the swarm ages past its initial wave. During the
        // dedicated-publisher phase the seed is pinned online.
        double t = 0.0;
        bool seed_on = true;  // swarms begin seeded by their publisher
        double interval_end = swarm.dedicated_hours +
                              swarm_rng.exponential_mean(swarm.seed_uptime_hours);
        std::uint16_t seeds_now = 1;

        for (std::uint32_t hour = 0; hour < config.duration_hours; ++hour) {
            t = static_cast<double>(hour);
            while (t >= interval_end) {
                seed_on = !seed_on;
                if (seed_on) {
                    interval_end += swarm_rng.exponential_mean(swarm.seed_uptime_hours);
                    seeds_now = static_cast<std::uint16_t>(
                        1 + swarm_rng.uniform_index(2));
                } else {
                    const double age_months = (swarm.age_days + t / 24.0) / 30.0;
                    const double decay =
                        std::pow(config.downtime_growth_per_month, age_months);
                    interval_end +=
                        swarm_rng.exponential_mean(swarm.seed_downtime_hours * decay);
                    seeds_now = 0;
                }
            }
            Observation obs;
            obs.swarm_id = swarm.id;
            obs.hour = hour;
            obs.seeds = seed_on ? seeds_now : 0;
            // Leecher counts scale with popularity and content availability.
            const double leecher_mean =
                swarm.popularity / 24.0 * (seed_on ? 1.0 : 0.25);
            obs.leechers = static_cast<std::uint16_t>(
                std::min<std::uint64_t>(swarm_rng.poisson(leecher_mean), 60000));
            trace.observations.push_back(obs);
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

double seed_availability(const SwarmTrace& trace, std::uint32_t from_hour,
                         std::uint32_t to_hour) {
    require(from_hour <= to_hour, "seed_availability: requires from <= to");
    std::size_t observed = 0;
    std::size_t seeded = 0;
    for (const auto& obs : trace.observations) {
        if (obs.hour >= from_hour && obs.hour < to_hour) {
            ++observed;
            if (obs.seeds > 0) {
                ++seeded;
            }
        }
    }
    return observed == 0 ? 0.0
                         : static_cast<double>(seeded) / static_cast<double>(observed);
}

}  // namespace swarmavail::measurement
