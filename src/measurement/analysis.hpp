// Analysis pipeline of Section 2: bundle classification from file
// extensions, bundling-extent statistics (2.3.1), bundling-vs-availability
// statistics (2.3.2), collection subset analysis, and the seed-availability
// CDF of Figure 1.
//
// Everything here operates on observable catalog fields (titles, file
// names, traces) -- never on the generator's hidden parameters -- mirroring
// what the paper's measurement code could see.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "measurement/catalog.hpp"
#include "measurement/monitor.hpp"

namespace swarmavail::measurement {

/// True if `name` ends with `extension` (case-sensitive, includes the dot).
[[nodiscard]] bool has_extension(const std::string& name, const std::string& extension);

/// Section 2.3.1 classifier: a swarm is a bundle if it contains two or more
/// files with extensions typical of its category (.mp3/.mid/.wav for music,
/// .mpg/.avi/.mkv for TV, .pdf/.djvu/.epub for books).
[[nodiscard]] bool classify_bundle(const SwarmEntry& swarm);

/// A book swarm whose title contains the keyword "collection".
[[nodiscard]] bool classify_collection(const SwarmEntry& swarm);

/// Per-category bundling-extent row (the 2.3.1 numbers).
struct BundlingExtent {
    Category category = Category::kOther;
    std::size_t swarms = 0;
    std::size_t bundles = 0;
    std::size_t collections = 0;  ///< keyword collections (books only)
    [[nodiscard]] double bundle_fraction() const {
        return swarms == 0 ? 0.0
                           : static_cast<double>(bundles) / static_cast<double>(swarms);
    }
};

/// Computes bundling extent for the given categories.
[[nodiscard]] std::vector<BundlingExtent> bundling_extent(const Catalog& catalog);

/// Section 2.3.2 comparison: availability and downloads of bundled vs
/// unbundled swarms within one category, judged from the monitoring traces
/// (a swarm is "seedless" if no seed was observed in the snapshot hour).
struct AvailabilityComparison {
    std::size_t plain_swarms = 0;
    std::size_t plain_seedless = 0;
    double plain_mean_downloads = 0.0;
    std::size_t bundled_swarms = 0;
    std::size_t bundled_seedless = 0;
    double bundled_mean_downloads = 0.0;

    [[nodiscard]] double plain_seedless_fraction() const {
        return plain_swarms == 0 ? 0.0
                                 : static_cast<double>(plain_seedless) /
                                       static_cast<double>(plain_swarms);
    }
    [[nodiscard]] double bundled_seedless_fraction() const {
        return bundled_swarms == 0 ? 0.0
                                   : static_cast<double>(bundled_seedless) /
                                         static_cast<double>(bundled_swarms);
    }
};

/// Compares collections (or bundles, per `use_collections`) against plain
/// swarms of `category`, sampling seed presence at `snapshot_hour` of each
/// trace. Traces must be index-aligned with the catalog.
[[nodiscard]] AvailabilityComparison compare_availability(
    const Catalog& catalog, const std::vector<SwarmTrace>& traces, Category category,
    bool use_collections, std::uint32_t snapshot_hour);

/// Collection-subset analysis (the Garfield example): a seedless collection
/// does not count as unavailable if a wider-scope collection of the same
/// series is seeded.
struct SubsetAnalysis {
    std::size_t collections = 0;
    std::size_t seedless = 0;                ///< collections with no seed
    std::size_t seedless_without_superset = 0;  ///< ... and no seeded superset
    [[nodiscard]] double effective_unavailability() const {
        return collections == 0 ? 0.0
                                : static_cast<double>(seedless_without_superset) /
                                      static_cast<double>(collections);
    }
};

[[nodiscard]] SubsetAnalysis analyze_collection_subsets(
    const Catalog& catalog, const std::vector<SwarmTrace>& traces,
    std::uint32_t snapshot_hour);

/// 2x2 bundling/availability contingency table (the "Friends" case study
/// of Section 2.3.2: of the show's 52 swarms, the 23 with seeds were mostly
/// bundles -- 21 of 23 -- while the 29 seedless ones were mostly singles).
struct BundleAvailabilityContingency {
    std::size_t available_bundles = 0;
    std::size_t available_singles = 0;
    std::size_t unavailable_bundles = 0;
    std::size_t unavailable_singles = 0;

    [[nodiscard]] std::size_t available() const {
        return available_bundles + available_singles;
    }
    [[nodiscard]] std::size_t unavailable() const {
        return unavailable_bundles + unavailable_singles;
    }
    /// Fraction of available swarms that are bundles (paper: 21/23 = 0.91).
    [[nodiscard]] double bundle_share_of_available() const {
        return available() == 0 ? 0.0
                                : static_cast<double>(available_bundles) /
                                      static_cast<double>(available());
    }
    /// Fraction of unavailable swarms that are bundles (paper: 7/29 = 0.24).
    [[nodiscard]] double bundle_share_of_unavailable() const {
        return unavailable() == 0 ? 0.0
                                  : static_cast<double>(unavailable_bundles) /
                                        static_cast<double>(unavailable());
    }
};

/// Builds the contingency table for `category` at `snapshot_hour`.
[[nodiscard]] BundleAvailabilityContingency bundling_availability_contingency(
    const Catalog& catalog, const std::vector<SwarmTrace>& traces, Category category,
    std::uint32_t snapshot_hour);

/// Per-swarm seed availability fractions over an observation window
/// [from_hour, to_hour) -- the data behind each Figure 1 curve. Swarms with
/// no observations in the window are skipped.
[[nodiscard]] std::vector<double> availability_fractions(
    const std::vector<SwarmTrace>& traces, std::uint32_t from_hour,
    std::uint32_t to_hour);

}  // namespace swarmavail::measurement
