#include "measurement/catalog.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace swarmavail::measurement {
namespace {

constexpr double kMBit = 1.0e6 * 8.0;

struct CategoryProfile {
    Category category;
    /// Extensions the Section 2.3.1 classifier keys on for this category.
    std::array<const char*, 3> media_extensions;
    /// Extensions of auxiliary files that must not trigger the classifier.
    std::array<const char*, 2> aux_extensions;
    double single_size_mbit;   ///< typical size of one media file
    std::size_t bundle_min;    ///< min files in a bundle
    std::size_t bundle_max;    ///< max files in a bundle
};

CategoryProfile profile_for(Category category) {
    switch (category) {
        case Category::kMusic:
            return {category, {".mp3", ".mid", ".wav"}, {".jpg", ".nfo"}, 8.0 * 8.0,
                    8, 16};
        case Category::kTv:
            return {category, {".mpg", ".avi", ".mkv"}, {".srt", ".nfo"}, 350.0 * 8.0,
                    3, 24};
        case Category::kBooks:
            return {category, {".pdf", ".djvu", ".epub"}, {".jpg", ".txt"}, 6.0 * 8.0,
                    2, 40};
        case Category::kMovies:
            return {category, {".avi", ".mkv", ".mp4"}, {".srt", ".nfo"}, 700.0 * 8.0,
                    1, 1};
        case Category::kOther:
            return {category, {".iso", ".zip", ".exe"}, {".txt", ".nfo"}, 100.0 * 8.0,
                    1, 1};
    }
    throw std::invalid_argument("profile_for: unknown category");
}

std::string make_name(const std::string& stem, std::size_t index, const char* ext) {
    return stem + "_" + std::to_string(index) + ext;
}

/// Draws per-swarm popularity (peers/day) with a Zipf-like tail.
double draw_popularity(Rng& rng, double exponent) {
    // Pareto tail: most swarms see a handful of peers per day, a few see
    // thousands (the flash-crowd head of the catalog).
    return rng.pareto(0.5, exponent);
}

}  // namespace

std::string to_string(Category category) {
    switch (category) {
        case Category::kMusic:
            return "music";
        case Category::kTv:
            return "tv";
        case Category::kBooks:
            return "books";
        case Category::kMovies:
            return "movies";
        case Category::kOther:
            return "other";
    }
    return "unknown";
}

Catalog generate_catalog(const CatalogConfig& config) {
    require(config.music_bundle_fraction >= 0.0 && config.music_bundle_fraction <= 1.0 &&
                config.tv_bundle_fraction >= 0.0 && config.tv_bundle_fraction <= 1.0 &&
                config.book_bundle_fraction >= 0.0 && config.book_bundle_fraction <= 1.0,
            "generate_catalog: bundle fractions must lie in [0, 1]");
    require(config.base_uptime_hours > 0.0 && config.base_downtime_hours > 0.0,
            "generate_catalog: seed process means must be > 0");
    require(config.dedicated_seed_fraction >= 0.0 && config.dedicated_seed_fraction <= 1.0,
            "generate_catalog: dedicated seed fraction must lie in [0, 1]");
    require(config.dedicated_mean_hours > 0.0,
            "generate_catalog: dedicated phase mean must be > 0");

    Rng rng{config.seed};
    Catalog catalog;
    std::uint64_t next_id = 1;
    std::uint64_t next_series = 1;

    const auto emit = [&](Category category, std::size_t count, double bundle_fraction,
                          double collection_fraction) {
        const CategoryProfile profile = profile_for(category);
        for (std::size_t i = 0; i < count; ++i) {
            SwarmEntry swarm;
            swarm.id = next_id++;
            swarm.category = category;
            swarm.age_days = rng.uniform(1.0, 720.0);
            swarm.popularity = draw_popularity(rng, config.popularity_exponent);

            const bool collection =
                category == Category::kBooks && rng.bernoulli(collection_fraction);
            const bool bundled = collection || rng.bernoulli(bundle_fraction);
            const std::string stem = to_string(category) + std::to_string(swarm.id);
            swarm.title = collection ? stem + " ultimate collection" : stem;

            std::size_t media_files = 1;
            if (bundled) {
                media_files = profile.bundle_min +
                              rng.uniform_index(profile.bundle_max - profile.bundle_min + 1);
            }
            for (std::size_t f = 0; f < media_files; ++f) {
                const char* ext =
                    profile.media_extensions[rng.uniform_index(profile.media_extensions.size())];
                swarm.files.push_back(
                    {make_name(stem, f, ext),
                     profile.single_size_mbit * kMBit * rng.uniform(0.6, 1.5)});
            }
            // Most torrents carry auxiliary files; they must not be
            // miscounted by the extension classifier.
            if (rng.bernoulli(0.6)) {
                const char* ext =
                    profile.aux_extensions[rng.uniform_index(profile.aux_extensions.size())];
                swarm.files.push_back({make_name(stem, 999, ext), 0.1 * kMBit});
            }

            // Bundles attract the aggregate demand of their constituents
            // (Section 3's Lambda = K lambda): a peer wanting any file takes
            // the whole bundle.
            if (bundled) {
                swarm.popularity *= 0.5 * static_cast<double>(media_files);
            }
            // Higher demand in turn sustains seeds longer: couple uptime to
            // demand, the correlation Section 2.3.2 measures.
            const double demand_boost =
                bundled ? config.bundle_uptime_boost *
                              (1.0 + 0.1 * static_cast<double>(media_files))
                        : 1.0;
            // Publishers of bundled content are intrinsically more willing
            // to keep dedicated seeds (Section 2.3.2's observation), so the
            // dedicated-phase probability and length tilt toward bundles.
            const double dedicated_prob =
                std::min(1.0, config.dedicated_seed_fraction * (bundled ? 1.6 : 0.9));
            if (rng.bernoulli(dedicated_prob)) {
                swarm.dedicated_hours = rng.exponential_mean(
                    config.dedicated_mean_hours * (bundled ? 2.0 : 1.0));
            }
            swarm.seed_uptime_hours =
                config.base_uptime_hours * demand_boost * rng.uniform(0.5, 1.5);
            swarm.seed_downtime_hours =
                config.base_downtime_hours * rng.uniform(0.5, 1.5) /
                std::sqrt(std::max(swarm.popularity, 0.1));

            // Download counts accumulate with demand, age and availability.
            const double avail = intrinsic_availability(swarm);
            swarm.downloads = static_cast<std::uint64_t>(
                swarm.popularity * swarm.age_days * avail * (bundled ? 1.6 : 1.0));

            // A slice of book collections form nested series (the Garfield
            // effect): the widest-scope member aggregates the others, and
            // being the maintained "complete" edition it is far more likely
            // to stay seeded.
            if (collection && rng.bernoulli(0.6)) {
                swarm.series_id = next_series;
                swarm.series_scope = 1 + rng.uniform_index(4);
                if (swarm.series_scope == 4) {
                    swarm.seed_uptime_hours *= 4.0;
                    if (swarm.dedicated_hours == 0.0) {
                        swarm.dedicated_hours =
                            rng.exponential_mean(config.dedicated_mean_hours * 2.0);
                    }
                }
                if (rng.bernoulli(0.4)) {
                    ++next_series;  // close the series so sizes stay small
                }
            }
            catalog.push_back(std::move(swarm));
        }
    };

    emit(Category::kMusic, config.music_swarms, config.music_bundle_fraction, 0.0);
    emit(Category::kTv, config.tv_swarms, config.tv_bundle_fraction, 0.0);
    // Books: collection_fraction of swarms are keyword collections; an
    // additional bundle_fraction are plain multi-file bundles.
    emit(Category::kBooks, config.book_swarms, config.book_bundle_fraction,
         config.book_collection_fraction);
    emit(Category::kMovies, config.movie_swarms, 0.0, 0.0);
    emit(Category::kOther, config.other_swarms, 0.0, 0.0);
    return catalog;
}

double intrinsic_availability(const SwarmEntry& swarm) {
    require(swarm.seed_uptime_hours > 0.0 && swarm.seed_downtime_hours > 0.0,
            "intrinsic_availability: seed process means must be > 0");
    return swarm.seed_uptime_hours /
           (swarm.seed_uptime_hours + swarm.seed_downtime_hours);
}

}  // namespace swarmavail::measurement
