#include "queueing/hypoexponential.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/series.hpp"

namespace swarmavail::queueing {

Hypoexponential::Hypoexponential(std::vector<double> rates) : rates_(std::move(rates)) {
    require(!rates_.empty(), "Hypoexponential: requires at least one stage");
    for (double r : rates_) {
        require(r > 0.0, "Hypoexponential: stage rates must be positive");
    }
}

Hypoexponential Hypoexponential::max_of_iid_exponentials(std::size_t n, double rate) {
    require(n >= 1, "max_of_iid_exponentials: requires n >= 1");
    require(rate > 0.0, "max_of_iid_exponentials: requires rate > 0");
    // Order statistics of exponentials: time until the first of k remaining
    // completes is Exp(k * rate), so the max decomposes into stages with
    // rates n*rate, (n-1)*rate, ..., 1*rate.
    std::vector<double> rates;
    rates.reserve(n);
    for (std::size_t k = n; k >= 1; --k) {
        rates.push_back(static_cast<double>(k) * rate);
    }
    return Hypoexponential{std::move(rates)};
}

double Hypoexponential::mean() const noexcept {
    double acc = 0.0;
    for (double r : rates_) {
        acc += 1.0 / r;
    }
    return acc;
}

double Hypoexponential::variance() const noexcept {
    double acc = 0.0;
    for (double r : rates_) {
        acc += 1.0 / (r * r);
    }
    return acc;
}

double Hypoexponential::laplace(double s) const {
    require(s >= 0.0, "Hypoexponential::laplace: requires s >= 0");
    double acc = 1.0;
    for (double r : rates_) {
        acc *= r / (r + s);
    }
    return acc;
}

double Hypoexponential::sample(Rng& rng) const {
    double acc = 0.0;
    for (double r : rates_) {
        acc += rng.exponential_rate(r);
    }
    return acc;
}

double mginf_occupancy_pmf(std::size_t k, double rho) {
    require(rho >= 0.0, "mginf_occupancy_pmf: requires rho >= 0");
    return poisson_pmf(k, rho);
}

double mginf_mean_occupancy(double lambda, double mean_service) {
    require(lambda >= 0.0, "mginf_mean_occupancy: requires lambda >= 0");
    require(mean_service >= 0.0, "mginf_mean_occupancy: requires mean_service >= 0");
    return lambda * mean_service;
}

}  // namespace swarmavail::queueing
