// General Browne-Steele busy period (appendix eqs. 17-18): the customer
// initiating the busy period draws its residence from an arbitrary
// distribution H with Laplace transform h, while later customers are
// exponential with mean alpha:
//
//     E[B] = theta + sum_{i>=1} (beta alpha)^i alpha [1 - h(i/alpha)] / (i! i)
//
// This generalizes eq. 19 (exponential initiator) and is what Lemma 3.3
// uses with a hypoexponential initiator (the max of n memoryless
// residences) to obtain the residual busy period B(n, 0) of eq. 12.
#pragma once

#include <functional>

#include "queueing/busy_period.hpp"
#include "queueing/hypoexponential.hpp"

namespace swarmavail::queueing {

/// First-customer distribution: mean and Laplace transform E[e^{-sX}].
struct InitiatorDistribution {
    double mean = 0.0;
    std::function<double(double)> laplace;
};

/// Exponential initiator with the given mean (recovers eq. 19).
[[nodiscard]] InitiatorDistribution exponential_initiator(double mean);

/// Deterministic initiator of fixed length.
[[nodiscard]] InitiatorDistribution deterministic_initiator(double length);

/// Hypoexponential initiator (Lemma 3.3's virtual customer).
[[nodiscard]] InitiatorDistribution hypoexponential_initiator(Hypoexponential dist);

/// Expected busy period via eq. 18: Poisson arrivals at `beta`, later
/// customers Exp(`alpha`), first customer drawn from `initiator`.
/// Requires beta > 0, alpha > 0, initiator.mean > 0 and a valid transform.
[[nodiscard]] BusyPeriodResult busy_period_general(double beta, double alpha,
                                                   const InitiatorDistribution& initiator);

/// Lemma 3.3's B(n, 0) obtained through eq. 18 with the hypoexponential
/// initiator max{X_1..X_n}: an independent derivation of eq. 12, used to
/// cross-validate residual_busy_period_to_empty.
[[nodiscard]] BusyPeriodResult residual_busy_period_via_initiator(
    std::size_t n, const ResidualParams& params);

}  // namespace swarmavail::queueing
