#include "queueing/busy_period.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/series.hpp"

namespace swarmavail::queueing {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kRelTol = 1e-13;
constexpr std::size_t kMaxTerms = 200000;

/// Finalizes a series accumulated in log space: E[B] = offset + e^{log_sum}.
BusyPeriodResult finalize(double offset, double log_sum, std::size_t terms,
                          bool converged) {
    BusyPeriodResult result;
    result.terms = terms;
    result.converged = converged;
    const double log_offset = offset > 0.0 ? std::log(offset) : kNegInf;
    result.log_value = log_add_exp(log_offset, log_sum);
    result.value = offset + std::exp(log_sum);
    if (!std::isfinite(result.value)) {
        result.value = kInf;
    }
    return result;
}

}  // namespace

BusyPeriodResult busy_period_exponential(double beta, double alpha) {
    require(beta > 0.0, "busy_period_exponential: requires beta > 0");
    require(alpha > 0.0, "busy_period_exponential: requires alpha > 0");
    const double x = beta * alpha;
    BusyPeriodResult result;
    result.terms = 1;
    result.converged = true;
    // log((e^x - 1)/beta) = x + log(1 - e^{-x}) - log(beta), stable for all x > 0.
    result.log_value = x + std::log(-std::expm1(-x)) - std::log(beta);
    result.value = expm1_over(x, beta);
    return result;
}

BusyPeriodResult busy_period_exceptional(double beta, double alpha, double theta) {
    require(beta > 0.0, "busy_period_exceptional: requires beta > 0");
    require(alpha > 0.0, "busy_period_exceptional: requires alpha > 0");
    require(theta > 0.0, "busy_period_exceptional: requires theta > 0");

    const double log_x = std::log(beta * alpha);
    const double log_scale = std::log(alpha) + std::log(theta);
    double log_sum = kNegInf;
    std::size_t terms = 0;
    bool converged = false;
    const double hump = beta * alpha;  // terms grow until i ~ beta*alpha
    for (std::size_t i = 1; i <= kMaxTerms; ++i) {
        const double log_term = log_scale + static_cast<double>(i) * log_x -
                                log_factorial(i) -
                                std::log(alpha + static_cast<double>(i) * theta);
        log_sum = log_add_exp(log_sum, log_term);
        terms = i;
        if (static_cast<double>(i) > hump && log_term < log_sum + std::log(kRelTol)) {
            converged = true;
            break;
        }
    }
    return finalize(theta, log_sum, terms, converged);
}

BusyPeriodResult busy_period_mixed(const MixedBusyPeriodParams& p) {
    require(p.beta > 0.0, "busy_period_mixed: requires beta > 0");
    require(p.theta > 0.0, "busy_period_mixed: requires theta > 0");
    require(p.q1 >= 0.0 && p.q1 <= 1.0, "busy_period_mixed: requires q1 in [0, 1]");
    require(p.alpha1 > 0.0, "busy_period_mixed: requires alpha1 > 0");
    require(p.alpha2 > 0.0, "busy_period_mixed: requires alpha2 > 0");

    // Degenerate mixtures collapse to the single-class form (eq. 19).
    if (p.q1 >= 1.0) {
        return busy_period_exceptional(p.beta, p.alpha1, p.theta);
    }
    if (p.q1 <= 0.0) {
        return busy_period_exceptional(p.beta, p.alpha2, p.theta);
    }

    const double log_beta = std::log(p.beta);
    const double log_w1 = std::log(p.q1 * p.alpha1);
    const double log_w2 = std::log((1.0 - p.q1) * p.alpha2);
    const double log_scale = std::log(p.theta) + std::log(p.alpha1) + std::log(p.alpha2);
    const double a1a2 = p.alpha1 * p.alpha2;

    double log_sum = kNegInf;
    std::size_t terms = 0;
    bool converged = false;
    // Terms are dominated by (beta * max(E[X]))^i / i!, which peaks near
    // i ~ beta * max residence.
    const double hump = p.beta * std::max(p.alpha1, p.alpha2);
    for (std::size_t i = 1; i <= kMaxTerms; ++i) {
        // Inner sum over the class split j (eq. 9), in log space.
        double log_inner = kNegInf;
        for (std::size_t j = 0; j <= i; ++j) {
            const double denom = a1a2 +
                                 p.theta * (static_cast<double>(j) * p.alpha2 +
                                            static_cast<double>(i - j) * p.alpha1);
            const double log_term = log_binomial(i, j) +
                                    static_cast<double>(j) * log_w1 +
                                    static_cast<double>(i - j) * log_w2 + log_scale -
                                    std::log(denom);
            log_inner = log_add_exp(log_inner, log_term);
        }
        const double log_outer =
            static_cast<double>(i) * log_beta - log_factorial(i) + log_inner;
        log_sum = log_add_exp(log_sum, log_outer);
        terms = i;
        if (static_cast<double>(i) > hump && log_outer < log_sum + std::log(kRelTol)) {
            converged = true;
            break;
        }
    }
    return finalize(p.theta, log_sum, terms, converged);
}

BusyPeriodResult residual_busy_period_to_empty(std::size_t n, const ResidualParams& p) {
    require(p.lambda > 0.0, "residual_busy_period_to_empty: requires lambda > 0");
    require(p.service > 0.0, "residual_busy_period_to_empty: requires service > 0");

    BusyPeriodResult result;
    if (n == 0) {
        result.log_value = kNegInf;
        return result;
    }

    // Drain part: expected time for n memoryless residences to all finish
    // with no arrivals is service * H_n (max of n exponentials).
    double harmonic = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        harmonic += p.service / static_cast<double>(i);
    }

    // Series part of eq. 12. With x = lambda * service:
    //   term_i = service * (a_i - c_i) / i,
    //   a_i = x^i / i!,   c_i = x^i * n! / (n+i)!
    // computed in log space; a_i >= c_i because (n+i)! >= n! i!.
    const double x = p.lambda * p.service;
    const double log_x = std::log(x);
    const double log_service = std::log(p.service);
    double log_sum = kNegInf;
    std::size_t terms = 0;
    bool converged = false;
    const double log_fact_n = log_factorial(n);
    for (std::size_t i = 1; i <= kMaxTerms; ++i) {
        const double log_a = static_cast<double>(i) * log_x - log_factorial(i);
        const double log_c =
            static_cast<double>(i) * log_x - (log_factorial(n + i) - log_fact_n);
        // log(a - c) = log a + log(1 - c/a); c/a < 1 strictly for i >= 1.
        const double ratio = std::exp(log_c - log_a);
        const double log_diff = log_a + std::log1p(-std::min(ratio, 1.0 - 1e-300));
        const double log_term =
            log_service + log_diff - std::log(static_cast<double>(i));
        log_sum = log_add_exp(log_sum, log_term);
        terms = i;
        if (static_cast<double>(i) > x && log_term < log_sum + std::log(kRelTol)) {
            converged = true;
            break;
        }
    }
    return finalize(harmonic, log_sum, terms, converged);
}

double downward_passage_time(std::size_t i, const ResidualParams& p) {
    require(i >= 1, "downward_passage_time: requires i >= 1");
    require(p.lambda > 0.0, "downward_passage_time: requires lambda > 0");
    require(p.service > 0.0, "downward_passage_time: requires service > 0");
    // First-passage time i -> i-1 of the M/M/infinity birth-death chain
    // (births lambda, death rate j/service in state j). Unrolling
    // d_i = (1 + lambda d_{i+1}) / (i / service) gives
    //
    //     d_i = service * sum_{k >= 0} rho^k (i-1)! / (i+k)!
    //
    // evaluated in log space: the terms peak near i + k ~ rho, so for
    // heavily loaded swarms the sum is astronomically large -- which is
    // exactly why it must not be computed as a difference of eq.-12 values.
    const double rho = p.lambda * p.service;
    const double log_rho = std::log(rho);
    const double log_fact_prev = log_factorial(i - 1);
    double log_sum = kNegInf;
    const double hump = rho;
    for (std::size_t k = 0; k <= kMaxTerms; ++k) {
        const double log_term = static_cast<double>(k) * log_rho + log_fact_prev -
                                log_factorial(i + k);
        log_sum = log_add_exp(log_sum, log_term);
        if (static_cast<double>(i + k) > hump && log_term < log_sum + std::log(kRelTol)) {
            break;
        }
    }
    return p.service * std::exp(log_sum);
}

double residual_busy_period(std::size_t n, std::size_t m, const ResidualParams& p) {
    if (n <= m) {
        return 0.0;
    }
    // B(n, m) = sum of downward passage times m+1 ... n. Equivalent to
    // Lemma 3.3's B(n,0) - B(m,0) but immune to the catastrophic
    // cancellation that difference suffers when rho is large.
    double total = 0.0;
    for (std::size_t i = m + 1; i <= n; ++i) {
        total += downward_passage_time(i, p);
        if (std::isinf(total)) {
            return kInf;
        }
    }
    return total;
}

double steady_state_residual_busy_period(std::size_t m, const ResidualParams& p) {
    require(p.lambda > 0.0, "steady_state_residual_busy_period: requires lambda > 0");
    require(p.service > 0.0, "steady_state_residual_busy_period: requires service > 0");

    // Peer population when publishers depart is M/M/infinity steady state:
    // Poisson with mean rho = lambda * service (eq. 13). B(i, m) is the
    // cumulative sum of downward passage times, accumulated incrementally.
    const double rho = p.lambda * p.service;
    double total = 0.0;
    double tail_mass = 1.0;
    double cumulative = 0.0;  // B(i, m) built up as i grows
    // Include terms until the remaining Poisson mass cannot move the result.
    const auto max_i =
        static_cast<std::size_t>(rho + 12.0 * std::sqrt(rho + 1.0) + 64.0);
    for (std::size_t i = 0; i <= max_i; ++i) {
        const double pmf = poisson_pmf(i, rho);
        tail_mass -= pmf;
        if (i <= m) {
            continue;  // already at/below the coverage threshold: B(i, m) = 0
        }
        cumulative += downward_passage_time(i, p);
        if (std::isinf(cumulative)) {
            return pmf > 1e-300 || tail_mass > 1e-300 ? kInf : total;
        }
        total += pmf * cumulative;
        if (tail_mass < 1e-14 &&
            tail_mass * cumulative < kRelTol * std::max(total, 1e-300)) {
            break;
        }
    }
    return total;
}

}  // namespace swarmavail::queueing
