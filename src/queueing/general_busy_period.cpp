#include "queueing/general_busy_period.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"
#include "util/series.hpp"

namespace swarmavail::queueing {
namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kRelTol = 1e-13;
constexpr std::size_t kMaxTerms = 200000;
}  // namespace

InitiatorDistribution exponential_initiator(double mean) {
    require(mean > 0.0, "exponential_initiator: mean must be > 0");
    InitiatorDistribution dist;
    dist.mean = mean;
    dist.laplace = [mean](double s) { return 1.0 / (1.0 + mean * s); };
    return dist;
}

InitiatorDistribution deterministic_initiator(double length) {
    require(length > 0.0, "deterministic_initiator: length must be > 0");
    InitiatorDistribution dist;
    dist.mean = length;
    dist.laplace = [length](double s) { return std::exp(-length * s); };
    return dist;
}

InitiatorDistribution hypoexponential_initiator(Hypoexponential hypo) {
    InitiatorDistribution dist;
    dist.mean = hypo.mean();
    dist.laplace = [hypo = std::move(hypo)](double s) { return hypo.laplace(s); };
    return dist;
}

BusyPeriodResult busy_period_general(double beta, double alpha,
                                     const InitiatorDistribution& initiator) {
    require(beta > 0.0, "busy_period_general: beta must be > 0");
    require(alpha > 0.0, "busy_period_general: alpha must be > 0");
    require(initiator.mean > 0.0, "busy_period_general: initiator mean must be > 0");
    require(static_cast<bool>(initiator.laplace),
            "busy_period_general: initiator transform required");

    // eq. 18: E[B] = theta + sum_i (beta alpha)^i alpha [1 - h(i/alpha)] / (i! i).
    const double log_x = std::log(beta * alpha);
    const double log_alpha = std::log(alpha);
    double log_sum = kNegInf;
    std::size_t terms = 0;
    bool converged = false;
    const double hump = beta * alpha;
    for (std::size_t i = 1; i <= kMaxTerms; ++i) {
        const double h = initiator.laplace(static_cast<double>(i) / alpha);
        require(h >= 0.0 && h <= 1.0,
                "busy_period_general: Laplace transform must lie in [0, 1]");
        const double survivor = 1.0 - h;
        terms = i;
        if (survivor > 0.0) {
            const double log_term = static_cast<double>(i) * log_x - log_factorial(i) -
                                    std::log(static_cast<double>(i)) + log_alpha +
                                    std::log(survivor);
            log_sum = log_add_exp(log_sum, log_term);
            if (static_cast<double>(i) > hump &&
                log_term < log_sum + std::log(kRelTol)) {
                converged = true;
                break;
            }
        } else if (static_cast<double>(i) > hump) {
            converged = true;
            break;
        }
    }
    BusyPeriodResult result;
    result.terms = terms;
    result.converged = converged;
    result.log_value = log_add_exp(std::log(initiator.mean), log_sum);
    result.value = initiator.mean + std::exp(log_sum);
    if (!std::isfinite(result.value)) {
        result.value = std::numeric_limits<double>::infinity();
    }
    return result;
}

BusyPeriodResult residual_busy_period_via_initiator(std::size_t n,
                                                    const ResidualParams& params) {
    require(n >= 1, "residual_busy_period_via_initiator: requires n >= 1");
    require(params.lambda > 0.0 && params.service > 0.0,
            "residual_busy_period_via_initiator: invalid parameters");
    // Lemma 3.3: the virtual customer starting the residual busy period is
    // max{X_1..X_n} of memoryless residences, a hypoexponential.
    auto initiator = hypoexponential_initiator(
        Hypoexponential::max_of_iid_exponentials(n, 1.0 / params.service));
    return busy_period_general(params.lambda, params.service, initiator);
}

}  // namespace swarmavail::queueing
