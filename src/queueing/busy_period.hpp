// Busy-period theory for the M/G/infinity queue, following Browne & Steele
// (1993) as used in the paper (appendix eqs. 17-20 and eq. 9).
//
// The paper models a swarm as an M/G/infinity queue: peers/publishers arrive
// Poisson and stay for their residence time; content is available exactly
// during the queue's busy periods. These functions give the expected busy
// period under the parameterizations the paper needs:
//
//  - all-exponential residence times               (eq. 20)
//  - exceptional first customer                    (eq. 19)
//  - mixed two-class exponential residence times   (eq. 9)
//  - residual busy periods down to a coverage
//    threshold m                                   (eqs. 12-13, Lemma 3.3)
//
// Everything is evaluated with log-space series so the e^{Theta(K^2)} growth
// bundling induces does not overflow prematurely; when a busy period really
// is astronomically large the functions saturate to +infinity, which callers
// treat as "always available".
#pragma once

#include <cstddef>

namespace swarmavail::queueing {

/// Outcome of a busy-period series evaluation.
struct BusyPeriodResult {
    /// E[B] in seconds; +infinity when the series saturates double range.
    double value = 0.0;
    /// log(E[B]); finite even when `value` overflows, so asymptotic
    /// (Theta(K^2)) analyses can work with arbitrarily large bundles.
    double log_value = 0.0;
    /// Number of series terms evaluated.
    std::size_t terms = 0;
    /// False only if the term cap was hit before the tolerance.
    bool converged = true;
};

/// Expected busy period of an M/M/infinity queue: arrivals at rate `beta`,
/// exponential residence with mean `alpha` (appendix eq. 20):
///
///     E[B] = (e^{beta * alpha} - 1) / beta
///
/// Requires beta > 0, alpha > 0.
[[nodiscard]] BusyPeriodResult busy_period_exponential(double beta, double alpha);

/// Expected busy period when the customer initiating the busy period has an
/// exceptional exponential residence time with mean `theta` while all others
/// have mean `alpha` (appendix eq. 19):
///
///     E[B] = theta + alpha * theta * sum_i (beta*alpha)^i / (i! (alpha + i theta))
///
/// Requires beta > 0, alpha > 0, theta > 0.
[[nodiscard]] BusyPeriodResult busy_period_exceptional(double beta, double alpha,
                                                       double theta);

/// Parameters of the two-class mixed-exponential busy period (eq. 9).
///
/// Customers arrive Poisson at rate `beta`. The busy-period initiator stays
/// Exp(theta). Every later customer stays Exp(alpha1) with probability q1
/// (a peer actively downloading) or Exp(alpha2) with probability 1 - q1
/// (a publisher residing).
struct MixedBusyPeriodParams {
    double beta = 0.0;    ///< aggregate Poisson arrival rate (1/s)
    double theta = 0.0;   ///< mean residence of the initiating customer (s)
    double q1 = 0.0;      ///< probability a later customer is class 1
    double alpha1 = 0.0;  ///< mean residence of class-1 customers (s)
    double alpha2 = 0.0;  ///< mean residence of class-2 customers (s)
};

/// Expected busy period under `MixedBusyPeriodParams` (eq. 9):
///
///   E[B] = theta + sum_i beta^i/i! sum_j C(i,j)
///          q1^j q2^{i-j} alpha1^{1+j} alpha2^{1+i-j} theta
///          / (alpha1 alpha2 + j theta alpha2 + (i - j) theta alpha1)
///
/// Requires beta > 0, theta > 0, q1 in [0, 1], alpha1 > 0, alpha2 > 0.
/// Reduces to busy_period_exceptional(beta, alpha1, theta) at q1 = 1 and to
/// busy_period_exponential(beta, alpha) when q1 = 1, alpha1 = theta = alpha.
[[nodiscard]] BusyPeriodResult busy_period_mixed(const MixedBusyPeriodParams& params);

/// Parameters of a peers-only swarm used by the residual busy period
/// (Lemma 3.3): Poisson peer arrivals at rate `lambda`, exponential download
/// times with mean `service` = s / mu seconds.
struct ResidualParams {
    double lambda = 0.0;   ///< peer arrival rate (1/s)
    double service = 0.0;  ///< mean download time s/mu (s)
};

/// B(n, 0): expected time for a swarm that currently holds n peers (each
/// with memoryless remaining residence) to empty completely (eq. 12):
///
///   B(n,0) = sum_{i=1}^{n} service/i
///          + service * sum_{i>=1} (lambda*service)^i [(n+i)! - n! i!] / (i! (n+i)! i)
///
/// B(0, 0) = 0. Requires lambda > 0, service > 0, for n >= 1.
[[nodiscard]] BusyPeriodResult residual_busy_period_to_empty(std::size_t n,
                                                             const ResidualParams& params);

/// Expected first-passage time from population i to i-1 in the
/// M/M/infinity birth-death chain (births `lambda`, per-peer death rate
/// 1/`service`): d_i = service * sum_k rho^k (i-1)!/(i+k)!. B(n, m) is the
/// sum of these over i = m+1 .. n; exposing d_i separately lets callers
/// (and tests) avoid the catastrophic cancellation of the textbook
/// B(n,0) - B(m,0) difference at large offered loads.
[[nodiscard]] double downward_passage_time(std::size_t i, const ResidualParams& params);

/// B(n, m): expected time for the population to fall from n to the coverage
/// threshold m (< n), equal to Lemma 3.3's B(n,0) - B(m,0) but computed as
/// a sum of downward passage times. Returns 0 when n <= m.
[[nodiscard]] double residual_busy_period(std::size_t n, std::size_t m,
                                          const ResidualParams& params);

/// B(m): mean residual busy period when publishers leave with the peer
/// population in M/M/infinity steady state (eq. 13):
///
///   B(m) = sum_i Poisson(lambda*service)(i) * B(i, m)
///
/// The Poisson tail is truncated once the remaining mass is below 1e-12
/// relative to the running value.
[[nodiscard]] double steady_state_residual_busy_period(std::size_t m,
                                                       const ResidualParams& params);

}  // namespace swarmavail::queueing
