// Hypoexponential distribution: the sum of independent exponential stages
// with distinct rates.
//
// Lemma 3.3 of the paper uses it to describe the residual residence of the
// "virtual customer" that starts a residual busy period with n peers online:
// max of n i.i.d. Exp(mu/s) variables, which by the memoryless property is
// hypoexponential with stage means (s/mu, s/(2 mu), ..., s/(n mu)).
#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hpp"

namespace swarmavail::queueing {

/// Sum of independent exponential stages. Stage i has rate `rates[i]`.
class Hypoexponential {
 public:
    /// Requires a non-empty vector of positive rates.
    explicit Hypoexponential(std::vector<double> rates);

    /// The distribution of max{X_1..X_n} of n i.i.d. Exp(rate) variables:
    /// hypoexponential with stage rates (n*rate, (n-1)*rate, ..., rate).
    /// Requires n >= 1, rate > 0.
    [[nodiscard]] static Hypoexponential max_of_iid_exponentials(std::size_t n,
                                                                 double rate);

    [[nodiscard]] double mean() const noexcept;
    [[nodiscard]] double variance() const noexcept;

    /// Laplace transform E[e^{-s X}] = prod_i rate_i / (rate_i + s), s >= 0.
    [[nodiscard]] double laplace(double s) const;

    /// Draws one variate (sum of stage exponentials).
    [[nodiscard]] double sample(Rng& rng) const;

    [[nodiscard]] const std::vector<double>& rates() const noexcept { return rates_; }
    [[nodiscard]] std::size_t stages() const noexcept { return rates_.size(); }

 private:
    std::vector<double> rates_;
};

/// Steady-state occupancy probability P(N = k) of an M/M/infinity (or
/// M/G/infinity) queue with offered load rho = lambda * E[S]: Poisson(rho).
[[nodiscard]] double mginf_occupancy_pmf(std::size_t k, double rho);

/// Mean steady-state occupancy of M/G/infinity: rho itself (Little's law).
[[nodiscard]] double mginf_mean_occupancy(double lambda, double mean_service);

}  // namespace swarmavail::queueing
