#include "source.hpp"

#include <algorithm>
#include <cctype>

namespace swarmlint {
namespace {

/// Lexer state while blanking comments and literals.
enum class Mode {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
};

bool starts_with(std::string_view text, std::size_t pos, std::string_view prefix) {
    return text.compare(pos, prefix.size(), prefix) == 0;
}

}  // namespace

bool is_ident_char(char c) noexcept {
    return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
           c == '_';
}

char next_nonspace(std::string_view code, std::size_t pos) {
    pos = skip_space(code, pos);
    return pos < code.size() ? code[pos] : '\0';
}

std::size_t skip_space(std::string_view code, std::size_t pos) {
    while (pos < code.size() &&
           std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
        ++pos;
    }
    return pos;
}

char prev_nonspace(std::string_view code, std::size_t pos) {
    while (pos > 0) {
        --pos;
        if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) {
            return code[pos];
        }
    }
    return '\0';
}

std::size_t skip_template_args(std::string_view code, std::size_t pos) {
    if (pos >= code.size() || code[pos] != '<') {
        return std::string_view::npos;
    }
    int depth = 0;
    for (std::size_t i = pos; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            --depth;
            if (depth == 0) {
                return i + 1;
            }
        } else if (c == ';' || c == '{') {
            // A '<' that was a comparison, not a template argument list.
            return std::string_view::npos;
        }
    }
    return std::string_view::npos;
}

std::size_t skip_balanced(std::string_view code, std::size_t pos) {
    if (pos >= code.size()) {
        return std::string_view::npos;
    }
    const char open = code[pos];
    char close = '\0';
    switch (open) {
        case '(': close = ')'; break;
        case '{': close = '}'; break;
        case '[': close = ']'; break;
        default: return std::string_view::npos;
    }
    int depth = 0;
    for (std::size_t i = pos; i < code.size(); ++i) {
        if (code[i] == open) {
            ++depth;
        } else if (code[i] == close) {
            --depth;
            if (depth == 0) {
                return i + 1;
            }
        }
    }
    return std::string_view::npos;
}

SourceFile SourceFile::parse(std::string path, std::string_view content) {
    SourceFile out;
    out.path_ = std::move(path);
    out.raw_.assign(content);
    out.code_.assign(content.size(), ' ');

    Mode mode = Mode::kCode;
    std::string raw_delim;  // raw-string delimiter, e.g. )foo" without quotes
    const std::size_t n = content.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = content[i];
        if (c == '\n') {
            out.code_[i] = '\n';
            if (mode == Mode::kLineComment) {
                mode = Mode::kCode;
            }
            continue;
        }
        switch (mode) {
            case Mode::kCode:
                if (c == '/' && i + 1 < n && content[i + 1] == '/') {
                    mode = Mode::kLineComment;
                } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
                    mode = Mode::kBlockComment;
                    ++i;  // never reparse the '*' as a terminator
                } else if (c == '"') {
                    // R"delim( ... )delim" — the R and optional prefix sit
                    // just before the quote.
                    std::size_t p = i;
                    bool raw = p > 0 && content[p - 1] == 'R' &&
                               (p < 2 || !is_ident_char(content[p - 2]));
                    if (raw) {
                        std::size_t delim_end = content.find('(', i + 1);
                        if (delim_end == std::string_view::npos) {
                            out.code_[i] = '"';
                            mode = Mode::kString;
                            break;
                        }
                        raw_delim = ")";
                        raw_delim.append(content.substr(i + 1, delim_end - i - 1));
                        raw_delim.push_back('"');
                        out.code_[i] = '"';
                        mode = Mode::kRawString;
                    } else {
                        out.code_[i] = '"';
                        mode = Mode::kString;
                    }
                } else if (c == '\'' && !(i > 0 && is_ident_char(content[i - 1]))) {
                    // Skip digit separators (1'000'000): a quote directly
                    // after an identifier/number char is not a char literal.
                    out.code_[i] = '\'';
                    mode = Mode::kChar;
                } else {
                    out.code_[i] = c;
                }
                break;
            case Mode::kLineComment:
                break;  // stays blank until newline
            case Mode::kBlockComment:
                if (c == '*' && i + 1 < n && content[i + 1] == '/') {
                    ++i;
                    mode = Mode::kCode;
                }
                break;
            case Mode::kString:
                if (c == '\\' && i + 1 < n) {
                    ++i;
                    if (content[i] == '\n') {
                        out.code_[i] = '\n';
                    }
                } else if (c == '"') {
                    out.code_[i] = '"';
                    mode = Mode::kCode;
                }
                break;
            case Mode::kChar:
                if (c == '\\' && i + 1 < n) {
                    ++i;
                } else if (c == '\'') {
                    out.code_[i] = '\'';
                    mode = Mode::kCode;
                }
                break;
            case Mode::kRawString:
                if (c == ')' && starts_with(content, i, raw_delim)) {
                    i += raw_delim.size() - 1;
                    out.code_[i] = '"';
                    mode = Mode::kCode;
                }
                break;
        }
    }

    out.line_offsets_.push_back(0);
    for (std::size_t i = 0; i < n; ++i) {
        if (content[i] == '\n') {
            out.line_offsets_.push_back(i + 1);
        }
    }

    out.scan_preprocessor();
    out.scan_suppressions();
    return out;
}

int SourceFile::line_of_offset(std::size_t offset) const {
    const auto it = std::upper_bound(line_offsets_.begin(), line_offsets_.end(), offset);
    return static_cast<int>(it - line_offsets_.begin());
}

std::string_view SourceFile::code_line(int line) const {
    if (line < 1 || line > line_count()) {
        return {};
    }
    const std::size_t begin = line_offsets_[static_cast<std::size_t>(line - 1)];
    std::size_t end = line == line_count()
                          ? code_.size()
                          : line_offsets_[static_cast<std::size_t>(line)] - 1;
    return std::string_view{code_}.substr(begin, end - begin);
}

std::string_view SourceFile::raw_line(int line) const {
    if (line < 1 || line > line_count()) {
        return {};
    }
    const std::size_t begin = line_offsets_[static_cast<std::size_t>(line - 1)];
    std::size_t end = line == line_count()
                          ? raw_.size()
                          : line_offsets_[static_cast<std::size_t>(line)] - 1;
    return std::string_view{raw_}.substr(begin, end - begin);
}

bool SourceFile::guard_mentions(int line, std::string_view token) const {
    if (line < 1 || line > line_count()) {
        return false;
    }
    const auto& stack = guards_[static_cast<std::size_t>(line - 1)];
    return std::any_of(stack.begin(), stack.end(), [&](const std::string& cond) {
        return cond.find(token) != std::string::npos;
    });
}

bool SourceFile::is_directive_line(int line) const {
    if (line < 1 || line > line_count()) {
        return false;
    }
    return directive_[static_cast<std::size_t>(line - 1)];
}

void SourceFile::scan_preprocessor() {
    guards_.resize(static_cast<std::size_t>(line_count()));
    directive_.assign(static_cast<std::size_t>(line_count()), false);
    bool continuation = false;
    for (int line = 1; line <= line_count(); ++line) {
        const std::string_view text = code_line(line);
        const std::size_t idx = static_cast<std::size_t>(line - 1);
        if (continuation) {
            directive_[idx] = true;
            guards_[idx] = guard_stack_;
            continuation = !text.empty() && text.back() == '\\';
            continue;
        }
        const std::size_t first = skip_space(text, 0);
        const bool is_directive = first < text.size() && text[first] == '#';
        // The guard stack a line "sees" is the one in force when the line
        // begins; #endif pops before recording so the directive itself no
        // longer counts as inside the region it closes.
        if (is_directive) {
            directive_[idx] = true;
            std::size_t p = skip_space(text, first + 1);
            std::size_t word_end = p;
            while (word_end < text.size() && is_ident_char(text[word_end])) {
                ++word_end;
            }
            const std::string_view word = text.substr(p, word_end - p);
            std::string cond{text.substr(skip_space(text, word_end))};
            if (!cond.empty() && cond.back() == '\\') {
                cond.pop_back();
            }
            if (word == "if" || word == "ifdef" || word == "ifndef") {
                guard_stack_.push_back(cond);
            } else if (word == "elif") {
                if (!guard_stack_.empty()) {
                    guard_stack_.back() += " | " + cond;
                }
            } else if (word == "else") {
                // Keep the condition: the else-branch of a region guarded
                // on X still compiles in/out under X.
            } else if (word == "endif") {
                if (!guard_stack_.empty()) {
                    guard_stack_.pop_back();
                }
            }
            continuation = !text.empty() && text.back() == '\\';
        }
        guards_[idx] = guard_stack_;
    }
    guard_stack_.clear();
}

void SourceFile::scan_suppressions() {
    static constexpr std::string_view kMarker = "swarmlint-allow";
    for (int line = 1; line <= line_count(); ++line) {
        const std::string_view raw = raw_line(line);
        const std::string_view code = code_line(line);
        std::size_t pos = 0;
        while ((pos = raw.find(kMarker, pos)) != std::string_view::npos) {
            // Only honor the marker inside a comment: the blanked code has
            // spaces there, so a code-position match means a false hit
            // (e.g. a string in this very tool).
            if (pos < code.size() && code.compare(pos, kMarker.size(), kMarker) == 0) {
                pos += kMarker.size();
                continue;
            }
            Suppression s;
            s.line = line;
            std::size_t p = pos + kMarker.size();
            if (p >= raw.size() || raw[p] != '(') {
                s.malformed = true;
                s.problem = "expected '(' after swarmlint-allow";
                suppressions_.push_back(std::move(s));
                pos = p;
                continue;
            }
            const std::size_t close = raw.find(')', p);
            if (close == std::string_view::npos) {
                s.malformed = true;
                s.problem = "unterminated rule name: missing ')'";
                suppressions_.push_back(std::move(s));
                break;
            }
            s.rule.assign(raw.substr(p + 1, close - p - 1));
            if (s.rule.empty() ||
                s.rule.find_first_of(" \t") != std::string::npos) {
                s.malformed = true;
                s.problem = "rule name must be a single non-empty token";
                suppressions_.push_back(std::move(s));
                pos = close;
                continue;
            }
            std::size_t after = skip_space(raw, close + 1);
            if (after >= raw.size() || raw[after] != ':') {
                s.malformed = true;
                s.problem = "missing ': <justification>' after the rule name";
                suppressions_.push_back(std::move(s));
                pos = close;
                continue;
            }
            std::string reason{raw.substr(after + 1)};
            const std::size_t begin = reason.find_first_not_of(" \t");
            const std::size_t end = reason.find_last_not_of(" \t\r");
            if (begin == std::string::npos) {
                s.malformed = true;
                s.problem = "empty justification: every suppression must say why";
                suppressions_.push_back(std::move(s));
                pos = close;
                continue;
            }
            s.reason = reason.substr(begin, end - begin + 1);
            suppressions_.push_back(std::move(s));
            break;  // justification runs to end of line; nothing follows
        }
    }
}

bool SourceFile::consume_suppression(std::string_view rule, int line) {
    for (Suppression& s : suppressions_) {
        if (s.malformed || s.rule != rule) {
            continue;
        }
        if (s.line == line || s.line == line - 1) {
            s.used = true;
            return true;
        }
    }
    return false;
}

}  // namespace swarmlint
