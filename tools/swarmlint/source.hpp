// Lexical model of one C++ source file, as seen by swarmlint.
//
// swarmlint is deliberately AST-free: it tokenizes enough of C++ to blank
// out comments and string/character literals, track the preprocessor
// conditional stack per line, and parse `// swarmlint-allow(rule): reason`
// suppression comments. Rules then pattern-match over the blanked code,
// which keeps the tool dependency-free (no LLVM) while staying immune to
// the classic grep failure modes (matches inside comments or strings).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace swarmlint {

/// One `// swarmlint-allow(rule): reason` comment. A suppression silences
/// findings of `rule` on its own line and on the next code line, and must
/// carry a non-empty written justification (enforced by the
/// hygiene-suppression meta-rule, which cannot itself be suppressed).
struct Suppression {
    std::string rule;     ///< rule name between the parentheses
    std::string reason;   ///< justification text after the colon
    int line = 0;         ///< 1-based line of the comment
    bool malformed = false;
    std::string problem;  ///< human-readable description when malformed
    bool used = false;    ///< set by the driver when it silences a finding
};

/// A parsed source file: raw text, comment/string-blanked code, per-line
/// preprocessor guard stack, and suppression comments.
class SourceFile {
 public:
    /// Parses `content` under the repo-relative `path` ('/'-separated).
    /// The path, not the on-disk location, decides which rules apply,
    /// so tests can lint fixture snippets under virtual paths.
    static SourceFile parse(std::string path, std::string_view content);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

    /// Blanked code: same length/line structure as the input, with comment
    /// bodies and string/char literal contents replaced by spaces (the
    /// delimiting quotes survive so token boundaries stay intact).
    [[nodiscard]] const std::string& code() const noexcept { return code_; }

    [[nodiscard]] int line_count() const noexcept {
        return static_cast<int>(line_offsets_.size());
    }

    /// 1-based line containing byte `offset` of code().
    [[nodiscard]] int line_of_offset(std::size_t offset) const;

    /// Blanked code of one 1-based line (no trailing newline).
    [[nodiscard]] std::string_view code_line(int line) const;

    /// Raw text of one 1-based line (no trailing newline).
    [[nodiscard]] std::string_view raw_line(int line) const;

    /// True when `line` sits inside a preprocessor conditional whose
    /// condition text mentions `token` (any nesting level, either branch:
    /// the #else of a `#if defined(X)` region still "mentions" X).
    [[nodiscard]] bool guard_mentions(int line, std::string_view token) const;

    /// True when `line` is a preprocessor directive (or its continuation).
    [[nodiscard]] bool is_directive_line(int line) const;

    [[nodiscard]] const std::vector<Suppression>& suppressions() const noexcept {
        return suppressions_;
    }
    [[nodiscard]] std::vector<Suppression>& suppressions() noexcept {
        return suppressions_;
    }

    /// True if a well-formed suppression for `rule` covers `line` (the
    /// comment's own line or the line directly above). Marks it used.
    [[nodiscard]] bool consume_suppression(std::string_view rule, int line);

 private:
    std::string path_;
    std::string raw_;
    std::string code_;
    std::vector<std::size_t> line_offsets_;     // start offset of each line
    std::vector<std::string> guard_stack_;      // scratch during parse
    std::vector<std::vector<std::string>> guards_;  // per line, outermost first
    std::vector<bool> directive_;               // per line
    std::vector<Suppression> suppressions_;

    void scan_preprocessor();
    void scan_suppressions();
};

/// True when `c` can appear in a C++ identifier.
[[nodiscard]] bool is_ident_char(char c) noexcept;

/// Walks every identifier in `code`, invoking `fn(name, offset)`.
template <typename Fn>
void for_each_identifier(std::string_view code, Fn&& fn) {
    std::size_t i = 0;
    const std::size_t n = code.size();
    while (i < n) {
        const char c = code[i];
        if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_') {
            std::size_t begin = i;
            while (i < n && is_ident_char(code[i])) {
                ++i;
            }
            fn(code.substr(begin, i - begin), begin);
        } else {
            ++i;
        }
    }
}

/// First non-whitespace character at or after `pos`, or '\0' at end.
[[nodiscard]] char next_nonspace(std::string_view code, std::size_t pos);

/// Offset of the first non-whitespace character at or after `pos`.
[[nodiscard]] std::size_t skip_space(std::string_view code, std::size_t pos);

/// Last non-whitespace character strictly before `pos`, or '\0'.
[[nodiscard]] char prev_nonspace(std::string_view code, std::size_t pos);

/// Given `pos` pointing at '<', returns the offset one past the matching
/// '>' (handles nesting and '>>'), or std::string_view::npos on imbalance.
[[nodiscard]] std::size_t skip_template_args(std::string_view code, std::size_t pos);

/// Given `pos` pointing at an opening bracket ('(', '{', '['), returns the
/// offset one past the matching closer, or npos on imbalance.
[[nodiscard]] std::size_t skip_balanced(std::string_view code, std::size_t pos);

}  // namespace swarmlint
