// swarmlint driver: runs the rule registry over a set of sources, applies
// `// swarmlint-allow(rule): reason` suppressions, and emits deterministic
// console + JSON reports.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "rules.hpp"

namespace swarmlint {

struct LintInput {
    std::string path;     ///< repo-relative, '/'-separated
    std::string content;
};

struct LintResult {
    std::vector<Finding> findings;    ///< active findings, sorted
    std::vector<Finding> suppressed;  ///< silenced findings, with justification
    std::size_t files_scanned = 0;
    std::vector<std::string> rules_run;  ///< names, registration order
};

/// Lints in-memory sources. `rule_filter` empty means "all rules".
/// Cross-file state (numeric declarations, the compile-out macro set) is
/// derived from the inputs themselves, so a run is a pure function of
/// (inputs, filter) — two identical invocations produce byte-identical
/// reports.
[[nodiscard]] LintResult lint_sources(const std::vector<LintInput>& inputs,
                                      const std::vector<std::string>& rule_filter);

/// Renders findings as `path:line: [rule] message` lines plus a summary.
void write_console(const LintResult& result, std::ostream& os);

/// Machine-readable report. Deterministic: stable ordering, no timestamps,
/// repo-relative paths only.
void write_json(const LintResult& result, std::ostream& os);

}  // namespace swarmlint
