#include "swarmlint.hpp"

#include <algorithm>
#include <ostream>
#include <set>

namespace swarmlint {
namespace {

/// JSON string escaping (ASCII control chars, quote, backslash).
void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            case '\r': os << "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static constexpr char kHex[] = "0123456789abcdef";
                    os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_finding_json(std::ostream& os, const Finding& f, bool with_reason) {
    os << "    {\"rule\": ";
    write_json_string(os, f.rule);
    os << ", \"file\": ";
    write_json_string(os, f.path);
    os << ", \"line\": " << f.line << ", \"message\": ";
    write_json_string(os, f.message);
    if (with_reason) {
        os << ", \"justification\": ";
        write_json_string(os, f.justification);
    }
    os << "}";
}

}  // namespace

LintResult lint_sources(const std::vector<LintInput>& inputs,
                        const std::vector<std::string>& rule_filter) {
    LintResult result;
    result.files_scanned = inputs.size();

    std::vector<SourceFile> files;
    files.reserve(inputs.size());
    for (const LintInput& input : inputs) {
        files.push_back(SourceFile::parse(input.path, input.content));
    }

    LintOptions options;
    options.all_rules_active = rule_filter.empty();

    // Cross-file pass: the public numeric-contract surface and the
    // compile-out-able macro set, both derived from the inputs.
    std::set<std::string> derived_macros;
    for (const SourceFile& file : files) {
        collect_numeric_declarations(file, options.numeric_declarations);
        if (classify_path(file.path()) == Layer::kObserver) {
            collect_compile_out_macros(file, derived_macros);
        }
    }
    if (!derived_macros.empty()) {
        options.compile_out_macros = std::move(derived_macros);
    }
    // Stable declaration order regardless of input file order.
    std::sort(options.numeric_declarations.begin(), options.numeric_declarations.end(),
              [](const NumericDeclaration& a, const NumericDeclaration& b) {
                  if (a.name != b.name) return a.name < b.name;
                  if (a.header != b.header) return a.header < b.header;
                  return a.line < b.line;
              });
    options.numeric_declarations.erase(
        std::unique(options.numeric_declarations.begin(),
                    options.numeric_declarations.end(),
                    [](const NumericDeclaration& a, const NumericDeclaration& b) {
                        return a.name == b.name;
                    }),
        options.numeric_declarations.end());

    const std::vector<Rule>& rules = all_rules();
    auto rule_active = [&](const std::string& name) {
        return rule_filter.empty() ||
               std::find(rule_filter.begin(), rule_filter.end(), name) !=
                   rule_filter.end();
    };
    std::set<std::string> known_rules;
    for (const Rule& rule : rules) {
        known_rules.insert(rule.name);
        if (rule_active(rule.name)) {
            result.rules_run.push_back(rule.name);
        }
    }

    for (SourceFile& file : files) {
        std::vector<Finding> raw;
        RuleContext ctx{file, options, raw};
        for (const Rule& rule : rules) {
            if (rule_active(rule.name)) {
                rule.check(ctx);
            }
        }
        for (Finding& f : raw) {
            bool silenced = false;
            if (f.rule != "hygiene-suppression") {
                for (Suppression& s : file.suppressions()) {
                    if (!s.malformed && s.rule == f.rule &&
                        (s.line == f.line || s.line == f.line - 1)) {
                        s.used = true;
                        f.suppressed = true;
                        f.justification = s.reason;
                        silenced = true;
                        break;
                    }
                }
            }
            (silenced ? result.suppressed : result.findings).push_back(std::move(f));
        }
        // Meta-rule: suppression hygiene, after matching so staleness is known.
        if (!rule_active("hygiene-suppression")) {
            continue;
        }
        for (const Suppression& s : file.suppressions()) {
            Finding f;
            f.rule = "hygiene-suppression";
            f.path = file.path();
            f.line = s.line;
            if (s.malformed) {
                f.message = "malformed swarmlint-allow comment: " + s.problem +
                            " (expected '// swarmlint-allow(rule): reason')";
            } else if (known_rules.count(s.rule) == 0) {
                f.message = "swarmlint-allow names unknown rule '" + s.rule +
                            "'; run swarmlint --list-rules for the registry";
            } else if (!s.used && options.all_rules_active) {
                f.message = "stale suppression: swarmlint-allow(" + s.rule +
                            ") silences nothing on this or the next line; delete "
                            "it so dead waivers cannot accumulate";
            } else {
                continue;
            }
            result.findings.push_back(std::move(f));
        }
    }

    std::sort(result.findings.begin(), result.findings.end());
    std::sort(result.suppressed.begin(), result.suppressed.end());
    return result;
}

void write_console(const LintResult& result, std::ostream& os) {
    for (const Finding& f : result.findings) {
        os << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    }
    os << "swarmlint: " << result.files_scanned << " files, "
       << result.rules_run.size() << " rules, " << result.findings.size()
       << " finding(s), " << result.suppressed.size() << " suppressed\n";
}

void write_json(const LintResult& result, std::ostream& os) {
    os << "{\n";
    os << "  \"tool\": \"swarmlint\",\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"files_scanned\": " << result.files_scanned << ",\n";
    os << "  \"rules\": [\n";
    const std::vector<Rule>& rules = all_rules();
    bool first = true;
    for (const Rule& rule : rules) {
        if (std::find(result.rules_run.begin(), result.rules_run.end(), rule.name) ==
            result.rules_run.end()) {
            continue;
        }
        if (!first) {
            os << ",\n";
        }
        first = false;
        os << "    {\"name\": ";
        write_json_string(os, rule.name);
        os << ", \"description\": ";
        write_json_string(os, rule.description);
        os << "}";
    }
    os << "\n  ],\n";
    os << "  \"findings\": [\n";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        write_finding_json(os, result.findings[i], false);
        os << (i + 1 < result.findings.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"suppressed\": [\n";
    for (std::size_t i = 0; i < result.suppressed.size(); ++i) {
        write_finding_json(os, result.suppressed[i], true);
        os << (i + 1 < result.suppressed.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"summary\": {\"findings\": " << result.findings.size()
       << ", \"suppressed\": " << result.suppressed.size() << "}\n";
    os << "}\n";
}

}  // namespace swarmlint
