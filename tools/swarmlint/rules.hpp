// swarmlint rule registry.
//
// Every project invariant is a named, individually-suppressible rule. A
// rule sees one parsed SourceFile at a time plus the LintOptions (which
// carry cross-file knowledge such as the compile-out-able observability
// macro set and the header-declared function index), and emits findings
// with file/line diagnostics. Suppression handling happens in the driver,
// not in the rules.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "source.hpp"

namespace swarmlint {

/// One diagnostic. Sorted by (path, line, rule, message) everywhere so
/// console output and the JSON report are deterministic byte-for-byte.
struct Finding {
    std::string rule;
    std::string path;
    int line = 0;
    std::string message;
    bool suppressed = false;
    std::string justification;  ///< the suppression's reason, when suppressed

    friend bool operator<(const Finding& a, const Finding& b) {
        if (a.path != b.path) return a.path < b.path;
        if (a.line != b.line) return a.line < b.line;
        if (a.rule != b.rule) return a.rule < b.rule;
        return a.message < b.message;
    }
};

/// A public function declared in some header with raw floating-point
/// parameters; contract-require-numeric checks its definition.
struct NumericDeclaration {
    std::string name;         ///< unqualified function name
    std::string header;       ///< repo-relative path of the declaring header
    int line = 0;             ///< declaration line
};

struct LintOptions {
    /// Observability macros proven compile-out-able (defined as no-ops under
    /// a *_DISABLED branch of their home header). Engine call sites may only
    /// use these. Defaults cover the trace-off preset's macro set; the
    /// driver re-derives the set from the real headers when linting a repo.
    std::set<std::string> compile_out_macros = {
        "SWARMAVAIL_TRACE",
        "SWARMAVAIL_TELEMETRY",
        "SWARMAVAIL_PROF_SCOPE",
        "SWARMAVAIL_FPRINT",
        "SWARMAVAIL_SPAN",
    };

    /// Header-declared functions with raw double/float parameters, indexed
    /// across the whole run before per-file rule checks execute.
    std::vector<NumericDeclaration> numeric_declarations;

    /// When false, the hygiene-suppression rule skips the stale-suppression
    /// check (used when running a filtered subset of rules, where unused
    /// suppressions are expected).
    bool all_rules_active = true;
};

/// Path-based layer classification; the repo-relative path decides which
/// rule families apply.
enum class Layer {
    kEngine,    ///< result-producing: sim/swarm/catalog/model/queueing/measurement
    kObserver,  ///< util/metrics, util/telemetry, util/profile, sim/trace,
                ///< sim/fingerprint, sim/flight_recorder, serve/span
    kRandom,    ///< util/random — the one home for entropy primitives
    kSupport,   ///< remaining util/ (stats, check, ...) — result-adjacent
    kService,   ///< src/serve/ — the planning daemon. Wall clocks are its
                ///< job (latency histograms), so the engine-determinism
                ///< clock rules stand down; entropy hygiene still applies
                ///< (response bytes must be a function of the request).
    kOther,     ///< outside src/
};

[[nodiscard]] Layer classify_path(std::string_view path);

/// True for the observer files allowed to read wall clocks (telemetry
/// sampling, phase profiling, and request-latency spans are wall-time by
/// definition).
[[nodiscard]] bool is_wall_clock_whitelisted(std::string_view path);

struct RuleContext {
    SourceFile& file;
    const LintOptions& options;
    std::vector<Finding>& out;

    void report(std::string rule, int line, std::string message);
};

struct Rule {
    std::string name;
    std::string description;
    void (*check)(RuleContext&);
};

/// All rules, in stable registration order.
[[nodiscard]] const std::vector<Rule>& all_rules();

/// Scans a header SourceFile for public function declarations carrying raw
/// double/float parameters (for contract-require-numeric).
void collect_numeric_declarations(const SourceFile& header,
                                  std::vector<NumericDeclaration>& out);

/// Scans an observability header for SWARMAVAIL_* macros defined as no-ops
/// under a *_DISABLED preprocessor branch, adding them to `out`.
void collect_compile_out_macros(const SourceFile& header, std::set<std::string>& out);

}  // namespace swarmlint
