// swarmlint CLI.
//
//   swarmlint [--root DIR] [--json FILE] [--rule NAME]... [--list-rules]
//             [--quiet] [paths...]
//
// Paths are repo-relative files or directories (default: src). Exit code 0
// when clean (suppressed findings are clean), 1 when findings remain, 2 on
// usage or I/O errors.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "swarmlint.hpp"

namespace fs = std::filesystem;

namespace {

int usage(std::ostream& os, int code) {
    os << "usage: swarmlint [--root DIR] [--json FILE] [--rule NAME]...\n"
          "                 [--list-rules] [--quiet] [paths...]\n"
          "\n"
          "Lints repo sources against the project's determinism, observer-\n"
          "neutrality and contract-hygiene rules. Paths default to 'src'.\n"
          "Suppress one finding with '// swarmlint-allow(rule): reason'.\n";
    return code;
}

bool is_source_file(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = fs::current_path();
    std::string json_path;
    std::vector<std::string> rule_filter;
    std::vector<std::string> targets;
    bool list_rules = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "swarmlint: " << flag << " needs a value\n";
                std::exit(usage(std::cerr, 2));
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value("--root");
        } else if (arg == "--json") {
            json_path = value("--json");
        } else if (arg == "--rule") {
            rule_filter.push_back(value("--rule"));
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "swarmlint: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            targets.push_back(arg);
        }
    }

    if (list_rules) {
        for (const swarmlint::Rule& rule : swarmlint::all_rules()) {
            std::cout << rule.name << "\n    " << rule.description << "\n";
        }
        return 0;
    }

    if (targets.empty()) {
        targets.emplace_back("src");
    }

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "swarmlint: cannot resolve root: " << ec.message() << "\n";
        return 2;
    }

    // Collect candidate files, then sort by repo-relative path so the scan
    // order (and with it the report) is independent of directory order.
    std::vector<std::string> rel_paths;
    for (const std::string& target : targets) {
        fs::path abs = fs::path(target).is_absolute() ? fs::path(target) : root / target;
        abs = fs::weakly_canonical(abs, ec);
        if (ec || !fs::exists(abs)) {
            std::cerr << "swarmlint: no such path: " << target << "\n";
            return 2;
        }
        auto add = [&](const fs::path& p) {
            const fs::path rel = fs::relative(p, root, ec);
            rel_paths.push_back(ec ? p.generic_string() : rel.generic_string());
        };
        if (fs::is_directory(abs)) {
            for (const auto& entry : fs::recursive_directory_iterator(abs)) {
                if (entry.is_regular_file() && is_source_file(entry.path())) {
                    add(entry.path());
                }
            }
        } else {
            add(abs);
        }
    }
    std::sort(rel_paths.begin(), rel_paths.end());
    rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()), rel_paths.end());

    std::vector<swarmlint::LintInput> inputs;
    inputs.reserve(rel_paths.size());
    for (const std::string& rel : rel_paths) {
        std::ifstream in(root / rel, std::ios::binary);
        if (!in) {
            std::cerr << "swarmlint: cannot read " << rel << "\n";
            return 2;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        inputs.push_back({rel, buffer.str()});
    }

    const swarmlint::LintResult result = swarmlint::lint_sources(inputs, rule_filter);

    if (!quiet) {
        swarmlint::write_console(result, std::cout);
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::cerr << "swarmlint: cannot write " << json_path << "\n";
            return 2;
        }
        swarmlint::write_json(result, out);
    }
    return result.findings.empty() ? 0 : 1;
}
