#include "rules.hpp"

#include <algorithm>
#include <array>
#include <string_view>

namespace swarmlint {
namespace {

using std::string_view;

bool starts_with(string_view text, string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(string_view text, string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

bool is_header(string_view path) { return ends_with(path, ".hpp"); }

/// The engine headers an observer must never include: anything that can
/// mutate simulation state. sim/trace.hpp, sim/fingerprint.hpp, and
/// sim/flight_recorder.hpp are the sim/ headers that are themselves
/// observers.
bool is_engine_header_include(string_view target) {
    if (target == "sim/trace.hpp" || target == "sim/fingerprint.hpp" ||
        target == "sim/flight_recorder.hpp") {
        return false;
    }
    static constexpr std::array<string_view, 6> kEnginePrefixes = {
        "sim/", "swarm/", "catalog/", "measurement/", "model/", "queueing/",
    };
    return std::any_of(kEnginePrefixes.begin(), kEnginePrefixes.end(),
                       [&](string_view p) { return starts_with(target, p); });
}

/// Extracts the target of an `#include "..."` directive line, or empty.
/// Callers must pass the RAW line: the blanked code erases string literal
/// contents, and an include path is exactly that.
string_view quoted_include_target(string_view line) {
    const std::size_t hash = skip_space(line, 0);
    if (hash >= line.size() || line[hash] != '#') {
        return {};
    }
    std::size_t p = skip_space(line, hash + 1);
    if (!starts_with(line.substr(p), "include")) {
        return {};
    }
    p = line.find('"', p);
    if (p == string_view::npos) {
        return {};
    }
    const std::size_t end = line.find('"', p + 1);
    if (end == string_view::npos) {
        return {};
    }
    return line.substr(p + 1, end - p - 1);
}

// ---------------------------------------------------------------------------
// determinism family
// ---------------------------------------------------------------------------

void check_det_rand(RuleContext& ctx) {
    const Layer layer = classify_path(ctx.file.path());
    if (layer == Layer::kRandom || layer == Layer::kOther) {
        return;
    }
    static constexpr std::array<string_view, 13> kBanned = {
        "rand",          "srand",       "rand_r",      "drand48",
        "lrand48",       "mrand48",     "mt19937",     "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "ranlux24_base", "ranlux48_base",
    };
    for_each_identifier(ctx.file.code(), [&](string_view name, std::size_t off) {
        if (std::find(kBanned.begin(), kBanned.end(), name) == kBanned.end()) {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        ctx.report("det-rand", line,
                   "'" + std::string(name) +
                       "' bypasses the seeded Rng stream; draw randomness through "
                       "util/random (swarmavail::Rng) so one 64-bit seed fully "
                       "determines a run");
    });
}

void check_det_random_device(RuleContext& ctx) {
    const Layer layer = classify_path(ctx.file.path());
    if (layer == Layer::kRandom || layer == Layer::kOther) {
        return;
    }
    for_each_identifier(ctx.file.code(), [&](string_view name, std::size_t off) {
        if (name != "random_device") {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        ctx.report("det-random-device", line,
                   "std::random_device injects hardware entropy; seeds must be "
                   "explicit so results are reproducible (use util/random)");
    });
}

void check_det_wall_clock(RuleContext& ctx) {
    const Layer layer = classify_path(ctx.file.path());
    // kService measures request latency; wall clocks are its purpose.
    if (layer == Layer::kOther || layer == Layer::kRandom ||
        layer == Layer::kService) {
        return;
    }
    if (is_wall_clock_whitelisted(ctx.file.path())) {
        return;
    }
    static constexpr std::array<string_view, 9> kClocks = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
    };
    const string_view code = ctx.file.code();
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        const bool named_clock =
            std::find(kClocks.begin(), kClocks.end(), name) != kClocks.end();
        bool c_call = false;
        if (!named_clock && (name == "time" || name == "clock")) {
            // Only the C library calls `time(...)` / `clock()`; member
            // functions and locals of the same name are fine.
            const char prev = off > 0 ? prev_nonspace(code, off) : '\0';
            const char next = next_nonspace(code, off + name.size());
            c_call = next == '(' && prev != '.' && prev != '>';
        }
        if (!named_clock && !c_call) {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        ctx.report("det-wall-clock", line,
                   "wall-clock read ('" + std::string(name) +
                       "') in a result-producing layer; simulation output must "
                       "depend only on (config, seed). Wall time belongs in "
                       "util/telemetry or util/profile");
    });
}

void check_det_unordered_iter(RuleContext& ctx) {
    const Layer layer = classify_path(ctx.file.path());
    if (layer != Layer::kEngine) {
        return;
    }
    const string_view code = ctx.file.code();

    // Pass 1: names declared in this file with an unordered container type
    // (members, locals, and reference/pointer parameters all match).
    std::set<std::string> containers;
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        if (name != "unordered_map" && name != "unordered_set" &&
            name != "unordered_multimap" && name != "unordered_multiset") {
            return;
        }
        std::size_t p = skip_space(code, off + name.size());
        if (p >= code.size() || code[p] != '<') {
            return;
        }
        p = skip_template_args(code, p);
        if (p == string_view::npos) {
            return;
        }
        p = skip_space(code, p);
        while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
            p = skip_space(code, p + 1);
        }
        std::size_t end = p;
        while (end < code.size() && is_ident_char(code[end])) {
            ++end;
        }
        if (end == p) {
            return;  // e.g. ...>::iterator — not a declaration
        }
        if (next_nonspace(code, end) == '(') {
            return;  // function returning a container, not a variable
        }
        containers.insert(std::string(code.substr(p, end - p)));
    });
    if (containers.empty()) {
        return;
    }

    // Pass 2a: range-for whose range expression names such a container.
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        if (name != "for") {
            return;
        }
        std::size_t open = skip_space(code, off + name.size());
        if (open >= code.size() || code[open] != '(') {
            return;
        }
        const std::size_t close = skip_balanced(code, open);
        if (close == string_view::npos) {
            return;
        }
        const string_view inner = code.substr(open + 1, close - open - 2);
        // Find the range-for ':' (skip '::').
        std::size_t colon = string_view::npos;
        for (std::size_t i = 0; i < inner.size(); ++i) {
            if (inner[i] != ':') {
                continue;
            }
            if (i + 1 < inner.size() && inner[i + 1] == ':') {
                ++i;
                continue;
            }
            if (i > 0 && inner[i - 1] == ':') {
                continue;
            }
            colon = i;
            break;
        }
        if (colon == string_view::npos) {
            return;
        }
        const string_view range_expr = inner.substr(colon + 1);
        bool hit = false;
        std::string hit_name;
        for_each_identifier(range_expr, [&](string_view id, std::size_t) {
            if (!hit && containers.count(std::string(id)) != 0) {
                hit = true;
                hit_name.assign(id);
            }
        });
        if (hit) {
            ctx.report("det-unordered-iter", ctx.file.line_of_offset(open),
                       "range-for over unordered container '" + hit_name +
                           "': hash order is implementation-defined and can leak "
                           "into results. Iterate a sorted/indexed copy, or "
                           "justify why order cannot reach any output");
        }
    });

    // Pass 2b: explicit iterator traversal (`c.begin()` and friends), which
    // also covers bulk copies like `v.assign(c.begin(), c.end())`.
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        if (containers.count(std::string(name)) == 0) {
            return;
        }
        std::size_t p = skip_space(code, off + name.size());
        if (p < code.size() && code[p] == '.') {
            ++p;
        } else if (p + 1 < code.size() && code[p] == '-' && code[p + 1] == '>') {
            p += 2;
        } else {
            return;
        }
        p = skip_space(code, p);
        std::size_t end = p;
        while (end < code.size() && is_ident_char(code[end])) {
            ++end;
        }
        const string_view member = code.substr(p, end - p);
        if (member != "begin" && member != "cbegin" && member != "rbegin" &&
            member != "crbegin") {
            return;
        }
        ctx.report("det-unordered-iter", ctx.file.line_of_offset(off),
                   "iterator traversal of unordered container '" + std::string(name) +
                       "': hash order is implementation-defined and can leak into "
                       "results. Copy into a sorted container first, or justify "
                       "why order cannot reach any output");
    });
}

void check_det_env(RuleContext& ctx) {
    if (classify_path(ctx.file.path()) != Layer::kEngine) {
        return;
    }
    static constexpr std::array<string_view, 5> kBanned = {
        "getenv", "secure_getenv", "hardware_concurrency", "get_id", "pthread_self",
    };
    for_each_identifier(ctx.file.code(), [&](string_view name, std::size_t off) {
        if (std::find(kBanned.begin(), kBanned.end(), name) == kBanned.end()) {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        ctx.report("det-env", line,
                   "'" + std::string(name) +
                       "' makes results depend on the host environment or thread "
                       "identity; engine output must be a function of (config, "
                       "seed) only");
    });
}

void check_det_static_state(RuleContext& ctx) {
    const Layer layer = classify_path(ctx.file.path());
    if (layer != Layer::kEngine && layer != Layer::kSupport) {
        return;
    }
    for (int line = 1; line <= ctx.file.line_count(); ++line) {
        if (ctx.file.is_directive_line(line)) {
            continue;
        }
        const string_view text = ctx.file.code_line(line);
        std::size_t p = skip_space(text, 0);
        // Accept `inline` / `friend` before the storage keyword.
        for (string_view lead : {string_view{"inline"}, string_view{"friend"}}) {
            if (starts_with(text.substr(p), lead) &&
                !is_ident_char(p + lead.size() < text.size() ? text[p + lead.size()]
                                                             : ' ')) {
                p = skip_space(text, p + lead.size());
            }
        }
        string_view keyword;
        for (string_view k : {string_view{"static"}, string_view{"thread_local"}}) {
            if (starts_with(text.substr(p), k) &&
                (p + k.size() >= text.size() || !is_ident_char(text[p + k.size()]))) {
                keyword = k;
                break;
            }
        }
        if (keyword.empty()) {
            continue;
        }
        const string_view rest = text.substr(p + keyword.size());
        const std::size_t stop = rest.find_first_of("(=;");
        const string_view head = rest.substr(0, stop);
        if (stop != string_view::npos && rest[stop] == '(') {
            continue;  // static member/free function declaration
        }
        auto head_has = [&](string_view word) {
            std::size_t q = head.find(word);
            while (q != string_view::npos) {
                const bool left_ok = q == 0 || !is_ident_char(head[q - 1]);
                const bool right_ok = q + word.size() >= head.size() ||
                                      !is_ident_char(head[q + word.size()]);
                if (left_ok && right_ok) {
                    return true;
                }
                q = head.find(word, q + 1);
            }
            return false;
        };
        if (head_has("const") || head_has("constexpr") || head_has("constinit")) {
            continue;
        }
        if (stop == string_view::npos) {
            continue;  // `static` alone on a line: keyword split from decl; rare
        }
        ctx.report("det-static-state", line,
                   "mutable '" + std::string(keyword) +
                       "' state in a result-producing layer: hidden cross-run "
                       "(and cross-thread) coupling breaks replay determinism; "
                       "thread state through explicit parameters instead");
    }
}

// ---------------------------------------------------------------------------
// observer-neutrality family
// ---------------------------------------------------------------------------

void check_obs_no_engine_include(RuleContext& ctx) {
    if (classify_path(ctx.file.path()) != Layer::kObserver) {
        return;
    }
    for (int line = 1; line <= ctx.file.line_count(); ++line) {
        const string_view target = quoted_include_target(ctx.file.raw_line(line));
        if (target.empty() || !is_engine_header_include(target)) {
            continue;
        }
        ctx.report("obs-no-engine-include", line,
                   "observer file includes engine header \"" + std::string(target) +
                       "\"; observers must stay one-way (engine -> observer) so "
                       "attaching them cannot perturb simulation state");
    }
}

void check_obs_guarded_telemetry(RuleContext& ctx) {
    if (classify_path(ctx.file.path()) != Layer::kEngine) {
        return;
    }
    const string_view code = ctx.file.code();
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        if (name != "telemetry") {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        std::size_t p = skip_space(code, off + name.size());
        bool touch = false;
        if (p + 1 < code.size() && code[p] == '-' && code[p + 1] == '>') {
            touch = true;  // dereference of an attached session
        } else if (p + 1 < code.size() && code[p] == ':' && code[p + 1] == ':') {
            // Qualified name: a *call* into the namespace is a touch; a type
            // mention (telemetry::RunCounters* x) is not.
            std::size_t q = skip_space(code, p + 2);
            while (q < code.size() && is_ident_char(code[q])) {
                ++q;
            }
            touch = next_nonspace(code, q) == '(';
        }
        if (!touch) {
            return;
        }
        if (ctx.file.guard_mentions(line, "SWARMAVAIL_TELEMETRY_DISABLED")) {
            return;
        }
        const string_view line_code = ctx.file.code_line(line);
        for (const std::string& macro : ctx.options.compile_out_macros) {
            if (line_code.find(macro) != string_view::npos) {
                return;  // routed through a compile-out-able macro
            }
        }
        ctx.report("obs-guarded-telemetry", line,
                   "telemetry touch outside an #if/#ifndef region keyed on "
                   "SWARMAVAIL_TELEMETRY_DISABLED (and not via a compile-out "
                   "macro); the trace-off preset must erase every observer call "
                   "site from the engines");
    });
}

void check_obs_guarded_fingerprint(RuleContext& ctx) {
    if (classify_path(ctx.file.path()) != Layer::kEngine) {
        return;
    }
    const string_view code = ctx.file.code();
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        // A touch is a dereference of an attached fingerprint pointer or
        // any use of the Fingerprint type (members, locals, constructions).
        // Copying the runtime `bool fingerprint` config flag around is not
        // a touch: it survives the trace-off build as a dead bool.
        const bool pointer = name == "fingerprint" || name == "fingerprint_";
        const bool type = name == "Fingerprint";
        if (!pointer && !type) {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        bool touch = type;
        if (pointer) {
            const std::size_t p = skip_space(code, off + name.size());
            touch = p + 1 < code.size() && code[p] == '-' && code[p + 1] == '>';
        }
        if (!touch) {
            return;
        }
        if (ctx.file.guard_mentions(line, "SWARMAVAIL_FINGERPRINT_DISABLED")) {
            return;
        }
        const string_view line_code = ctx.file.code_line(line);
        for (const std::string& macro : ctx.options.compile_out_macros) {
            if (line_code.find(macro) != string_view::npos) {
                return;  // routed through a compile-out-able macro
            }
        }
        ctx.report("obs-guarded-fingerprint", line,
                   "fingerprint touch outside an #if/#ifndef region keyed on "
                   "SWARMAVAIL_FINGERPRINT_DISABLED (and not via the "
                   "SWARMAVAIL_FPRINT macro); the trace-off preset must erase "
                   "every fingerprint call site from the engines");
    });
}

void check_obs_macro_compile_out(RuleContext& ctx) {
    if (classify_path(ctx.file.path()) != Layer::kEngine) {
        return;
    }
    for_each_identifier(ctx.file.code(), [&](string_view name, std::size_t off) {
        if (!starts_with(name, "SWARMAVAIL_")) {
            return;
        }
        const string_view tail = name.substr(string_view{"SWARMAVAIL_"}.size());
        const bool observability = starts_with(tail, "TRACE") ||
                                   starts_with(tail, "TELEMETRY") ||
                                   starts_with(tail, "PROF") ||
                                   starts_with(tail, "FPRINT");
        if (!observability || ends_with(name, "_DISABLED")) {
            return;
        }
        if (ctx.options.compile_out_macros.count(std::string(name)) != 0) {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        ctx.report("obs-macro-compile-out", line,
                   "observability macro '" + std::string(name) +
                       "' is not in the compile-out-able set derived from the "
                       "trace-off preset's headers; every trace/telemetry/profile "
                       "call site must vanish when those features are disabled");
    });
}

void check_svc_guarded_span(RuleContext& ctx) {
    if (classify_path(ctx.file.path()) != Layer::kService) {
        return;
    }
    const string_view code = ctx.file.code();
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        // A touch is a dereference of the span scratch or the hub. Copying
        // the pointers around (or stamping POD timestamps into a Task) is
        // not a touch: those survive the trace-off build as dead data.
        if (name != "spans" && name != "spans_" && name != "span_hub_") {
            return;
        }
        const int line = ctx.file.line_of_offset(off);
        if (ctx.file.is_directive_line(line)) {
            return;
        }
        const std::size_t p = skip_space(code, off + name.size());
        if (p + 1 >= code.size() || code[p] != '-' || code[p + 1] != '>') {
            return;
        }
        if (ctx.file.guard_mentions(line, "SWARMAVAIL_SPANS_DISABLED")) {
            return;
        }
        const string_view line_code = ctx.file.code_line(line);
        for (const std::string& macro : ctx.options.compile_out_macros) {
            if (line_code.find(macro) != string_view::npos) {
                return;  // routed through a compile-out-able macro
            }
        }
        ctx.report("svc-guarded-span", line,
                   "span emission site ('" + std::string(name) +
                       "->') outside an #if/#ifndef region keyed on "
                       "SWARMAVAIL_SPANS_DISABLED (and not via the SWARMAVAIL_SPAN "
                       "macro); the trace-off preset must erase every span call "
                       "site from the service layer");
    });
}

// ---------------------------------------------------------------------------
// contract-hygiene family
// ---------------------------------------------------------------------------

constexpr std::array<string_view, 14> kNonFunctionNames = {
    "if",     "for",     "while",  "switch",        "return", "sizeof", "decltype",
    "defined", "alignof", "static_assert", "catch", "new",    "delete", "operator",
};

/// True when the parenthesized parameter list (without the outer parens)
/// contains a raw `double`/`float` parameter declaration.
bool has_raw_float_param(string_view params) {
    bool found = false;
    for_each_identifier(params, [&](string_view id, std::size_t off) {
        if (found || (id != "double" && id != "float")) {
            return;
        }
        const char next = next_nonspace(params, off + id.size());
        // `double x`, `double&`, `double,`, `double)` are parameters;
        // `double>` is a template argument (vector<double>, cast).
        if (next == '>' || next == '(') {
            return;
        }
        found = true;
    });
    return found;
}

/// Starting just past a definition's parameter list, skips qualifiers,
/// noexcept-specifiers and a constructor initializer list. Returns the
/// offset of the body's '{', or npos when this is not a definition.
std::size_t find_body_brace(string_view code, std::size_t p) {
    for (;;) {
        p = skip_space(code, p);
        if (p >= code.size()) {
            return string_view::npos;
        }
        const char c = code[p];
        if (c == '{') {
            return p;
        }
        if (c == ';') {
            return string_view::npos;  // declaration only
        }
        if (c == ':' && p + 1 < code.size() && code[p + 1] != ':') {
            // Constructor initializer list: `ident(...)` or `ident{...}`
            // entries separated by commas, then the body brace.
            p = skip_space(code, p + 1);
            for (;;) {
                while (p < code.size() &&
                       (is_ident_char(code[p]) || code[p] == ':' || code[p] == '<' ||
                        code[p] == '>')) {
                    ++p;
                }
                p = skip_space(code, p);
                if (p >= code.size() || (code[p] != '(' && code[p] != '{')) {
                    return string_view::npos;
                }
                p = skip_balanced(code, p);
                if (p == string_view::npos) {
                    return string_view::npos;
                }
                p = skip_space(code, p);
                if (p < code.size() && code[p] == ',') {
                    p = skip_space(code, p + 1);
                    continue;
                }
                break;
            }
            continue;
        }
        if (is_ident_char(c)) {
            std::size_t end = p;
            while (end < code.size() && is_ident_char(code[end])) {
                ++end;
            }
            const string_view word = code.substr(p, end - p);
            if (word == "const" || word == "noexcept" || word == "override" ||
                word == "final" || word == "mutable") {
                p = end;
                if (word == "noexcept" && next_nonspace(code, end) == '(') {
                    p = skip_balanced(code, skip_space(code, end));
                    if (p == string_view::npos) {
                        return string_view::npos;
                    }
                }
                continue;
            }
            return string_view::npos;  // something else: not a definition
        }
        return string_view::npos;
    }
}

bool body_has_contract_check(string_view body) {
    for (string_view check : {string_view{"SWARMAVAIL_REQUIRE"},
                              string_view{"SWARMAVAIL_INVARIANT"},
                              string_view{"SWARMAVAIL_ASSERT"},
                              string_view{"require"}, string_view{"ensure"}}) {
        std::size_t q = body.find(check);
        while (q != string_view::npos) {
            const bool left_ok = q == 0 || !is_ident_char(body[q - 1]);
            const bool right_ok = q + check.size() >= body.size() ||
                                  !is_ident_char(body[q + check.size()]);
            if (left_ok && right_ok) {
                return true;
            }
            q = body.find(check, q + 1);
        }
    }
    return false;
}

void check_contract_require_numeric(RuleContext& ctx) {
    const Layer layer = classify_path(ctx.file.path());
    if (layer != Layer::kEngine) {
        return;
    }
    const string_view code = ctx.file.code();
    for (const NumericDeclaration& decl : ctx.options.numeric_declarations) {
        for_each_identifier(code, [&](string_view name, std::size_t off) {
            if (name != decl.name) {
                return;
            }
            std::size_t open = skip_space(code, off + name.size());
            if (open >= code.size() || code[open] != '(') {
                return;
            }
            // A definition's name is preceded by a return type, `::`, or a
            // statement boundary — never by `.`/`->` (member call) or by
            // `(`/`,`/operators (argument position / call in expression).
            const char prev = off > 0 ? prev_nonspace(code, off) : '\0';
            if (prev == '.' || prev == '(' || prev == ',' || prev == '=' ||
                prev == '+' || prev == '-' || prev == '!' || prev == '<' ||
                prev == '?' || prev == '|') {
                return;
            }
            const std::size_t close = skip_balanced(code, open);
            if (close == string_view::npos) {
                return;
            }
            if (!has_raw_float_param(code.substr(open + 1, close - open - 2))) {
                return;  // a different overload, or no raw numeric params here
            }
            const std::size_t brace = find_body_brace(code, close);
            if (brace == string_view::npos) {
                return;  // declaration or call, not a definition
            }
            const std::size_t body_end = skip_balanced(code, brace);
            if (body_end == string_view::npos) {
                return;
            }
            if (body_has_contract_check(code.substr(brace, body_end - brace))) {
                return;
            }
            ctx.report("contract-require-numeric", ctx.file.line_of_offset(off),
                       "definition of '" + decl.name + "' (declared in " +
                           decl.header + ":" + std::to_string(decl.line) +
                           ") takes raw double/float parameters but performs no "
                           "SWARMAVAIL_REQUIRE/INVARIANT/ASSERT domain check");
        });
    }
}

// ---------------------------------------------------------------------------
// hygiene family
// ---------------------------------------------------------------------------

void check_hygiene_pragma_once(RuleContext& ctx) {
    if (!is_header(ctx.file.path()) || classify_path(ctx.file.path()) == Layer::kOther) {
        return;
    }
    for (int line = 1; line <= ctx.file.line_count(); ++line) {
        const string_view text = ctx.file.code_line(line);
        const std::size_t p = skip_space(text, 0);
        if (p < text.size() && text[p] == '#' &&
            text.find("pragma", p) != string_view::npos &&
            text.find("once", p) != string_view::npos) {
            return;
        }
    }
    ctx.report("hygiene-pragma-once", 1,
               "header lacks '#pragma once'; every public header must be "
               "include-guarded (double inclusion is also exercised by the "
               "header self-sufficiency ctest cases)");
}

void check_hygiene_check_include(RuleContext& ctx) {
    const string_view path = ctx.file.path();
    if (classify_path(path) == Layer::kOther || ends_with(path, "util/check.hpp") ||
        ends_with(path, "util/check.cpp") || ends_with(path, "util/error.hpp")) {
        return;
    }
    int first_use = 0;
    for_each_identifier(ctx.file.code(), [&](string_view name, std::size_t off) {
        if (first_use != 0) {
            return;
        }
        if (name == "SWARMAVAIL_REQUIRE" || name == "SWARMAVAIL_INVARIANT" ||
            name == "SWARMAVAIL_ASSERT") {
            const int line = ctx.file.line_of_offset(off);
            if (!ctx.file.is_directive_line(line)) {
                first_use = line;
            }
        }
    });
    if (first_use == 0) {
        return;
    }
    for (int line = 1; line <= ctx.file.line_count(); ++line) {
        const string_view target = quoted_include_target(ctx.file.raw_line(line));
        if (target == "util/check.hpp" || target == "util/error.hpp") {
            return;
        }
    }
    ctx.report("hygiene-check-include", first_use,
               "uses SWARMAVAIL_REQUIRE-family macros without directly including "
               "util/check.hpp (or util/error.hpp); relying on transitive "
               "includes makes contract checks fragile to refactors");
}

void check_hygiene_suppression(RuleContext&) {
    // Meta-rule: malformed / unknown-rule / stale suppressions are emitted by
    // the driver after suppression matching, so it can see which suppressions
    // were actually consumed. Registered here so the rule is listable,
    // documentable, and testable like any other.
}

}  // namespace

void RuleContext::report(std::string rule, int line, std::string message) {
    Finding f;
    f.rule = std::move(rule);
    f.path = file.path();
    f.line = line;
    f.message = std::move(message);
    out.push_back(std::move(f));
}

Layer classify_path(std::string_view path) {
    if (starts_with(path, "src/util/metrics.") || starts_with(path, "src/util/telemetry.") ||
        starts_with(path, "src/util/profile.") || starts_with(path, "src/sim/trace.") ||
        starts_with(path, "src/sim/fingerprint.") ||
        starts_with(path, "src/sim/flight_recorder.") ||
        starts_with(path, "src/serve/span.")) {
        return Layer::kObserver;
    }
    if (starts_with(path, "src/util/random.")) {
        return Layer::kRandom;
    }
    if (starts_with(path, "src/serve/")) {
        return Layer::kService;
    }
    for (string_view prefix : {string_view{"src/sim/"}, string_view{"src/swarm/"},
                               string_view{"src/catalog/"}, string_view{"src/model/"},
                               string_view{"src/queueing/"},
                               string_view{"src/measurement/"}}) {
        if (starts_with(path, prefix)) {
            return Layer::kEngine;
        }
    }
    if (starts_with(path, "src/util/")) {
        return Layer::kSupport;
    }
    return Layer::kOther;
}

bool is_wall_clock_whitelisted(std::string_view path) {
    return starts_with(path, "src/util/telemetry.") ||
           starts_with(path, "src/util/profile.") ||
           starts_with(path, "src/serve/span.");
}

const std::vector<Rule>& all_rules() {
    static const std::vector<Rule> kRules = {
        {"det-rand",
         "No C/std PRNG primitives (rand, srand, mt19937, ...) outside "
         "util/random; all randomness flows from the seeded Rng.",
         &check_det_rand},
        {"det-random-device",
         "No std::random_device anywhere in src/; hardware entropy breaks "
         "seed-reproducibility.",
         &check_det_random_device},
        {"det-wall-clock",
         "No wall-clock reads (system/steady/high_resolution_clock, time(), "
         "clock(), ...) in result-producing layers; util/telemetry, "
         "util/profile and serve/span are the whitelisted exceptions.",
         &check_det_wall_clock},
        {"det-unordered-iter",
         "No range-for or iterator traversal of std::unordered_{map,set} in "
         "result-producing layers, where hash order can leak into merged "
         "output; iterate sorted/indexed copies instead.",
         &check_det_unordered_iter},
        {"det-env",
         "No environment or thread-identity reads (getenv, "
         "hardware_concurrency, this_thread::get_id) in engine layers.",
         &check_det_env},
        {"det-static-state",
         "No mutable static/thread_local state in result-producing layers; "
         "hidden globals couple runs and threads.",
         &check_det_static_state},
        {"obs-no-engine-include",
         "Observer files (util/metrics, util/telemetry, util/profile, "
         "sim/trace) must not include engine headers; observation is one-way.",
         &check_obs_no_engine_include},
        {"obs-guarded-telemetry",
         "Every telemetry touch in an engine file must sit behind "
         "SWARMAVAIL_TELEMETRY_DISABLED guards or a compile-out-able macro, so "
         "the trace-off preset erases it.",
         &check_obs_guarded_telemetry},
        {"obs-guarded-fingerprint",
         "Every fingerprint touch in an engine file (Fingerprint type use or "
         "dereference of an attached fingerprint pointer) must sit behind "
         "SWARMAVAIL_FINGERPRINT_DISABLED guards or the SWARMAVAIL_FPRINT "
         "macro, so the trace-off preset erases it.",
         &check_obs_guarded_fingerprint},
        {"obs-macro-compile-out",
         "Observability macros used by engines must come from the "
         "compile-out-able set defined by the trace/telemetry/profile headers "
         "(the trace-off preset's macro set).",
         &check_obs_macro_compile_out},
        {"svc-guarded-span",
         "Every span touch in a service file (dereference of the RequestSpans "
         "scratch or the SpanHub) must sit behind SWARMAVAIL_SPANS_DISABLED "
         "guards or the SWARMAVAIL_SPAN macro, so the trace-off preset erases "
         "it.",
         &check_svc_guarded_span},
        {"contract-require-numeric",
         "Public functions declared in src/ headers that take raw "
         "double/float parameters must contain a SWARMAVAIL_REQUIRE-family "
         "domain check in their definition.",
         &check_contract_require_numeric},
        {"hygiene-pragma-once",
         "Every header carries '#pragma once'.",
         &check_hygiene_pragma_once},
        {"hygiene-check-include",
         "Files using SWARMAVAIL_REQUIRE-family macros include util/check.hpp "
         "(or util/error.hpp) directly.",
         &check_hygiene_check_include},
        {"hygiene-suppression",
         "swarmlint-allow comments must be well-formed, name a known rule, "
         "carry a written justification, and actually suppress something. "
         "This meta-rule is not itself suppressible.",
         &check_hygiene_suppression},
    };
    return kRules;
}

void collect_numeric_declarations(const SourceFile& header,
                                  std::vector<NumericDeclaration>& out) {
    if (!is_header(header.path()) || classify_path(header.path()) != Layer::kEngine) {
        return;
    }
    const string_view code = header.code();
    for_each_identifier(code, [&](string_view name, std::size_t off) {
        if (std::find(kNonFunctionNames.begin(), kNonFunctionNames.end(), name) !=
            kNonFunctionNames.end()) {
            return;
        }
        if (starts_with(name, "SWARMAVAIL_")) {
            return;
        }
        const std::size_t open = skip_space(code, off + name.size());
        if (open >= code.size() || code[open] != '(') {
            return;
        }
        const char prev = off > 0 ? prev_nonspace(code, off) : '\0';
        if (prev == '.' || prev == '(' || prev == ',' || prev == '=' || prev == '+' ||
            prev == '-' || prev == '!' || prev == '<' || prev == '?' || prev == '|') {
            return;
        }
        const std::size_t close = skip_balanced(code, open);
        if (close == string_view::npos) {
            return;
        }
        if (!has_raw_float_param(code.substr(open + 1, close - open - 2))) {
            return;
        }
        // Declaration (`;`), inline definition (`{`), or defaulted: all
        // declare the contract surface. Anything else is an expression.
        std::size_t p = close;
        const std::size_t brace = find_body_brace(code, p);
        bool declares = brace != string_view::npos;
        if (!declares) {
            p = skip_space(code, p);
            while (p < code.size() && is_ident_char(code[p])) {
                // const / noexcept / override before the ';'
                std::size_t end = p;
                while (end < code.size() && is_ident_char(code[end])) {
                    ++end;
                }
                p = skip_space(code, end);
                if (p < code.size() && code[p] == '(') {
                    p = skip_balanced(code, p);
                    if (p == string_view::npos) {
                        return;
                    }
                    p = skip_space(code, p);
                }
            }
            declares = p < code.size() && code[p] == ';';
        }
        if (!declares) {
            return;
        }
        NumericDeclaration decl;
        decl.name.assign(name);
        decl.header = header.path();
        decl.line = header.line_of_offset(off);
        out.push_back(std::move(decl));
    });
}

void collect_compile_out_macros(const SourceFile& header, std::set<std::string>& out) {
    for (int line = 1; line <= header.line_count(); ++line) {
        if (!header.is_directive_line(line)) {
            continue;
        }
        const string_view text = header.code_line(line);
        std::size_t p = skip_space(text, 0);
        if (p >= text.size() || text[p] != '#') {
            continue;
        }
        p = skip_space(text, p + 1);
        if (!starts_with(text.substr(p), "define")) {
            continue;
        }
        p = skip_space(text, p + 6);
        std::size_t end = p;
        while (end < text.size() && is_ident_char(text[end])) {
            ++end;
        }
        const string_view name = text.substr(p, end - p);
        if (!starts_with(name, "SWARMAVAIL_") || ends_with(name, "_DISABLED")) {
            continue;
        }
        // Compile-out-able := defined inside a region whose guard condition
        // names the corresponding *_DISABLED toggle (both branches of such a
        // region define the macro; one of them as a no-op).
        if (header.guard_mentions(line, "_DISABLED")) {
            out.insert(std::string(name));
        }
    }
}

}  // namespace swarmlint
