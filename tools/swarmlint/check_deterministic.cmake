# ctest helper: run swarmlint twice over src/ and require byte-identical
# JSON reports. Exercised as `swarmlint.deterministic_report` (label: lint).
foreach(run a b)
    execute_process(
        COMMAND ${SWARMLINT} --root ${ROOT} --quiet
                --json ${WORK}/determinism-${run}.json src
        RESULT_VARIABLE code)
    if(code GREATER 1)
        message(FATAL_ERROR "swarmlint run '${run}' failed with exit code ${code}")
    endif()
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK}/determinism-a.json ${WORK}/determinism-b.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "swarmlint reports differ between two identical runs")
endif()
