#!/usr/bin/env bash
# Perf baseline runner: builds the bench suite, runs the perf harnesses
# (bench_perf_micro + bench_replication_scaling), and writes BENCH_perf.json
# -- the perf trajectory every PR compares against.
#
# Usage:
#   scripts/bench.sh                 # full run, writes ./BENCH_perf.json
#   BENCH_MIN_TIME=0.05 scripts/bench.sh   # CI perf-smoke (short measurements)
#   BUILD_DIR=build-foo OUT=perf.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_perf.json}"
BENCH_MIN_TIME="${BENCH_MIN_TIME:-}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
    cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" --target swarmavail_benches -j "${JOBS}"

extra_args=()
if [[ -n "${BENCH_MIN_TIME}" ]]; then
    extra_args+=("--benchmark_min_time=${BENCH_MIN_TIME}s")
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

run_bench() {
    local name="$1"
    echo "== ${name} ==" >&2
    "${BUILD_DIR}/bench/${name}" \
        --benchmark_format=json \
        --benchmark_out="${tmpdir}/${name}.json" \
        --benchmark_out_format=json \
        "${extra_args[@]:+${extra_args[@]}}" >&2
}

run_bench bench_perf_micro
run_bench bench_replication_scaling

python3 scripts/merge_bench_json.py \
    "${tmpdir}/bench_perf_micro.json" \
    "${tmpdir}/bench_replication_scaling.json" \
    > "${OUT}"

echo "wrote ${OUT}" >&2
