#!/usr/bin/env bash
# Perf baseline runner: builds the bench suite, runs the perf harnesses
# (bench_perf_micro + bench_replication_scaling + bench_catalog_scaling),
# and writes BENCH_perf.json
# -- the perf trajectory every PR compares against.
#
# Usage:
#   scripts/bench.sh                 # full run, writes ./BENCH_perf.json
#   BENCH_MIN_TIME=0.05 scripts/bench.sh   # CI perf-smoke (short measurements)
#   BENCH_REPEAT=5 scripts/bench.sh  # noisy host: keep best-of-5 per row
#   BUILD_DIR=build-foo OUT=perf.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_perf.json}"
# Baseline the merge computes delta_vs_prior_pct against. Defaults to the
# output file (self-trajectory); CI's perf smoke points it at the
# checked-in BENCH_perf.json so perf_gate.py has deltas on a fresh clone.
PRIOR="${PRIOR:-${OUT}}"
BENCH_MIN_TIME="${BENCH_MIN_TIME:-}"
BENCH_REPEAT="${BENCH_REPEAT:-1}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
    cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "${BUILD_DIR}" --target swarmavail_benches -j "${JOBS}"

extra_args=()
if [[ -n "${BENCH_MIN_TIME}" ]]; then
    # Seconds, as a plain number: the pinned google-benchmark parses the
    # flag as a bare double and rejects a "s" suffix (newer releases require
    # it — normalize here so callers never have to care which one is baked
    # into the image).
    extra_args+=("--benchmark_min_time=${BENCH_MIN_TIME%s}")
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

run_bench() {
    local name="$1" rep="$2"
    echo "== ${name} (run ${rep}/${BENCH_REPEAT}) ==" >&2
    "${BUILD_DIR}/bench/${name}" \
        --benchmark_format=json \
        --benchmark_out="${tmpdir}/${name}.${rep}.json" \
        --benchmark_out_format=json \
        "${extra_args[@]:+${extra_args[@]}}" >&2
}

# Interleave the repeats (micro, scaling, micro, ...) so slow phases of a
# shared host spread across both suites; the merge keeps per-row minima.
inputs=()
for rep in $(seq 1 "${BENCH_REPEAT}"); do
    run_bench bench_perf_micro "${rep}"
    run_bench bench_event_queue "${rep}"
    run_bench bench_replication_scaling "${rep}"
    run_bench bench_catalog_scaling "${rep}"
    run_bench bench_planning_qps "${rep}"
    inputs+=("${tmpdir}/bench_perf_micro.${rep}.json"
             "${tmpdir}/bench_event_queue.${rep}.json"
             "${tmpdir}/bench_replication_scaling.${rep}.json"
             "${tmpdir}/bench_catalog_scaling.${rep}.json"
             "${tmpdir}/bench_planning_qps.${rep}.json")
done

echo "== bench_phase_profile ==" >&2
"${BUILD_DIR}/bench/bench_phase_profile" > "${tmpdir}/phase_profile.json"

# Merge into a temp file first: `> ${OUT}` would truncate the prior
# baseline before python gets to read it for the delta_vs_prior_pct rows.
python3 scripts/merge_bench_json.py \
    "${inputs[@]}" \
    --prior "${PRIOR}" \
    --profile "${tmpdir}/phase_profile.json" \
    > "${tmpdir}/merged.json"
mv "${tmpdir}/merged.json" "${OUT}"

echo "wrote ${OUT}" >&2
