#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs into the BENCH_perf.json baseline.

Output schema:

{
  "schema_version": 2,
  "generated_at": "2026-01-01T00:00:00Z",
  "host": {"hardware_threads": 8},
  "benchmarks": [
    {"name": "...", "ns_per_op": 1.0, "items_per_s": 2.0,
     "threads": 4, "speedup_vs_serial": 3.5,
     "delta_vs_prior_pct": -1.2, "tracing_overhead_pct": 4.7}
  ],
  "phase_profile": {"phases": [{"name": "...", "calls": 1, "seconds": 0.5}]}
}

`threads` is parsed from the `/threads:N` argument in the benchmark name
(the replication-scaling benches name their argument that way); plain
single-threaded benches report 1. `speedup_vs_serial` is emitted for
multi-threaded entries whose family (name minus the /threads:N component)
also has a threads:1 row.

`delta_vs_prior_pct` compares each row against the same-named row of the
prior baseline (--prior, usually the checked-in BENCH_perf.json). A
missing, empty, or corrupt prior file is tolerated: the field is simply
omitted, so the first run on a fresh checkout still succeeds.

`tracing_overhead_pct` is emitted on observability rows (name containing
"TraceOn") and measures them against their plain counterpart (the name
with the first "TraceOn" removed) from the same run.
`telemetry_overhead_pct` works the same way for "TelemetryOn" rows (a run
with a live TelemetrySession attached vs. the detached counterpart).
`fingerprint_overhead_pct` is the inverse pairing: determinism
fingerprints are ON by default, so the "FingerprintOff" row is the
baseline and the field (attached to the FingerprintOff row alongside the
measurement it anchors) reports what the plain row pays for them.
`srv_span_overhead_pct` ("SpanOn" rows) measures the planning router's
warm path with a RequestSpans scratch attached against the plain warm
row; `srv_span_idle_overhead_pct` ("SpanIdle" rows) measures the same
path through the spans-capable route() overload with a null scratch —
the runtime-disabled cost that the serve CI leg gates at <= 1%.

`phase_profile` embeds the per-phase wall-time breakdown printed by
bench_phase_profile (--profile), again tolerating a missing file.

When the same benchmark name appears in several input files (bench.sh's
BENCH_REPEAT mode feeds each run as a separate file), the row with the
minimum ns_per_op wins: on hosts with background load the minimum is the
least-contaminated estimate, and derived fields (speedups, overheads,
deltas) are computed from the kept rows only.

Noise handling: an overhead pair is two independent minima, so sampling
noise can make the instrumented row come out *faster* than its plain
counterpart — a physically impossible negative overhead. Negative
overheads within NOISE_FLOOR_PCT are clamped to 0.0; ones beyond the
floor are kept as measured but the row gains `noise_suspect: true`.
The same flag is set when the interleaved repeats of a row disagree by
more than SPREAD_SUSPECT_PCT (max/min - 1): a spread that wide means
even the minimum is probably contaminated, so treat the row's derived
fields as indicative rather than gating-quality.
"""
import argparse
import datetime
import json
import os
import re
import sys

_THREADS_ARG = re.compile(r"/threads:(\d+)")

# A negative overhead no larger than this is ordinary minimum-of-minima
# jitter: clamp it to zero. Anything more negative is left visible (and
# flagged) so a genuinely broken measurement cannot hide inside the clamp.
NOISE_FLOOR_PCT = 2.0

# Repeat spread (max/min - 1, in percent) beyond which a row's minimum is
# assumed contaminated by host load and the row is flagged noise_suspect.
SPREAD_SUSPECT_PCT = 10.0


def _to_ns(value, unit):
    return value * {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]


def _load_json_or_none(path):
    """Read a JSON document, returning None for a missing/empty/corrupt file."""
    if not path:
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return None
    if not text.strip():
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


def merge(input_paths, prior_path=None, profile_path=None):
    entries = []
    hardware_threads = os.cpu_count() or 1
    for path in input_paths:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        hardware_threads = doc.get("context", {}).get("num_cpus", hardware_threads)
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            match = _THREADS_ARG.search(bench["name"])
            row = {
                "name": bench["name"],
                "ns_per_op": _to_ns(bench["real_time"], bench.get("time_unit", "ns")),
                "items_per_s": bench.get("items_per_second"),
                "threads": int(match.group(1)) if match else 1,
            }
            # Calendar-regime counters (bench_event_queue publishes its
            # CalendarDebugStats as cal_* user counters): carried verbatim
            # so BENCH_perf.json records *which* queue regime a row
            # exercised — a perf delta can then be read against a regime
            # shift (rewindow storm, ladder spill change) instead of guessed.
            # srv_* counters are the planning-service rows (queries/s
            # through the router and the loopback server).
            for key, value in bench.items():
                if key.startswith(("cal_", "srv_")):
                    row[key] = value
            entries.append(row)

    # Repeated runs: keep the fastest observation per name, preserving
    # first-appearance order. Track the slowest too: the repeat spread is
    # the noise estimate behind the noise_suspect flag.
    best = {}
    worst_ns = {}
    order = []
    for entry in entries:
        kept = best.get(entry["name"])
        if kept is None:
            order.append(entry["name"])
            best[entry["name"]] = entry
            worst_ns[entry["name"]] = entry["ns_per_op"]
        else:
            worst_ns[entry["name"]] = max(worst_ns[entry["name"]], entry["ns_per_op"])
            if entry["ns_per_op"] < kept["ns_per_op"]:
                best[entry["name"]] = entry
    entries = [best[name] for name in order]
    for entry in entries:
        low = entry["ns_per_op"]
        high = worst_ns[entry["name"]]
        if low > 0 and high > low:
            spread_pct = (high / low - 1.0) * 100.0
            entry["repeat_spread_pct"] = round(spread_pct, 2)
            if spread_pct > SPREAD_SUSPECT_PCT:
                entry["noise_suspect"] = True

    serial_ns = {}
    for entry in entries:
        if entry["threads"] == 1:
            serial_ns[_THREADS_ARG.sub("", entry["name"])] = entry["ns_per_op"]
    for entry in entries:
        family = _THREADS_ARG.sub("", entry["name"])
        if entry["threads"] > 1 and serial_ns.get(family) and entry["ns_per_op"] > 0:
            entry["speedup_vs_serial"] = round(serial_ns[family] / entry["ns_per_op"], 4)

    by_name = {entry["name"]: entry for entry in entries}
    # (marker, field, inverted): non-inverted pairs measure the suffixed row
    # against its plain counterpart (TraceOn is the instrumented run).
    # Inverted pairs flip the ratio: the plain BM_SwarmSim rows run with
    # fingerprints ON (the config default), so the FingerprintOff row is
    # the baseline and the overhead lives in the plain row's cost.
    overhead_pairs = (
        ("TraceOn", "tracing_overhead_pct", False),
        ("TelemetryOn", "telemetry_overhead_pct", False),
        ("FingerprintOff", "fingerprint_overhead_pct", True),
        ("SpanOn", "srv_span_overhead_pct", False),
        ("SpanIdle", "srv_span_idle_overhead_pct", False),
    )
    for entry in entries:
        for marker, field, inverted in overhead_pairs:
            if marker not in entry["name"]:
                continue
            plain = by_name.get(entry["name"].replace(marker, "", 1))
            if plain and plain["ns_per_op"] > 0 and entry["ns_per_op"] > 0:
                if inverted:
                    overhead = (plain["ns_per_op"] / entry["ns_per_op"] - 1.0) * 100.0
                else:
                    overhead = (entry["ns_per_op"] / plain["ns_per_op"] - 1.0) * 100.0
                if -NOISE_FLOOR_PCT <= overhead < 0.0:
                    overhead = 0.0
                elif overhead < -NOISE_FLOOR_PCT:
                    entry["noise_suspect"] = True
                entry[field] = round(overhead, 2)

    prior = _load_json_or_none(prior_path)
    if isinstance(prior, dict):
        prior_ns = {
            row.get("name"): row.get("ns_per_op")
            for row in prior.get("benchmarks", [])
            if isinstance(row, dict)
        }
        for entry in entries:
            base = prior_ns.get(entry["name"])
            if base and base > 0:
                entry["delta_vs_prior_pct"] = round(
                    (entry["ns_per_op"] / base - 1.0) * 100.0, 2)

    doc = {
        "schema_version": 2,
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": {"hardware_threads": hardware_threads},
        "benchmarks": entries,
    }
    profile = _load_json_or_none(profile_path)
    if isinstance(profile, dict) and "phases" in profile:
        doc["phase_profile"] = profile
    return doc


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="google-benchmark JSON output files to merge")
    parser.add_argument("--prior", default=None,
                        help="prior BENCH_perf.json baseline for delta_vs_prior_pct "
                             "(missing/empty/corrupt files are tolerated)")
    parser.add_argument("--profile", default=None,
                        help="bench_phase_profile JSON to embed as phase_profile")
    args = parser.parse_args(argv)
    json.dump(merge(args.inputs, args.prior, args.profile), sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main(sys.argv[1:])
