#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs into the BENCH_perf.json baseline.

Output schema:

{
  "schema_version": 1,
  "generated_at": "2026-01-01T00:00:00Z",
  "host": {"hardware_threads": 8},
  "benchmarks": [
    {"name": "...", "ns_per_op": 1.0, "items_per_s": 2.0,
     "threads": 4, "speedup_vs_serial": 3.5}
  ]
}

`threads` is parsed from the `/threads:N` argument in the benchmark name
(the replication-scaling benches name their argument that way); plain
single-threaded benches report 1. `speedup_vs_serial` is emitted for
multi-threaded entries whose family (name minus the /threads:N component)
also has a threads:1 row.
"""
import datetime
import json
import os
import re
import sys

_THREADS_ARG = re.compile(r"/threads:(\d+)")


def _to_ns(value, unit):
    return value * {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]


def main(paths):
    entries = []
    hardware_threads = os.cpu_count() or 1
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        hardware_threads = doc.get("context", {}).get("num_cpus", hardware_threads)
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            match = _THREADS_ARG.search(bench["name"])
            entries.append({
                "name": bench["name"],
                "ns_per_op": _to_ns(bench["real_time"], bench.get("time_unit", "ns")),
                "items_per_s": bench.get("items_per_second"),
                "threads": int(match.group(1)) if match else 1,
            })

    serial_ns = {}
    for entry in entries:
        if entry["threads"] == 1:
            serial_ns[_THREADS_ARG.sub("", entry["name"])] = entry["ns_per_op"]
    for entry in entries:
        family = _THREADS_ARG.sub("", entry["name"])
        if entry["threads"] > 1 and serial_ns.get(family) and entry["ns_per_op"] > 0:
            entry["speedup_vs_serial"] = round(serial_ns[family] / entry["ns_per_op"], 4)

    json.dump(
        {
            "schema_version": 1,
            "generated_at": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
            "host": {"hardware_threads": hardware_threads},
            "benchmarks": entries,
        },
        sys.stdout,
        indent=2,
    )
    sys.stdout.write("\n")


if __name__ == "__main__":
    main(sys.argv[1:])
