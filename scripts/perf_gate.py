#!/usr/bin/env python3
"""Perf regression gate over a merged BENCH_perf.json.

Reads the merged baseline produced by scripts/bench.sh (see
merge_bench_json.py for the schema) and fails when any benchmark row
regressed against the prior baseline by more than the allowed budget:

    scripts/perf_gate.py BENCH_perf.json --max-regression-pct 10

The gate consumes the `delta_vs_prior_pct` field (current ns_per_op vs the
same-named row of the previous baseline, positive = slower). Rows without
the field (first recording, renamed rows) pass trivially.

Noise discipline: rows carrying `noise_suspect: true` — interleaved-repeat
spread beyond merge_bench_json.SPREAD_SUSPECT_PCT, or a physically
impossible negative overhead — are reported but never fail the gate, and
any other row only fails when its regression also exceeds its own measured
`repeat_spread_pct`. A regression smaller than the run's own jitter is not
evidence. CI runs this as an advisory step (shared runners are too noisy
to block on); the tracked baseline on a quiet host is where the exit code
matters.

Exit codes: 0 clean (or advisory-only findings), 1 hard regression,
2 usage/input error.
"""
import argparse
import json
import re
import sys


def evaluate(doc, max_regression_pct, name_filter=None):
    """Returns (hard, soft): rows failing the gate, rows only worth noting."""
    hard = []
    soft = []
    pattern = re.compile(name_filter) if name_filter else None
    for row in doc.get("benchmarks", []):
        if not isinstance(row, dict):
            continue
        name = row.get("name", "")
        if pattern and not pattern.search(name):
            continue
        delta = row.get("delta_vs_prior_pct")
        if delta is None or delta <= max_regression_pct:
            continue
        spread = row.get("repeat_spread_pct", 0.0) or 0.0
        if row.get("noise_suspect") or delta <= spread:
            soft.append((name, delta, spread))
        else:
            hard.append((name, delta, spread))
    return hard, soft


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="merged BENCH_perf.json to check")
    parser.add_argument("--max-regression-pct", type=float, default=10.0,
                        help="allowed slowdown vs the prior baseline "
                             "(default: %(default)s%%)")
    parser.add_argument("--filter", default=None,
                        help="only gate rows whose name matches this regex")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"perf_gate: cannot read {args.baseline}: {error}", file=sys.stderr)
        return 2

    hard, soft = evaluate(doc, args.max_regression_pct, args.filter)
    for name, delta, spread in soft:
        print(f"NOISY  {name}: +{delta:.2f}% vs prior "
              f"(repeat spread {spread:.2f}%, not gating)")
    for name, delta, spread in hard:
        print(f"REGRESSION  {name}: +{delta:.2f}% vs prior "
              f"(budget {args.max_regression_pct}%, repeat spread {spread:.2f}%)")
    if hard:
        return 1
    if not hard and not soft:
        print(f"perf_gate: all rows within {args.max_regression_pct}% of prior")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
