#!/usr/bin/env bash
# Reproduces the CI lint jobs locally: clang-format (dry run) over the whole
# tree, clang-tidy over src/, and swarmlint — the project's own invariant
# checker (determinism, observer neutrality, contract hygiene). clang tools
# that are not installed are skipped with a notice; swarmlint builds from
# source on demand, so it always runs.
#
# Usage:
#   scripts/lint.sh                 # format check + clang-tidy + swarmlint
#   scripts/lint.sh --format-only   # just clang-format --dry-run
#   scripts/lint.sh --tidy-only     # just clang-tidy
#   scripts/lint.sh --swarmlint     # just swarmlint (writes swarmlint-report.json)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

run_format=1
run_tidy=1
run_swarmlint=1
case "${1:-}" in
    --format-only) run_tidy=0; run_swarmlint=0 ;;
    --tidy-only) run_format=0; run_swarmlint=0 ;;
    --swarmlint) run_format=0; run_tidy=0 ;;
    "") ;;
    *)
        echo "usage: scripts/lint.sh [--format-only|--tidy-only|--swarmlint]" >&2
        exit 2
        ;;
esac

# Formatting covers every C++ file we maintain. swarmlint's rule fixtures
# are excluded: they are test data with deliberately unidiomatic content.
mapfile -t format_sources < <(find src tests examples bench tools \
    -path tests/tools/swarmlint/fixtures -prune -o \
    \( -name '*.cpp' -o -name '*.hpp' \) -print | sort)
mapfile -t src_sources < <(find src -name '*.cpp' -o -name '*.hpp' | sort)
if [[ ${#src_sources[@]} -eq 0 ]]; then
    echo "lint.sh: no sources found under src/" >&2
    exit 1
fi

status=0

if [[ $run_format -eq 1 ]]; then
    if command -v clang-format >/dev/null 2>&1; then
        echo "== clang-format --dry-run over ${#format_sources[@]} files"
        if ! clang-format --dry-run --Werror "${format_sources[@]}"; then
            status=1
        fi
    else
        echo "== clang-format not installed; skipping format check"
    fi
fi

if [[ $run_tidy -eq 1 ]]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        build_dir="build-tidy"
        if [[ ! -f "$build_dir/compile_commands.json" ]]; then
            echo "== configuring $build_dir for compile_commands.json"
            cmake --preset tidy >/dev/null
        fi
        cpp_sources=()
        for f in "${src_sources[@]}"; do
            [[ $f == *.cpp ]] && cpp_sources+=("$f")
        done
        echo "== clang-tidy over ${#cpp_sources[@]} translation units"
        if ! clang-tidy -p "$build_dir" --quiet "${cpp_sources[@]}"; then
            status=1
        fi
    else
        echo "== clang-tidy not installed; skipping static analysis"
    fi
fi

if [[ $run_swarmlint -eq 1 ]]; then
    swarmlint_bin="build/tools/swarmlint/swarmlint"
    if [[ ! -x "$swarmlint_bin" ]]; then
        echo "== building swarmlint"
        cmake --preset default >/dev/null
        cmake --build build --target swarmlint >/dev/null
    fi
    echo "== swarmlint over src/ (report: swarmlint-report.json)"
    if ! "$swarmlint_bin" --root . --json swarmlint-report.json src; then
        status=1
    fi
fi

exit $status
