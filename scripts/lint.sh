#!/usr/bin/env bash
# Reproduces the CI lint jobs locally: clang-format (dry run) and clang-tidy
# over src/. Tools that are not installed are skipped with a notice so the
# script is useful on minimal containers too.
#
# Usage:
#   scripts/lint.sh                 # format check + clang-tidy
#   scripts/lint.sh --format-only   # just clang-format --dry-run
#   scripts/lint.sh --tidy-only     # just clang-tidy
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

run_format=1
run_tidy=1
case "${1:-}" in
    --format-only) run_tidy=0 ;;
    --tidy-only) run_format=0 ;;
    "") ;;
    *)
        echo "usage: scripts/lint.sh [--format-only|--tidy-only]" >&2
        exit 2
        ;;
esac

mapfile -t sources < <(find src -name '*.cpp' -o -name '*.hpp' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
    echo "lint.sh: no sources found under src/" >&2
    exit 1
fi

status=0

if [[ $run_format -eq 1 ]]; then
    if command -v clang-format >/dev/null 2>&1; then
        echo "== clang-format --dry-run over ${#sources[@]} files"
        if ! clang-format --dry-run --Werror "${sources[@]}"; then
            status=1
        fi
    else
        echo "== clang-format not installed; skipping format check"
    fi
fi

if [[ $run_tidy -eq 1 ]]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        build_dir="build-tidy"
        if [[ ! -f "$build_dir/compile_commands.json" ]]; then
            echo "== configuring $build_dir for compile_commands.json"
            cmake --preset tidy >/dev/null
        fi
        cpp_sources=()
        for f in "${sources[@]}"; do
            [[ $f == *.cpp ]] && cpp_sources+=("$f")
        done
        echo "== clang-tidy over ${#cpp_sources[@]} translation units"
        if ! clang-tidy -p "$build_dir" --quiet "${cpp_sources[@]}"; then
            status=1
        fi
    else
        echo "== clang-tidy not installed; skipping static analysis"
    fi
fi

exit $status
