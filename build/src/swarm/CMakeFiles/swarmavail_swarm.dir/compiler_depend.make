# Empty compiler generated dependencies file for swarmavail_swarm.
# This may be replaced when dependencies are built.
