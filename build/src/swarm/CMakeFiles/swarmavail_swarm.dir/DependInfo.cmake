
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swarm/capacity.cpp" "src/swarm/CMakeFiles/swarmavail_swarm.dir/capacity.cpp.o" "gcc" "src/swarm/CMakeFiles/swarmavail_swarm.dir/capacity.cpp.o.d"
  "/root/repo/src/swarm/observables.cpp" "src/swarm/CMakeFiles/swarmavail_swarm.dir/observables.cpp.o" "gcc" "src/swarm/CMakeFiles/swarmavail_swarm.dir/observables.cpp.o.d"
  "/root/repo/src/swarm/piece_set.cpp" "src/swarm/CMakeFiles/swarmavail_swarm.dir/piece_set.cpp.o" "gcc" "src/swarm/CMakeFiles/swarmavail_swarm.dir/piece_set.cpp.o.d"
  "/root/repo/src/swarm/swarm_sim.cpp" "src/swarm/CMakeFiles/swarmavail_swarm.dir/swarm_sim.cpp.o" "gcc" "src/swarm/CMakeFiles/swarmavail_swarm.dir/swarm_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/swarmavail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/swarmavail_model.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/swarmavail_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
