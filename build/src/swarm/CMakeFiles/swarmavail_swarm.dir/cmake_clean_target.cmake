file(REMOVE_RECURSE
  "libswarmavail_swarm.a"
)
