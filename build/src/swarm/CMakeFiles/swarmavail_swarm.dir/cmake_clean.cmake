file(REMOVE_RECURSE
  "CMakeFiles/swarmavail_swarm.dir/capacity.cpp.o"
  "CMakeFiles/swarmavail_swarm.dir/capacity.cpp.o.d"
  "CMakeFiles/swarmavail_swarm.dir/observables.cpp.o"
  "CMakeFiles/swarmavail_swarm.dir/observables.cpp.o.d"
  "CMakeFiles/swarmavail_swarm.dir/piece_set.cpp.o"
  "CMakeFiles/swarmavail_swarm.dir/piece_set.cpp.o.d"
  "CMakeFiles/swarmavail_swarm.dir/swarm_sim.cpp.o"
  "CMakeFiles/swarmavail_swarm.dir/swarm_sim.cpp.o.d"
  "libswarmavail_swarm.a"
  "libswarmavail_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmavail_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
