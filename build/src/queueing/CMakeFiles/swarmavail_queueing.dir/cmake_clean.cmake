file(REMOVE_RECURSE
  "CMakeFiles/swarmavail_queueing.dir/busy_period.cpp.o"
  "CMakeFiles/swarmavail_queueing.dir/busy_period.cpp.o.d"
  "CMakeFiles/swarmavail_queueing.dir/general_busy_period.cpp.o"
  "CMakeFiles/swarmavail_queueing.dir/general_busy_period.cpp.o.d"
  "CMakeFiles/swarmavail_queueing.dir/hypoexponential.cpp.o"
  "CMakeFiles/swarmavail_queueing.dir/hypoexponential.cpp.o.d"
  "libswarmavail_queueing.a"
  "libswarmavail_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmavail_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
