# Empty compiler generated dependencies file for swarmavail_queueing.
# This may be replaced when dependencies are built.
