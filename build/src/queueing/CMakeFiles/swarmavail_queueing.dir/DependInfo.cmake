
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/busy_period.cpp" "src/queueing/CMakeFiles/swarmavail_queueing.dir/busy_period.cpp.o" "gcc" "src/queueing/CMakeFiles/swarmavail_queueing.dir/busy_period.cpp.o.d"
  "/root/repo/src/queueing/general_busy_period.cpp" "src/queueing/CMakeFiles/swarmavail_queueing.dir/general_busy_period.cpp.o" "gcc" "src/queueing/CMakeFiles/swarmavail_queueing.dir/general_busy_period.cpp.o.d"
  "/root/repo/src/queueing/hypoexponential.cpp" "src/queueing/CMakeFiles/swarmavail_queueing.dir/hypoexponential.cpp.o" "gcc" "src/queueing/CMakeFiles/swarmavail_queueing.dir/hypoexponential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
