file(REMOVE_RECURSE
  "libswarmavail_queueing.a"
)
