file(REMOVE_RECURSE
  "libswarmavail_measurement.a"
)
