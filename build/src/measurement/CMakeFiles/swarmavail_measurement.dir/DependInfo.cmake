
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measurement/analysis.cpp" "src/measurement/CMakeFiles/swarmavail_measurement.dir/analysis.cpp.o" "gcc" "src/measurement/CMakeFiles/swarmavail_measurement.dir/analysis.cpp.o.d"
  "/root/repo/src/measurement/arrival_patterns.cpp" "src/measurement/CMakeFiles/swarmavail_measurement.dir/arrival_patterns.cpp.o" "gcc" "src/measurement/CMakeFiles/swarmavail_measurement.dir/arrival_patterns.cpp.o.d"
  "/root/repo/src/measurement/catalog.cpp" "src/measurement/CMakeFiles/swarmavail_measurement.dir/catalog.cpp.o" "gcc" "src/measurement/CMakeFiles/swarmavail_measurement.dir/catalog.cpp.o.d"
  "/root/repo/src/measurement/monitor.cpp" "src/measurement/CMakeFiles/swarmavail_measurement.dir/monitor.cpp.o" "gcc" "src/measurement/CMakeFiles/swarmavail_measurement.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/swarmavail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/swarmavail_model.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/swarmavail_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
