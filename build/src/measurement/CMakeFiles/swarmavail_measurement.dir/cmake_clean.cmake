file(REMOVE_RECURSE
  "CMakeFiles/swarmavail_measurement.dir/analysis.cpp.o"
  "CMakeFiles/swarmavail_measurement.dir/analysis.cpp.o.d"
  "CMakeFiles/swarmavail_measurement.dir/arrival_patterns.cpp.o"
  "CMakeFiles/swarmavail_measurement.dir/arrival_patterns.cpp.o.d"
  "CMakeFiles/swarmavail_measurement.dir/catalog.cpp.o"
  "CMakeFiles/swarmavail_measurement.dir/catalog.cpp.o.d"
  "CMakeFiles/swarmavail_measurement.dir/monitor.cpp.o"
  "CMakeFiles/swarmavail_measurement.dir/monitor.cpp.o.d"
  "libswarmavail_measurement.a"
  "libswarmavail_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmavail_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
