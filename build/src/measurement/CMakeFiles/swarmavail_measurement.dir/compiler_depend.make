# Empty compiler generated dependencies file for swarmavail_measurement.
# This may be replaced when dependencies are built.
