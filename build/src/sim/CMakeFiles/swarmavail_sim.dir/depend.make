# Empty dependencies file for swarmavail_sim.
# This may be replaced when dependencies are built.
