file(REMOVE_RECURSE
  "libswarmavail_sim.a"
)
