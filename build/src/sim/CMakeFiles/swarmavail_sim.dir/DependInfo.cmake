
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/availability_sim.cpp" "src/sim/CMakeFiles/swarmavail_sim.dir/availability_sim.cpp.o" "gcc" "src/sim/CMakeFiles/swarmavail_sim.dir/availability_sim.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/swarmavail_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/swarmavail_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/swarmavail_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/swarmavail_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/sim/CMakeFiles/swarmavail_sim.dir/monte_carlo.cpp.o" "gcc" "src/sim/CMakeFiles/swarmavail_sim.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/sim/processes.cpp" "src/sim/CMakeFiles/swarmavail_sim.dir/processes.cpp.o" "gcc" "src/sim/CMakeFiles/swarmavail_sim.dir/processes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/swarmavail_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/swarmavail_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
