file(REMOVE_RECURSE
  "CMakeFiles/swarmavail_sim.dir/availability_sim.cpp.o"
  "CMakeFiles/swarmavail_sim.dir/availability_sim.cpp.o.d"
  "CMakeFiles/swarmavail_sim.dir/event_queue.cpp.o"
  "CMakeFiles/swarmavail_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/swarmavail_sim.dir/experiment.cpp.o"
  "CMakeFiles/swarmavail_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/swarmavail_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/swarmavail_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/swarmavail_sim.dir/processes.cpp.o"
  "CMakeFiles/swarmavail_sim.dir/processes.cpp.o.d"
  "libswarmavail_sim.a"
  "libswarmavail_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmavail_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
