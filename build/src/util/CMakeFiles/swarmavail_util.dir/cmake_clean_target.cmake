file(REMOVE_RECURSE
  "libswarmavail_util.a"
)
