# Empty compiler generated dependencies file for swarmavail_util.
# This may be replaced when dependencies are built.
