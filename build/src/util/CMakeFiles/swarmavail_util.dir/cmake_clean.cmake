file(REMOVE_RECURSE
  "CMakeFiles/swarmavail_util.dir/random.cpp.o"
  "CMakeFiles/swarmavail_util.dir/random.cpp.o.d"
  "CMakeFiles/swarmavail_util.dir/series.cpp.o"
  "CMakeFiles/swarmavail_util.dir/series.cpp.o.d"
  "CMakeFiles/swarmavail_util.dir/stats.cpp.o"
  "CMakeFiles/swarmavail_util.dir/stats.cpp.o.d"
  "CMakeFiles/swarmavail_util.dir/table.cpp.o"
  "CMakeFiles/swarmavail_util.dir/table.cpp.o.d"
  "libswarmavail_util.a"
  "libswarmavail_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmavail_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
