
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/asymptotics.cpp" "src/model/CMakeFiles/swarmavail_model.dir/asymptotics.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/asymptotics.cpp.o.d"
  "/root/repo/src/model/availability.cpp" "src/model/CMakeFiles/swarmavail_model.dir/availability.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/availability.cpp.o.d"
  "/root/repo/src/model/bundling.cpp" "src/model/CMakeFiles/swarmavail_model.dir/bundling.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/bundling.cpp.o.d"
  "/root/repo/src/model/download_time.cpp" "src/model/CMakeFiles/swarmavail_model.dir/download_time.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/download_time.cpp.o.d"
  "/root/repo/src/model/fluid_baseline.cpp" "src/model/CMakeFiles/swarmavail_model.dir/fluid_baseline.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/fluid_baseline.cpp.o.d"
  "/root/repo/src/model/lingering.cpp" "src/model/CMakeFiles/swarmavail_model.dir/lingering.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/lingering.cpp.o.d"
  "/root/repo/src/model/mixed_bundling.cpp" "src/model/CMakeFiles/swarmavail_model.dir/mixed_bundling.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/mixed_bundling.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/swarmavail_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/params.cpp.o.d"
  "/root/repo/src/model/partitioning.cpp" "src/model/CMakeFiles/swarmavail_model.dir/partitioning.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/partitioning.cpp.o.d"
  "/root/repo/src/model/zipf_demand.cpp" "src/model/CMakeFiles/swarmavail_model.dir/zipf_demand.cpp.o" "gcc" "src/model/CMakeFiles/swarmavail_model.dir/zipf_demand.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queueing/CMakeFiles/swarmavail_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
