file(REMOVE_RECURSE
  "libswarmavail_model.a"
)
