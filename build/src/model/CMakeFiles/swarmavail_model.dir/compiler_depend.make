# Empty compiler generated dependencies file for swarmavail_model.
# This may be replaced when dependencies are built.
