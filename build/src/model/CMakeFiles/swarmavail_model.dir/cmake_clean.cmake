file(REMOVE_RECURSE
  "CMakeFiles/swarmavail_model.dir/asymptotics.cpp.o"
  "CMakeFiles/swarmavail_model.dir/asymptotics.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/availability.cpp.o"
  "CMakeFiles/swarmavail_model.dir/availability.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/bundling.cpp.o"
  "CMakeFiles/swarmavail_model.dir/bundling.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/download_time.cpp.o"
  "CMakeFiles/swarmavail_model.dir/download_time.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/fluid_baseline.cpp.o"
  "CMakeFiles/swarmavail_model.dir/fluid_baseline.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/lingering.cpp.o"
  "CMakeFiles/swarmavail_model.dir/lingering.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/mixed_bundling.cpp.o"
  "CMakeFiles/swarmavail_model.dir/mixed_bundling.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/params.cpp.o"
  "CMakeFiles/swarmavail_model.dir/params.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/partitioning.cpp.o"
  "CMakeFiles/swarmavail_model.dir/partitioning.cpp.o.d"
  "CMakeFiles/swarmavail_model.dir/zipf_demand.cpp.o"
  "CMakeFiles/swarmavail_model.dir/zipf_demand.cpp.o.d"
  "libswarmavail_model.a"
  "libswarmavail_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmavail_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
