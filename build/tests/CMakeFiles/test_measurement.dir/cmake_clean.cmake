file(REMOVE_RECURSE
  "CMakeFiles/test_measurement.dir/measurement/test_analysis.cpp.o"
  "CMakeFiles/test_measurement.dir/measurement/test_analysis.cpp.o.d"
  "CMakeFiles/test_measurement.dir/measurement/test_arrival_patterns.cpp.o"
  "CMakeFiles/test_measurement.dir/measurement/test_arrival_patterns.cpp.o.d"
  "CMakeFiles/test_measurement.dir/measurement/test_catalog.cpp.o"
  "CMakeFiles/test_measurement.dir/measurement/test_catalog.cpp.o.d"
  "CMakeFiles/test_measurement.dir/measurement/test_monitor.cpp.o"
  "CMakeFiles/test_measurement.dir/measurement/test_monitor.cpp.o.d"
  "test_measurement"
  "test_measurement.pdb"
  "test_measurement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
