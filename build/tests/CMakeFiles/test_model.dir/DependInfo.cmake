
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_asymptotics.cpp" "tests/CMakeFiles/test_model.dir/model/test_asymptotics.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_asymptotics.cpp.o.d"
  "/root/repo/tests/model/test_availability.cpp" "tests/CMakeFiles/test_model.dir/model/test_availability.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_availability.cpp.o.d"
  "/root/repo/tests/model/test_bundling.cpp" "tests/CMakeFiles/test_model.dir/model/test_bundling.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_bundling.cpp.o.d"
  "/root/repo/tests/model/test_download_time.cpp" "tests/CMakeFiles/test_model.dir/model/test_download_time.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_download_time.cpp.o.d"
  "/root/repo/tests/model/test_fluid_baseline.cpp" "tests/CMakeFiles/test_model.dir/model/test_fluid_baseline.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_fluid_baseline.cpp.o.d"
  "/root/repo/tests/model/test_lingering.cpp" "tests/CMakeFiles/test_model.dir/model/test_lingering.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_lingering.cpp.o.d"
  "/root/repo/tests/model/test_mixed_bundling.cpp" "tests/CMakeFiles/test_model.dir/model/test_mixed_bundling.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_mixed_bundling.cpp.o.d"
  "/root/repo/tests/model/test_model_properties.cpp" "tests/CMakeFiles/test_model.dir/model/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_model_properties.cpp.o.d"
  "/root/repo/tests/model/test_params.cpp" "tests/CMakeFiles/test_model.dir/model/test_params.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_params.cpp.o.d"
  "/root/repo/tests/model/test_partitioning.cpp" "tests/CMakeFiles/test_model.dir/model/test_partitioning.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_partitioning.cpp.o.d"
  "/root/repo/tests/model/test_zipf_demand.cpp" "tests/CMakeFiles/test_model.dir/model/test_zipf_demand.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_zipf_demand.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measurement/CMakeFiles/swarmavail_measurement.dir/DependInfo.cmake"
  "/root/repo/build/src/swarm/CMakeFiles/swarmavail_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swarmavail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/swarmavail_model.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/swarmavail_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
