file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/test_asymptotics.cpp.o"
  "CMakeFiles/test_model.dir/model/test_asymptotics.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_availability.cpp.o"
  "CMakeFiles/test_model.dir/model/test_availability.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_bundling.cpp.o"
  "CMakeFiles/test_model.dir/model/test_bundling.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_download_time.cpp.o"
  "CMakeFiles/test_model.dir/model/test_download_time.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_fluid_baseline.cpp.o"
  "CMakeFiles/test_model.dir/model/test_fluid_baseline.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_lingering.cpp.o"
  "CMakeFiles/test_model.dir/model/test_lingering.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_mixed_bundling.cpp.o"
  "CMakeFiles/test_model.dir/model/test_mixed_bundling.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_model_properties.cpp.o"
  "CMakeFiles/test_model.dir/model/test_model_properties.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_params.cpp.o"
  "CMakeFiles/test_model.dir/model/test_params.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_partitioning.cpp.o"
  "CMakeFiles/test_model.dir/model/test_partitioning.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_zipf_demand.cpp.o"
  "CMakeFiles/test_model.dir/model/test_zipf_demand.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
