file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_availability_sim.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_availability_sim.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_monte_carlo.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_monte_carlo.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_processes.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_processes.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
