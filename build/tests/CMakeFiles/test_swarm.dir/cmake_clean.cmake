file(REMOVE_RECURSE
  "CMakeFiles/test_swarm.dir/swarm/test_capacity.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_capacity.cpp.o.d"
  "CMakeFiles/test_swarm.dir/swarm/test_observables.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_observables.cpp.o.d"
  "CMakeFiles/test_swarm.dir/swarm/test_piece_set.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_piece_set.cpp.o.d"
  "CMakeFiles/test_swarm.dir/swarm/test_swarm_invariants.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_swarm_invariants.cpp.o.d"
  "CMakeFiles/test_swarm.dir/swarm/test_swarm_sim.cpp.o"
  "CMakeFiles/test_swarm.dir/swarm/test_swarm_sim.cpp.o.d"
  "test_swarm"
  "test_swarm.pdb"
  "test_swarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
