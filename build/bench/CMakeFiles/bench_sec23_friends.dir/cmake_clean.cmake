file(REMOVE_RECURSE
  "CMakeFiles/bench_sec23_friends.dir/bench_sec23_friends.cpp.o"
  "CMakeFiles/bench_sec23_friends.dir/bench_sec23_friends.cpp.o.d"
  "bench_sec23_friends"
  "bench_sec23_friends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec23_friends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
