# Empty dependencies file for bench_sec23_friends.
# This may be replaced when dependencies are built.
