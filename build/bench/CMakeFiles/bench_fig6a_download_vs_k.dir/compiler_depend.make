# Empty compiler generated dependencies file for bench_fig6a_download_vs_k.
# This may be replaced when dependencies are built.
