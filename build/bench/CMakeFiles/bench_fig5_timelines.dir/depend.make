# Empty dependencies file for bench_fig5_timelines.
# This may be replaced when dependencies are built.
