file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zipf.dir/bench_ablation_zipf.cpp.o"
  "CMakeFiles/bench_ablation_zipf.dir/bench_ablation_zipf.cpp.o.d"
  "bench_ablation_zipf"
  "bench_ablation_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
