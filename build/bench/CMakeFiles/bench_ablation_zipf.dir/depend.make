# Empty dependencies file for bench_ablation_zipf.
# This may be replaced when dependencies are built.
