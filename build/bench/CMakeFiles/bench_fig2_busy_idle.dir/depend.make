# Empty dependencies file for bench_fig2_busy_idle.
# This may be replaced when dependencies are built.
