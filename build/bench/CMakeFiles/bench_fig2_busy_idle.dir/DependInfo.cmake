
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_busy_idle.cpp" "bench/CMakeFiles/bench_fig2_busy_idle.dir/bench_fig2_busy_idle.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_busy_idle.dir/bench_fig2_busy_idle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measurement/CMakeFiles/swarmavail_measurement.dir/DependInfo.cmake"
  "/root/repo/build/src/swarm/CMakeFiles/swarmavail_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swarmavail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/swarmavail_model.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/swarmavail_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swarmavail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
