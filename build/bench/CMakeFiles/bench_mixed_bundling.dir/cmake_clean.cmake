file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_bundling.dir/bench_mixed_bundling.cpp.o"
  "CMakeFiles/bench_mixed_bundling.dir/bench_mixed_bundling.cpp.o.d"
  "bench_mixed_bundling"
  "bench_mixed_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
