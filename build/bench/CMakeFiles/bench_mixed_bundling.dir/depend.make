# Empty dependencies file for bench_mixed_bundling.
# This may be replaced when dependencies are built.
