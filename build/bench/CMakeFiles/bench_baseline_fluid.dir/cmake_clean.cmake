file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_fluid.dir/bench_baseline_fluid.cpp.o"
  "CMakeFiles/bench_baseline_fluid.dir/bench_baseline_fluid.cpp.o.d"
  "bench_baseline_fluid"
  "bench_baseline_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
