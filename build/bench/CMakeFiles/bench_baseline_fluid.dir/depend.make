# Empty dependencies file for bench_baseline_fluid.
# This may be replaced when dependencies are built.
