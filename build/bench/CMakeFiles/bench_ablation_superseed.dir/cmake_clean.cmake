file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_superseed.dir/bench_ablation_superseed.cpp.o"
  "CMakeFiles/bench_ablation_superseed.dir/bench_ablation_superseed.cpp.o.d"
  "bench_ablation_superseed"
  "bench_ablation_superseed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_superseed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
