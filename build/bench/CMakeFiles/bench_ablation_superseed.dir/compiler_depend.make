# Empty compiler generated dependencies file for bench_ablation_superseed.
# This may be replaced when dependencies are built.
