# Empty dependencies file for bench_availability_scaling.
# This may be replaced when dependencies are built.
