file(REMOVE_RECURSE
  "CMakeFiles/bench_availability_scaling.dir/bench_availability_scaling.cpp.o"
  "CMakeFiles/bench_availability_scaling.dir/bench_availability_scaling.cpp.o.d"
  "bench_availability_scaling"
  "bench_availability_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_availability_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
