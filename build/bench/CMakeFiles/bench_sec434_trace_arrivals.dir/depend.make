# Empty dependencies file for bench_sec434_trace_arrivals.
# This may be replaced when dependencies are built.
