file(REMOVE_RECURSE
  "CMakeFiles/bench_sec434_trace_arrivals.dir/bench_sec434_trace_arrivals.cpp.o"
  "CMakeFiles/bench_sec434_trace_arrivals.dir/bench_sec434_trace_arrivals.cpp.o.d"
  "bench_sec434_trace_arrivals"
  "bench_sec434_trace_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec434_trace_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
