# Empty dependencies file for bench_fig3_model_download_time.
# This may be replaced when dependencies are built.
