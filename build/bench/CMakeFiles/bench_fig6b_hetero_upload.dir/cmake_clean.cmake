file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_hetero_upload.dir/bench_fig6b_hetero_upload.cpp.o"
  "CMakeFiles/bench_fig6b_hetero_upload.dir/bench_fig6b_hetero_upload.cpp.o.d"
  "bench_fig6b_hetero_upload"
  "bench_fig6b_hetero_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_hetero_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
