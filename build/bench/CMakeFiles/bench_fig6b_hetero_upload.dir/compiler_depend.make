# Empty compiler generated dependencies file for bench_fig6b_hetero_upload.
# This may be replaced when dependencies are built.
