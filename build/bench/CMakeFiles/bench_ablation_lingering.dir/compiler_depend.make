# Empty compiler generated dependencies file for bench_ablation_lingering.
# This may be replaced when dependencies are built.
