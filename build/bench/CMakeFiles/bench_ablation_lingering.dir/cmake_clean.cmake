file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lingering.dir/bench_ablation_lingering.cpp.o"
  "CMakeFiles/bench_ablation_lingering.dir/bench_ablation_lingering.cpp.o.d"
  "bench_ablation_lingering"
  "bench_ablation_lingering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lingering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
