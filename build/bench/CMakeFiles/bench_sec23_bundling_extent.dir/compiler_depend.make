# Empty compiler generated dependencies file for bench_sec23_bundling_extent.
# This may be replaced when dependencies are built.
