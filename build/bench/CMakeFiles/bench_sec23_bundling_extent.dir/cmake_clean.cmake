file(REMOVE_RECURSE
  "CMakeFiles/bench_sec23_bundling_extent.dir/bench_sec23_bundling_extent.cpp.o"
  "CMakeFiles/bench_sec23_bundling_extent.dir/bench_sec23_bundling_extent.cpp.o.d"
  "bench_sec23_bundling_extent"
  "bench_sec23_bundling_extent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec23_bundling_extent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
