# Empty compiler generated dependencies file for bench_fig4_seedless_availability.
# This may be replaced when dependencies are built.
