file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_seedless_availability.dir/bench_fig4_seedless_availability.cpp.o"
  "CMakeFiles/bench_fig4_seedless_availability.dir/bench_fig4_seedless_availability.cpp.o.d"
  "bench_fig4_seedless_availability"
  "bench_fig4_seedless_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_seedless_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
