# Empty compiler generated dependencies file for bench_optimal_partitioning.
# This may be replaced when dependencies are built.
