file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_partitioning.dir/bench_optimal_partitioning.cpp.o"
  "CMakeFiles/bench_optimal_partitioning.dir/bench_optimal_partitioning.cpp.o.d"
  "bench_optimal_partitioning"
  "bench_optimal_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
