# Empty dependencies file for bench_fig1_seed_availability.
# This may be replaced when dependencies are built.
