file(REMOVE_RECURSE
  "CMakeFiles/bench_sec23_bundled_availability.dir/bench_sec23_bundled_availability.cpp.o"
  "CMakeFiles/bench_sec23_bundled_availability.dir/bench_sec23_bundled_availability.cpp.o.d"
  "bench_sec23_bundled_availability"
  "bench_sec23_bundled_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec23_bundled_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
