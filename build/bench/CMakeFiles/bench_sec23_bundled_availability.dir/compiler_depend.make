# Empty compiler generated dependencies file for bench_sec23_bundled_availability.
# This may be replaced when dependencies are built.
