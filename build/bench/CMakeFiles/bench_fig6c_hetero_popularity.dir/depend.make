# Empty dependencies file for bench_fig6c_hetero_popularity.
# This may be replaced when dependencies are built.
