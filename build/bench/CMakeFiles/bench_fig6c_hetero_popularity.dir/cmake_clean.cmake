file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_hetero_popularity.dir/bench_fig6c_hetero_popularity.cpp.o"
  "CMakeFiles/bench_fig6c_hetero_popularity.dir/bench_fig6c_hetero_popularity.cpp.o.d"
  "bench_fig6c_hetero_popularity"
  "bench_fig6c_hetero_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_hetero_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
