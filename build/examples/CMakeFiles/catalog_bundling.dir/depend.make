# Empty dependencies file for catalog_bundling.
# This may be replaced when dependencies are built.
