file(REMOVE_RECURSE
  "CMakeFiles/catalog_bundling.dir/catalog_bundling.cpp.o"
  "CMakeFiles/catalog_bundling.dir/catalog_bundling.cpp.o.d"
  "catalog_bundling"
  "catalog_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
