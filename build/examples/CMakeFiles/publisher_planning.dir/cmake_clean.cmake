file(REMOVE_RECURSE
  "CMakeFiles/publisher_planning.dir/publisher_planning.cpp.o"
  "CMakeFiles/publisher_planning.dir/publisher_planning.cpp.o.d"
  "publisher_planning"
  "publisher_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publisher_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
