# Empty dependencies file for publisher_planning.
# This may be replaced when dependencies are built.
