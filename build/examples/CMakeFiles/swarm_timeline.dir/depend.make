# Empty dependencies file for swarm_timeline.
# This may be replaced when dependencies are built.
