file(REMOVE_RECURSE
  "CMakeFiles/swarm_timeline.dir/swarm_timeline.cpp.o"
  "CMakeFiles/swarm_timeline.dir/swarm_timeline.cpp.o.d"
  "swarm_timeline"
  "swarm_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
