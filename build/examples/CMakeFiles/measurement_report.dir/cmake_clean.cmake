file(REMOVE_RECURSE
  "CMakeFiles/measurement_report.dir/measurement_report.cpp.o"
  "CMakeFiles/measurement_report.dir/measurement_report.cpp.o.d"
  "measurement_report"
  "measurement_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
