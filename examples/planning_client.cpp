// Client for the planning daemon: one-shot queries, scripted sessions,
// a loopback benchmark mode, and an offline parser harness.
//
// Usage:
//   planning_client (--port P | --port-file FILE) --request JSON
//   planning_client (--port P | --port-file FILE) --stats
//   planning_client (--port P | --port-file FILE) --bench N --request JSON
//   planning_client (--port P | --port-file FILE)            # stdin session
//   planning_client --parse-only FILE
//
// One-shot: sends the JSON request as one frame, prints the response
// payload, exits 0 on an ok:true answer and 1 on a structured error.
// --stats sends STATS and prints the embedded Prometheus exposition as
// text. --bench sends the request N times in lockstep over one connection
// and reports wall time and queries/s (end-to-end loopback numbers; the
// in-process router throughput lives in bench_planning_qps). With no mode
// flag, each stdin line is sent as one request and each response printed
// on its own line — the scripted-session mode CI smoke tests use.
//
// --parse-only runs the server's exact decode pipeline (frame decoder,
// UTF-8 check, strict JSON, request validation) over raw bytes from FILE
// without a server, printing each diagnostic; nonzero exit on any
// malformed input. The protocol-hardening fixtures drive this mode, also
// under AddressSanitizer in CI.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"

namespace {

using swarmavail::serve::FrameDecoder;

struct Options {
    int port = -1;
    std::string port_file;
    std::string request;
    std::string parse_only;
    bool stats = false;
    long bench = 0;
};

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "planning_client: " << message << "\n"
              << "usage: planning_client (--port P | --port-file FILE) "
                 "[--request JSON | --stats | --bench N --request JSON]\n"
              << "       planning_client --parse-only FILE\n";
    std::exit(2);
}

const char* next_value(int argc, char** argv, int& i, std::string_view flag) {
    if (i + 1 >= argc) {
        usage_error(std::string{flag} + " needs a value");
    }
    return argv[++i];
}

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--port") {
            opt.port = std::stoi(next_value(argc, argv, i, arg));
        } else if (arg == "--port-file") {
            opt.port_file = next_value(argc, argv, i, arg);
        } else if (arg == "--request") {
            opt.request = next_value(argc, argv, i, arg);
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--bench") {
            opt.bench = std::stol(next_value(argc, argv, i, arg));
            if (opt.bench < 1) {
                usage_error("--bench must be >= 1");
            }
        } else if (arg == "--parse-only") {
            opt.parse_only = next_value(argc, argv, i, arg);
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else {
            usage_error("unknown flag " + std::string{arg});
        }
    }
    return opt;
}

/// The server's decode pipeline, offline: frames, UTF-8, JSON, request
/// schema. Returns the number of malformed inputs found.
int parse_only(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "planning_client: cannot read " << path << "\n";
        return 1;
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string bytes = raw.str();

    FrameDecoder decoder;
    decoder.feed(bytes);
    int failures = 0;
    std::size_t frames = 0;
    std::string payload;
    std::string error;
    while (true) {
        const FrameDecoder::Status status = decoder.next(payload, error);
        if (status == FrameDecoder::Status::kNeedMore) {
            break;
        }
        if (status == FrameDecoder::Status::kError) {
            std::cerr << "frame error: " << error << "\n";
            return 1;  // framing is unrecoverable once poisoned
        }
        ++frames;
        if (!swarmavail::serve::validate_utf8(payload)) {
            std::cerr << "frame " << frames << ": payload is not valid UTF-8\n";
            ++failures;
            continue;
        }
        swarmavail::serve::JsonValue value;
        std::string json_error;
        if (!swarmavail::serve::parse_json(payload, value, &json_error)) {
            std::cerr << "frame " << frames << ": " << json_error << "\n";
            ++failures;
            continue;
        }
        swarmavail::serve::Request request;
        swarmavail::serve::ServeError serve_error;
        if (!swarmavail::serve::parse_request(value, swarmavail::serve::RequestPolicy{},
                                              request, serve_error)) {
            std::cerr << "frame " << frames << ": [" << serve_error.code << "] "
                      << serve_error.message << "\n";
            ++failures;
            continue;
        }
        std::cout << "frame " << frames << ": ok ("
                  << swarmavail::serve::verb_name(request.verb) << ")\n";
    }
    if (decoder.pending_bytes() > 0) {
        std::cerr << "trailing bytes form a truncated frame ("
                  << decoder.pending_bytes() << " bytes)\n";
        ++failures;
    }
    if (frames == 0 && failures == 0) {
        std::cerr << "no frames in " << path << "\n";
        return 1;
    }
    return failures == 0 ? 0 : 1;
}

int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// Sends one request frame and reads one response payload.
bool round_trip(int fd, FrameDecoder& decoder, const std::string& request,
                std::string& response) {
    if (!send_all(fd, swarmavail::serve::encode_frame(request))) {
        return false;
    }
    std::string error;
    char buffer[65536];
    while (true) {
        const FrameDecoder::Status status = decoder.next(response, error);
        if (status == FrameDecoder::Status::kFrame) {
            return true;
        }
        if (status == FrameDecoder::Status::kError) {
            std::cerr << "planning_client: protocol error: " << error << "\n";
            return false;
        }
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
            std::cerr << "planning_client: connection closed by server\n";
            return false;
        }
        decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
}

/// True when the response says ok:true (cheap scan; responses are ours).
bool response_ok(const std::string& response) {
    return response.find("\"ok\":true") != std::string::npos;
}

int run_stats(int fd, FrameDecoder& decoder) {
    std::string response;
    if (!round_trip(fd, decoder, "{\"verb\":\"STATS\"}", response)) {
        return 1;
    }
    swarmavail::serve::JsonValue value;
    std::string error;
    if (!swarmavail::serve::parse_json(response, value, &error)) {
        std::cerr << "planning_client: unparseable response: " << error << "\n";
        return 1;
    }
    const auto* result = value.find("result");
    const auto* text = result != nullptr ? result->find("prometheus") : nullptr;
    if (text == nullptr || !text->is_string()) {
        std::cerr << response << "\n";
        return 1;
    }
    std::cout << text->as_string();
    return 0;
}

int run_bench(int fd, FrameDecoder& decoder, const Options& opt) {
    std::string response;
    // Warm the caches (and fault in the code path) outside the timed loop.
    if (!round_trip(fd, decoder, opt.request, response)) {
        return 1;
    }
    const auto started = std::chrono::steady_clock::now();
    for (long i = 0; i < opt.bench; ++i) {
        if (!round_trip(fd, decoder, opt.request, response)) {
            return 1;
        }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    std::cout << "requests " << opt.bench << "\n"
              << "seconds " << seconds << "\n"
              << "queries_per_s " << (seconds > 0.0 ? opt.bench / seconds : 0.0)
              << "\n"
              << "last_response " << response << "\n";
    return 0;
}

int run_session(int fd, FrameDecoder& decoder) {
    std::string line;
    std::string response;
    int failures = 0;
    while (std::getline(std::cin, line)) {
        if (line.empty()) {
            continue;
        }
        if (!round_trip(fd, decoder, line, response)) {
            return 1;
        }
        std::cout << response << "\n";
        if (!response_ok(response)) {
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);

    if (!opt.parse_only.empty()) {
        return parse_only(opt.parse_only);
    }

    int port = opt.port;
    if (port < 0 && !opt.port_file.empty()) {
        std::ifstream in(opt.port_file);
        if (!(in >> port)) {
            std::cerr << "planning_client: cannot read a port from "
                      << opt.port_file << "\n";
            return 1;
        }
    }
    if (port <= 0 || port > 65535) {
        usage_error("need --port or --port-file naming a bound port");
    }

    const int fd = connect_to(port);
    if (fd < 0) {
        std::cerr << "planning_client: cannot connect to 127.0.0.1:" << port << "\n";
        return 1;
    }
    FrameDecoder decoder;

    int rc = 0;
    if (opt.stats) {
        rc = run_stats(fd, decoder);
    } else if (opt.bench > 0) {
        if (opt.request.empty()) {
            usage_error("--bench needs --request JSON");
        }
        rc = run_bench(fd, decoder, opt);
    } else if (!opt.request.empty()) {
        std::string response;
        if (round_trip(fd, decoder, opt.request, response)) {
            std::cout << response << "\n";
            rc = response_ok(response) ? 0 : 1;
        } else {
            rc = 1;
        }
    } else {
        rc = run_session(fd, decoder);
    }
    ::close(fd);
    return rc;
}
