// Client for the planning daemon: one-shot queries, scripted sessions,
// a loopback benchmark mode, and an offline parser harness.
//
// Usage:
//   planning_client (--port P | --port-file FILE) --request JSON
//   planning_client (--port P | --port-file FILE) --stats
//   planning_client (--port P | --port-file FILE) --stats-raw
//   planning_client (--port P | --port-file FILE) --bench N --request JSON
//   planning_client (--port P | --port-file FILE)            # stdin session
//   planning_client --parse-only FILE
//   planning_client --check-spans FILE
//
// One-shot: sends the JSON request as one frame, prints the response
// payload, exits 0 on an ok:true answer and 1 on a structured error.
// --stats sends STATS and renders the exposition as readable tables:
// per-verb traffic and latency quantiles, per-stage latency quantiles
// (decode/parse/cache/queue-wait/compute/serialize/write, fed by request
// spans), cache hit/miss/evict/coalesce counters, and span bookkeeping.
// Quantiles come from the cumulative histogram buckets, so p50/p99 are
// upper bin edges, not exact order statistics. --stats-raw prints the raw
// Prometheus text instead (what scripts and scrapers want). --bench sends
// the request N times in lockstep over one connection and reports wall
// time and queries/s (end-to-end loopback numbers; the in-process router
// throughput lives in bench_planning_qps). With no mode flag, each stdin
// line is sent as one request and each response printed on its own line —
// the scripted-session mode CI smoke tests use.
//
// --parse-only runs the server's exact decode pipeline (frame decoder,
// UTF-8 check, strict JSON, request validation) over raw bytes from FILE
// without a server, printing each diagnostic; nonzero exit on any
// malformed input. The protocol-hardening fixtures drive this mode, also
// under AddressSanitizer in CI.
//
// --check-spans parses a span JSONL file (a --span-out drain or --slow-ms
// slow-query log) with the library's own reader and summarizes it:
// record/request counts, per-stage totals, and the slowest request's full
// stage breakdown. Nonzero exit when the file is empty or malformed — the
// CI smoke uses it to prove the slow-query log round-trips.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/span.hpp"

namespace {

using swarmavail::serve::FrameDecoder;

struct Options {
    int port = -1;
    std::string port_file;
    std::string request;
    std::string parse_only;
    std::string check_spans;
    bool stats = false;
    bool stats_raw = false;
    long bench = 0;
};

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "planning_client: " << message << "\n"
              << "usage: planning_client (--port P | --port-file FILE) "
                 "[--request JSON | --stats | --stats-raw | --bench N "
                 "--request JSON]\n"
              << "       planning_client --parse-only FILE\n"
              << "       planning_client --check-spans FILE\n";
    std::exit(2);
}

const char* next_value(int argc, char** argv, int& i, std::string_view flag) {
    if (i + 1 >= argc) {
        usage_error(std::string{flag} + " needs a value");
    }
    return argv[++i];
}

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--port") {
            opt.port = std::stoi(next_value(argc, argv, i, arg));
        } else if (arg == "--port-file") {
            opt.port_file = next_value(argc, argv, i, arg);
        } else if (arg == "--request") {
            opt.request = next_value(argc, argv, i, arg);
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--stats-raw") {
            opt.stats_raw = true;
        } else if (arg == "--check-spans") {
            opt.check_spans = next_value(argc, argv, i, arg);
        } else if (arg == "--bench") {
            opt.bench = std::stol(next_value(argc, argv, i, arg));
            if (opt.bench < 1) {
                usage_error("--bench must be >= 1");
            }
        } else if (arg == "--parse-only") {
            opt.parse_only = next_value(argc, argv, i, arg);
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else {
            usage_error("unknown flag " + std::string{arg});
        }
    }
    return opt;
}

/// The server's decode pipeline, offline: frames, UTF-8, JSON, request
/// schema. Returns the number of malformed inputs found.
int parse_only(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "planning_client: cannot read " << path << "\n";
        return 1;
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string bytes = raw.str();

    FrameDecoder decoder;
    decoder.feed(bytes);
    int failures = 0;
    std::size_t frames = 0;
    std::string payload;
    std::string error;
    while (true) {
        const FrameDecoder::Status status = decoder.next(payload, error);
        if (status == FrameDecoder::Status::kNeedMore) {
            break;
        }
        if (status == FrameDecoder::Status::kError) {
            std::cerr << "frame error: " << error << "\n";
            return 1;  // framing is unrecoverable once poisoned
        }
        ++frames;
        if (!swarmavail::serve::validate_utf8(payload)) {
            std::cerr << "frame " << frames << ": payload is not valid UTF-8\n";
            ++failures;
            continue;
        }
        swarmavail::serve::JsonValue value;
        std::string json_error;
        if (!swarmavail::serve::parse_json(payload, value, &json_error)) {
            std::cerr << "frame " << frames << ": " << json_error << "\n";
            ++failures;
            continue;
        }
        swarmavail::serve::Request request;
        swarmavail::serve::ServeError serve_error;
        if (!swarmavail::serve::parse_request(value, swarmavail::serve::RequestPolicy{},
                                              request, serve_error)) {
            std::cerr << "frame " << frames << ": [" << serve_error.code << "] "
                      << serve_error.message << "\n";
            ++failures;
            continue;
        }
        std::cout << "frame " << frames << ": ok ("
                  << swarmavail::serve::verb_name(request.verb) << ")\n";
    }
    if (decoder.pending_bytes() > 0) {
        std::cerr << "trailing bytes form a truncated frame ("
                  << decoder.pending_bytes() << " bytes)\n";
        ++failures;
    }
    if (frames == 0 && failures == 0) {
        std::cerr << "no frames in " << path << "\n";
        return 1;
    }
    return failures == 0 ? 0 : 1;
}

int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// Sends one request frame and reads one response payload.
bool round_trip(int fd, FrameDecoder& decoder, const std::string& request,
                std::string& response) {
    if (!send_all(fd, swarmavail::serve::encode_frame(request))) {
        return false;
    }
    std::string error;
    char buffer[65536];
    while (true) {
        const FrameDecoder::Status status = decoder.next(response, error);
        if (status == FrameDecoder::Status::kFrame) {
            return true;
        }
        if (status == FrameDecoder::Status::kError) {
            std::cerr << "planning_client: protocol error: " << error << "\n";
            return false;
        }
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
            std::cerr << "planning_client: connection closed by server\n";
            return false;
        }
        decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
}

/// True when the response says ok:true (cheap scan; responses are ours).
bool response_ok(const std::string& response) {
    return response.find("\"ok\":true") != std::string::npos;
}

/// Fetches the STATS exposition text; false on transport/shape failure.
bool fetch_stats(int fd, FrameDecoder& decoder, std::string& text) {
    std::string response;
    if (!round_trip(fd, decoder, "{\"verb\":\"STATS\"}", response)) {
        return false;
    }
    swarmavail::serve::JsonValue value;
    std::string error;
    if (!swarmavail::serve::parse_json(response, value, &error)) {
        std::cerr << "planning_client: unparseable response: " << error << "\n";
        return false;
    }
    const auto* result = value.find("result");
    const auto* prometheus =
        result != nullptr ? result->find("prometheus") : nullptr;
    if (prometheus == nullptr || !prometheus->is_string()) {
        std::cerr << response << "\n";
        return false;
    }
    text = prometheus->as_string();
    return true;
}

// ---- STATS table rendering -------------------------------------------
//
// A deliberately small scanner over the server's own exposition (not a
// general Prometheus parser): sample lines are `name value` or
// `name{label="v"} value`, and histogram families follow the
// _bucket/_sum/_count convention with cumulative bucket counts.

/// Cumulative histogram pulled out of the exposition text.
struct PromHistogram {
    std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, cumulative)
    double sum = 0.0;
    std::uint64_t count = 0;
};

/// Value of the sample line starting exactly with `prefix` + ' '.
bool find_sample(const std::string& text, const std::string& prefix, double& out) {
    std::size_t pos = 0;
    const std::string needle = prefix + " ";
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line(text.data() + pos,
                                    (eol == std::string::npos ? text.size() : eol) -
                                        pos);
        if (line.substr(0, needle.size()) == needle) {
            out = std::strtod(line.data() + needle.size(), nullptr);
            return true;
        }
        if (eol == std::string::npos) {
            break;
        }
        pos = eol + 1;
    }
    return false;
}

std::uint64_t counter_or_zero(const std::string& text, const std::string& name) {
    double value = 0.0;
    find_sample(text, name, value);
    return static_cast<std::uint64_t>(value);
}

bool read_histogram(const std::string& text, const std::string& family,
                    PromHistogram& out) {
    out = PromHistogram{};
    const std::string bucket_prefix = family + "_bucket{le=\"";
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::size_t len =
            (eol == std::string::npos ? text.size() : eol) - pos;
        const std::string line = text.substr(pos, len);
        if (line.compare(0, bucket_prefix.size(), bucket_prefix) == 0) {
            const std::size_t close = line.find("\"} ", bucket_prefix.size());
            if (close != std::string::npos) {
                const std::string le_text =
                    line.substr(bucket_prefix.size(), close - bucket_prefix.size());
                const double le = le_text == "+Inf"
                                      ? std::numeric_limits<double>::infinity()
                                      : std::strtod(le_text.c_str(), nullptr);
                const std::uint64_t cumulative = std::strtoull(
                    line.c_str() + close + 3, nullptr, 10);
                out.buckets.emplace_back(le, cumulative);
            }
        }
        if (eol == std::string::npos) {
            break;
        }
        pos = eol + 1;
    }
    double sum = 0.0;
    double count = 0.0;
    const bool have_sum = find_sample(text, family + "_sum", sum);
    const bool have_count = find_sample(text, family + "_count", count);
    out.sum = sum;
    out.count = static_cast<std::uint64_t>(count);
    return have_sum && have_count && !out.buckets.empty();
}

/// Upper bin edge of the q-quantile (smallest le whose cumulative count
/// reaches q * total); 0 for an empty histogram.
double histogram_quantile(const PromHistogram& histogram, double q) {
    if (histogram.count == 0) {
        return 0.0;
    }
    const double target = q * static_cast<double>(histogram.count);
    for (const auto& [le, cumulative] : histogram.buckets) {
        if (static_cast<double>(cumulative) >= target) {
            return le;
        }
    }
    return histogram.buckets.back().first;
}

std::string format_seconds(double seconds) {
    char buffer[32];
    if (seconds <= 0.0) {
        return "-";
    }
    if (seconds < 1.0e-3) {
        std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1.0e6);
    } else if (seconds < 1.0) {
        std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1.0e3);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
    }
    return buffer;
}

void print_histogram_row(const std::string& label, const PromHistogram& histogram) {
    const double mean = histogram.count > 0
                            ? histogram.sum / static_cast<double>(histogram.count)
                            : 0.0;
    std::printf("  %-10s %10llu %10s %10s %10s\n", label.c_str(),
                static_cast<unsigned long long>(histogram.count),
                format_seconds(mean).c_str(),
                format_seconds(histogram_quantile(histogram, 0.50)).c_str(),
                format_seconds(histogram_quantile(histogram, 0.99)).c_str());
}

int run_stats_table(int fd, FrameDecoder& decoder) {
    std::string text;
    if (!fetch_stats(fd, decoder, text)) {
        return 1;
    }
    static constexpr const char* kVerbs[] = {"ping", "eval", "plan", "refine",
                                             "stats"};
    static constexpr const char* kStages[] = {"decode",     "parse",   "cache",
                                              "queue_wait", "compute", "serialize",
                                              "write"};

    std::printf("requests by verb\n");
    std::printf("  %-10s %10s %10s %10s %10s\n", "verb", "count", "mean", "p50",
                "p99");
    for (const char* verb : kVerbs) {
        PromHistogram histogram;
        if (!read_histogram(text,
                            std::string("swarmavail_server_latency_seconds_") + verb,
                            histogram)) {
            continue;
        }
        print_histogram_row(verb, histogram);
    }
    std::printf("  errors %llu  overloaded %llu  bad frames %llu\n",
                static_cast<unsigned long long>(
                    counter_or_zero(text, "swarmavail_server_errors_total")),
                static_cast<unsigned long long>(
                    counter_or_zero(text, "swarmavail_server_overloaded_total")),
                static_cast<unsigned long long>(
                    counter_or_zero(text, "swarmavail_server_bad_frames_total")));

    std::printf("\nstage latency (request spans)\n");
    std::printf("  %-10s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50",
                "p99");
    for (const char* stage : kStages) {
        PromHistogram histogram;
        if (!read_histogram(text,
                            std::string("swarmavail_server_stage_seconds_") + stage,
                            histogram)) {
            continue;
        }
        print_histogram_row(stage, histogram);
    }

    std::printf("\ncaches\n");
    std::printf("  %-10s %10s %10s %10s %10s %10s %8s\n", "cache", "hits",
                "misses", "evicted", "coalesced", "entries", "hit%");
    for (const char* cache : {"model", "refine"}) {
        const std::string base =
            std::string("swarmavail_server_") + cache + "_cache_";
        const std::uint64_t hits = counter_or_zero(text, base + "hits_total");
        const std::uint64_t misses = counter_or_zero(text, base + "misses_total");
        const double total = static_cast<double>(hits + misses);
        std::printf("  %-10s %10llu %10llu %10llu %10llu %10llu %7.1f%%\n", cache,
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses),
                    static_cast<unsigned long long>(
                        counter_or_zero(text, base + "evictions_total")),
                    static_cast<unsigned long long>(
                        counter_or_zero(text, base + "coalesced_total")),
                    static_cast<unsigned long long>(
                        counter_or_zero(text, base + "entries")),
                    total > 0.0 ? 100.0 * static_cast<double>(hits) / total : 0.0);
    }

    double model_depth = 0.0;
    double sim_depth = 0.0;
    find_sample(text, "swarmavail_server_queue_depth{lane=\"model\"}", model_depth);
    find_sample(text, "swarmavail_server_queue_depth{lane=\"sim\"}", sim_depth);
    std::printf("\nqueues  model %.0f  sim %.0f\n", model_depth, sim_depth);
    std::printf(
        "spans   records %llu  dropped %llu  slow %llu\n",
        static_cast<unsigned long long>(
            counter_or_zero(text, "swarmavail_server_span_records_total")),
        static_cast<unsigned long long>(counter_or_zero(
            text, "swarmavail_server_span_records_dropped_total")),
        static_cast<unsigned long long>(
            counter_or_zero(text, "swarmavail_server_slow_queries_total")));
    return 0;
}

int run_stats_raw(int fd, FrameDecoder& decoder) {
    std::string text;
    if (!fetch_stats(fd, decoder, text)) {
        return 1;
    }
    std::cout << text;
    return 0;
}

/// Parses a span JSONL file and summarizes it; nonzero on empty/malformed.
int check_spans(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "planning_client: cannot read " << path << "\n";
        return 1;
    }
    std::vector<swarmavail::serve::SpanRecord> records;
    try {
        records = swarmavail::serve::read_spans_jsonl(in);
    } catch (const std::exception& e) {
        std::cerr << "planning_client: " << path << ": " << e.what() << "\n";
        return 1;
    }
    if (records.empty()) {
        std::cerr << "planning_client: no span records in " << path << "\n";
        return 1;
    }

    std::uint64_t stage_counts[swarmavail::serve::kSpanStageCount] = {};
    // Per-request [t_min, t_max] over its records (request 0 = accept
    // events, which belong to a connection rather than a request).
    std::map<std::uint64_t, std::pair<double, double>> requests;
    for (const auto& record : records) {
        if (record.stage < swarmavail::serve::kSpanStageCount) {
            stage_counts[record.stage] += 1;
        }
        if (record.request == 0) {
            continue;
        }
        auto [it, inserted] = requests.emplace(
            record.request, std::make_pair(record.t_start, record.t_end));
        if (!inserted) {
            it->second.first = std::min(it->second.first, record.t_start);
            it->second.second = std::max(it->second.second, record.t_end);
        }
    }

    std::cout << "records " << records.size() << "\n"
              << "requests " << requests.size() << "\n";
    for (std::size_t s = 0; s < swarmavail::serve::kSpanStageCount; ++s) {
        if (stage_counts[s] == 0) {
            continue;
        }
        std::cout << "stage " << swarmavail::serve::span_stage_name(
                         static_cast<swarmavail::serve::SpanStage>(s))
                  << " " << stage_counts[s] << "\n";
    }

    if (!requests.empty()) {
        const auto slowest = std::max_element(
            requests.begin(), requests.end(), [](const auto& a, const auto& b) {
                return a.second.second - a.second.first <
                       b.second.second - b.second.first;
            });
        std::cout << "slowest_request " << slowest->first << " "
                  << (slowest->second.second - slowest->second.first) << "s\n";
        for (const auto& record : records) {
            if (record.request != slowest->first) {
                continue;
            }
            std::cout << "  " << swarmavail::serve::span_stage_name(
                             static_cast<swarmavail::serve::SpanStage>(record.stage))
                      << " t0 " << record.t_start << " t1 " << record.t_end
                      << " bytes " << record.bytes << " cache "
                      << swarmavail::serve::span_cache_outcome_name(
                             static_cast<swarmavail::serve::SpanCacheOutcome>(
                                 record.cache))
                      << "\n";
        }
    }
    return 0;
}

int run_bench(int fd, FrameDecoder& decoder, const Options& opt) {
    std::string response;
    // Warm the caches (and fault in the code path) outside the timed loop.
    if (!round_trip(fd, decoder, opt.request, response)) {
        return 1;
    }
    const auto started = std::chrono::steady_clock::now();
    for (long i = 0; i < opt.bench; ++i) {
        if (!round_trip(fd, decoder, opt.request, response)) {
            return 1;
        }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    std::cout << "requests " << opt.bench << "\n"
              << "seconds " << seconds << "\n"
              << "queries_per_s " << (seconds > 0.0 ? opt.bench / seconds : 0.0)
              << "\n"
              << "last_response " << response << "\n";
    return 0;
}

int run_session(int fd, FrameDecoder& decoder) {
    std::string line;
    std::string response;
    int failures = 0;
    while (std::getline(std::cin, line)) {
        if (line.empty()) {
            continue;
        }
        if (!round_trip(fd, decoder, line, response)) {
            return 1;
        }
        std::cout << response << "\n";
        if (!response_ok(response)) {
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);

    if (!opt.parse_only.empty()) {
        return parse_only(opt.parse_only);
    }
    if (!opt.check_spans.empty()) {
        return check_spans(opt.check_spans);
    }

    int port = opt.port;
    if (port < 0 && !opt.port_file.empty()) {
        std::ifstream in(opt.port_file);
        if (!(in >> port)) {
            std::cerr << "planning_client: cannot read a port from "
                      << opt.port_file << "\n";
            return 1;
        }
    }
    if (port <= 0 || port > 65535) {
        usage_error("need --port or --port-file naming a bound port");
    }

    const int fd = connect_to(port);
    if (fd < 0) {
        std::cerr << "planning_client: cannot connect to 127.0.0.1:" << port << "\n";
        return 1;
    }
    FrameDecoder decoder;

    int rc = 0;
    if (opt.stats) {
        rc = run_stats_table(fd, decoder);
    } else if (opt.stats_raw) {
        rc = run_stats_raw(fd, decoder);
    } else if (opt.bench > 0) {
        if (opt.request.empty()) {
            usage_error("--bench needs --request JSON");
        }
        rc = run_bench(fd, decoder, opt);
    } else if (!opt.request.empty()) {
        std::string response;
        if (round_trip(fd, decoder, opt.request, response)) {
            std::cout << response << "\n";
            rc = response_ok(response) ? 0 : 1;
        } else {
            rc = 1;
        }
    } else {
        rc = run_session(fd, decoder);
    }
    ::close(fd);
    return rc;
}
