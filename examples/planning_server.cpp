// The availability-planning daemon (DESIGN.md §15).
//
// Serves the frame protocol on a loopback TCP port: PING, EVAL (point
// evaluation of the closed-form models), PLAN (inverse planning for K, u,
// or r), REFINE (on-demand catalog simulation, cached by canonical
// config), and STATS (Prometheus text exposition). Runs until SIGTERM or
// SIGINT, then drains gracefully: stops accepting, finishes every queued
// request, flushes the --prom-out exposition, exits 0.
//
// Usage:
//   planning_server [--port P] [--port-file FILE] [--threads T]
//                   [--max-inflight N] [--catalog N ALPHA BUDGET]
//                   [--prom-out FILE]
//                   [--spans] [--span-out FILE] [--slow-ms MS]
//                   [--slow-log FILE] [--span-ring N]
//
// --port 0 (default) binds an ephemeral port; --port-file writes the bound
// port as one decimal line once the server is listening, which is how
// scripts connect race-free. --catalog sets the default REFINE catalog
// (files, Zipf exponent, partitioned publisher budget r) that requests may
// override field by field.
//
// Span tracing (serve/span.hpp): --spans turns request-lifecycle spans on
// (--span-out drains every ring to a JSONL file at shutdown and implies
// --spans, as do the other span flags); --slow-ms M writes the complete
// stage breakdown of any request slower than M milliseconds end-to-end to
// the --slow-log file (stderr-less, JSONL) as it finishes; --span-ring
// sets the records retained per thread ring. All five are ignored in
// trace-off builds (SWARMAVAIL_SPANS_DISABLED).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "serve/server.hpp"

namespace {

using swarmavail::serve::PlanningServer;
using swarmavail::serve::ServerConfig;

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "planning_server: " << message << "\n"
              << "usage: planning_server [--port P] [--port-file FILE] "
                 "[--threads T] [--max-inflight N]\n"
              << "                       [--catalog N ALPHA BUDGET] "
                 "[--prom-out FILE]\n"
              << "                       [--spans] [--span-out FILE] "
                 "[--slow-ms MS] [--slow-log FILE] [--span-ring N]\n";
    std::exit(2);
}

const char* next_value(int argc, char** argv, int& i, std::string_view flag) {
    if (i + 1 >= argc) {
        usage_error(std::string{flag} + " needs a value");
    }
    return argv[++i];
}

ServerConfig parse_options(int argc, char** argv, std::string& port_file) {
    ServerConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--port") {
            const long port = std::stol(next_value(argc, argv, i, arg));
            if (port < 0 || port > 65535) {
                usage_error("--port must be in [0, 65535]");
            }
            config.port = static_cast<std::uint16_t>(port);
        } else if (arg == "--port-file") {
            port_file = next_value(argc, argv, i, arg);
        } else if (arg == "--threads") {
            const long threads = std::stol(next_value(argc, argv, i, arg));
            if (threads < 1) {
                usage_error("--threads must be >= 1");
            }
            config.threads = static_cast<std::size_t>(threads);
        } else if (arg == "--max-inflight") {
            const long inflight = std::stol(next_value(argc, argv, i, arg));
            if (inflight < 1) {
                usage_error("--max-inflight must be >= 1");
            }
            config.max_inflight = static_cast<std::size_t>(inflight);
        } else if (arg == "--catalog") {
            if (i + 3 >= argc) {
                usage_error("--catalog needs N ALPHA BUDGET");
            }
            auto& catalog = config.router.policy.default_catalog;
            const long files = std::stol(argv[++i]);
            if (files < 1) {
                usage_error("--catalog N must be >= 1");
            }
            catalog.num_files = static_cast<std::size_t>(files);
            catalog.zipf_exponent = std::stod(argv[++i]);
            catalog.publisher_arrival_rate = std::stod(argv[++i]);
            if (catalog.zipf_exponent < 0.0 ||
                catalog.publisher_arrival_rate <= 0.0) {
                usage_error("--catalog wants ALPHA >= 0 and BUDGET > 0");
            }
        } else if (arg == "--prom-out") {
            config.prom_out = next_value(argc, argv, i, arg);
        } else if (arg == "--spans") {
            config.spans = true;
        } else if (arg == "--span-out") {
            config.span_out = next_value(argc, argv, i, arg);
        } else if (arg == "--slow-ms") {
            const double ms = std::stod(next_value(argc, argv, i, arg));
            if (ms <= 0.0) {
                usage_error("--slow-ms must be > 0");
            }
            config.slow_query_seconds = ms / 1000.0;
        } else if (arg == "--slow-log") {
            config.slow_query_log = next_value(argc, argv, i, arg);
        } else if (arg == "--span-ring") {
            const long ring = std::stol(next_value(argc, argv, i, arg));
            if (ring < 1) {
                usage_error("--span-ring must be >= 1");
            }
            config.span_ring_capacity = static_cast<std::size_t>(ring);
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else {
            usage_error("unknown flag " + std::string{arg});
        }
    }
    return config;
}

PlanningServer* g_server = nullptr;

// Async-signal-safe by construction: request_stop only flips an atomic
// and writes to self-pipes.
void handle_signal(int) {
    if (g_server != nullptr) {
        g_server->request_stop();
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::string port_file;
    const ServerConfig config = parse_options(argc, argv, port_file);

    PlanningServer server(config);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::cerr << "planning_server: " << e.what() << "\n";
        return 1;
    }

    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << server.port() << "\n";
        if (!out) {
            std::cerr << "planning_server: cannot write " << port_file << "\n";
            server.stop();
            return 1;
        }
    }
    std::cout << "planning_server: listening on 127.0.0.1:" << server.port()
              << " with " << config.threads << " worker thread(s)\n"
              << std::flush;

    server.wait_until_stop_requested();
    std::cout << "planning_server: draining\n" << std::flush;
    server.stop();
    std::cout << "planning_server: drained cleanly\n";
    return 0;
}
