// Trace inspector: replay a structured JSONL event trace into a
// seed-absence timeline and per-peer latency summary.
//
// With a file argument it parses that trace; with no argument it runs a
// demo swarm (intermittent publisher) through the JSONL sink, parses its
// own output back, and also prints the phase-profile breakdown — the full
// observability loop: simulate -> serialize -> parse -> analyze.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/profile.hpp"
#include "util/stats.hpp"

namespace {

std::string demo_trace_jsonl() {
    using namespace swarmavail::swarm;
    SwarmSimConfig config;
    config.bundle_size = 2;
    config.file_size = 4.0e6 * 8.0;
    config.peer_arrival_rate = 1.0 / 45.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 600.0;
    config.horizon = 3600.0;
    config.seed = 17;

    std::ostringstream os;
    swarmavail::sim::JsonlTraceSink sink{os};
    swarmavail::sim::Tracer tracer{sink};
    tracer.set_enabled(true);
    config.tracer = &tracer;
    (void)run_swarm_sim(config);
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using swarmavail::StreamingStats;
    using swarmavail::sim::ParsedTrace;
    using swarmavail::sim::TraceKind;
    using swarmavail::sim::TraceRecord;

    const bool self_run = argc < 2;
    ParsedTrace trace;
    if (self_run) {
        swarmavail::prof::Profiler::reset();
        swarmavail::prof::Profiler::set_enabled(true);
        const std::string jsonl = demo_trace_jsonl();
        swarmavail::prof::Profiler::set_enabled(false);
        std::istringstream in{jsonl};
        trace = swarmavail::sim::read_trace_jsonl(in);
        std::cout << "demo swarm run, " << trace.records.size()
                  << " trace records captured\n\n";
    } else {
        std::ifstream in{argv[1]};
        if (!in) {
            std::cerr << "trace_inspect: cannot open " << argv[1] << "\n";
            return 1;
        }
        try {
            trace = swarmavail::sim::read_trace_jsonl(in);
        } catch (const std::exception& error) {
            // Truncated or corrupt JSONL: fail with a diagnostic instead of
            // letting the parse error abort the process.
            std::cerr << "trace_inspect: " << argv[1]
                      << " is not a valid JSONL trace: " << error.what() << "\n";
            return 1;
        }
        if (trace.records.empty() && trace.annotations.empty()) {
            std::cerr << "trace_inspect: " << argv[1]
                      << " contains no trace records (empty trace?)\n";
            return 1;
        }
        std::cout << argv[1] << ": " << trace.records.size() << " trace records\n\n";
    }

    // Record census by kind.
    std::cout << "records by kind:\n";
    for (std::uint32_t k = 0; k <= static_cast<std::uint32_t>(TraceKind::kCustom); ++k) {
        const TraceKind kind = static_cast<TraceKind>(k);
        std::size_t count = 0;
        for (const TraceRecord& record : trace.records) {
            count += record.kind == kind ? 1u : 0u;
        }
        if (count > 0) {
            std::cout << "  " << swarmavail::sim::trace_kind_name(kind) << ": " << count
                      << "\n";
        }
    }

    // Seed-absence timeline: intervals with no publisher online — the
    // periods where availability depends entirely on the swarm (the paper's
    // core concern).
    std::cout << "\nseed-absence timeline (publisher offline intervals):\n";
    double down_since = 0.0;
    bool down = true;  // runs begin with the publisher state unannounced
    bool any = false;
    for (const TraceRecord& record : trace.records) {
        if (record.kind == TraceKind::kPublisherUp) {
            if (down && record.time > down_since) {
                std::cout << "  [" << down_since << " s, " << record.time << " s]  ("
                          << record.time - down_since << " s)\n";
                any = true;
            }
            down = false;
        } else if (record.kind == TraceKind::kPublisherDown) {
            down = true;
            down_since = record.time;
        }
    }
    if (down) {
        std::cout << "  [" << down_since << " s, end of trace]\n";
        any = true;
    }
    if (!any) {
        std::cout << "  (none -- publisher stayed online)\n";
    }

    // Content availability and per-peer latency, recomputed from records.
    StreamingStats availability;
    for (const TraceRecord& record : trace.records) {
        if (record.kind == TraceKind::kAvailabilityEnd) {
            availability.add(record.time - record.a);
        }
    }
    if (availability.count() > 0) {
        std::cout << "\ncontent-available intervals: " << availability.count()
                  << ", mean length " << availability.mean() << " s (max "
                  << availability.max() << " s)\n";
    }
    StreamingStats downloads;
    for (const TraceRecord& record : trace.records) {
        if (record.kind == TraceKind::kPeerCompletion) {
            downloads.add(record.a);
        }
    }
    if (downloads.count() > 0) {
        std::cout << "per-peer download time: n=" << downloads.count() << ", mean "
                  << downloads.mean() << " s, min " << downloads.min() << " s, max "
                  << downloads.max() << " s\n";
    }
    if (!trace.annotations.empty()) {
        std::cout << "\nannotations:\n";
        for (const auto& annotation : trace.annotations) {
            std::cout << "  t=" << annotation.time << ": " << annotation.text << "\n";
        }
        // An annotated trace is typically a flight-recorder dump (a
        // CheckFailure or fingerprint mismatch dumped its retained window,
        // ending at the failure); show the records leading up to it.
        const std::size_t tail =
            trace.records.size() < 16 ? trace.records.size() : 16;
        if (tail > 0) {
            std::cout << "\nflight-recorder view (last " << tail
                      << " records before the annotation):\n";
            for (std::size_t i = trace.records.size() - tail;
                 i < trace.records.size(); ++i) {
                const TraceRecord& record = trace.records[i];
                std::cout << "  t=" << record.time << " "
                          << swarmavail::sim::trace_kind_name(record.kind)
                          << " entity=" << record.entity << " a=" << record.a
                          << " b=" << record.b << "\n";
            }
        }
    }

    if (self_run) {
        std::cout << "\nphase profile:\n";
        swarmavail::prof::Profiler::write_json(std::cout);
        std::cout << "\n";
    }
    return 0;
}
