// Live telemetry viewer: tails a JSONL snapshot stream written by a run
// with --telemetry-out (catalog_bundling, or any TelemetrySession with a
// JsonlTelemetryExporter) and renders the latest snapshot as a table —
// swarmavail's `top` for long Monte-Carlo runs.
//
// Usage:
//   telemetry_watch FILE [--once] [--poll SECONDS] [--no-clear]
//
// By default the viewer follows the file: it re-reads newly appended
// complete lines every --poll seconds (default 0.25), redraws, and exits
// once the stream's final snapshot (emitted by TelemetrySession::stop)
// arrives. --once renders whatever is in the file right now and exits —
// the mode scripts and tests use.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/fingerprint.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

using swarmavail::telemetry::TelemetrySnapshot;
using swarmavail::telemetry::TrackedStat;

struct Options {
    std::string path;
    bool once = false;
    bool clear_screen = true;
    double poll_s = 0.25;
};

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "telemetry_watch: " << message << "\n"
              << "usage: telemetry_watch FILE [--once] [--poll SECONDS] "
                 "[--no-clear]\n";
    std::exit(2);
}

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--once") {
            opt.once = true;
        } else if (arg == "--no-clear") {
            opt.clear_screen = false;
        } else if (arg == "--poll") {
            if (i + 1 >= argc) {
                usage_error("--poll needs a value");
            }
            opt.poll_s = std::stod(argv[++i]);
            if (opt.poll_s <= 0.0) {
                usage_error("--poll must be > 0");
            }
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else if (!arg.empty() && arg[0] == '-') {
            usage_error("unknown flag " + std::string{arg});
        } else if (opt.path.empty()) {
            opt.path = arg;
        } else {
            usage_error("expected exactly one FILE");
        }
    }
    if (opt.path.empty()) {
        usage_error("expected a snapshot FILE");
    }
    return opt;
}

std::string format_duration(double seconds) {
    if (seconds < 0.0) {
        return "?";
    }
    std::ostringstream os;
    if (seconds >= 3600.0) {
        os << static_cast<long>(seconds / 3600.0) << "h"
           << static_cast<long>(seconds / 60.0) % 60 << "m";
    } else if (seconds >= 60.0) {
        os << static_cast<long>(seconds / 60.0) << "m"
           << static_cast<long>(seconds) % 60 << "s";
    } else {
        os << swarmavail::format_double(seconds, 3) << "s";
    }
    return os.str();
}

std::string format_count(std::uint64_t done, std::uint64_t total) {
    std::string out = std::to_string(done);
    if (total > 0) {
        out += "/" + std::to_string(total);
    }
    return out;
}

void render(const TelemetrySnapshot& snapshot, std::size_t snapshots_seen,
            std::ostream& os) {
    using swarmavail::TableWriter;
    using swarmavail::format_double;

    os << "snapshot " << snapshot.sequence << " (" << snapshots_seen
       << " seen) · wall " << format_duration(snapshot.wall_time_s) << " · progress "
       << format_double(snapshot.progress * 100.0, 3) << "% · eta "
       << format_duration(snapshot.eta_s)
       << (snapshot.final_snapshot ? " · FINAL" : "") << "\n";
    // The live XOR of completed-swarm digests: compare two runs' watch
    // output at the same completion count to spot a determinism break
    // before either run finishes. Zero until a fingerprinted swarm lands.
    if (snapshot.fingerprint_xor != 0) {
        os << "fingerprint xor " << swarmavail::sim::fingerprint_hex(snapshot.fingerprint_xor)
           << "\n";
    }
    os << "\n";

    TableWriter run{{"replications", "swarms", "events", "events/s", "sim s",
                     "sim s/s", "queue", "rss MB"}};
    run.add_row({format_count(snapshot.replications_completed,
                              snapshot.replications_total),
                 format_count(snapshot.swarms_completed, snapshot.swarms_total),
                 std::to_string(snapshot.events_dispatched),
                 format_double(snapshot.events_per_s, 4),
                 format_double(snapshot.sim_time_advanced, 6),
                 format_double(snapshot.sim_time_rate, 4),
                 format_double(snapshot.queue_depth, 4),
                 format_double(static_cast<double>(snapshot.rss_bytes) / 1048576.0,
                               4)});
    run.print(os);

    if (!snapshot.tracked.empty()) {
        os << "\n";
        TableWriter tracked{{"tracked metric", "n", "mean", "ci95 +/-", "last"}};
        for (const TrackedStat& stat : snapshot.tracked) {
            tracked.add_row({stat.name, std::to_string(stat.count),
                             format_double(stat.mean, 6),
                             format_double(stat.ci95_halfwidth, 4),
                             format_double(stat.last, 6)});
        }
        tracked.print(os);
    }
    os.flush();
}

/// Reads the complete ('\n'-terminated) lines appended past `offset`,
/// parses each as one snapshot, and advances `offset`. Exits with a clear
/// error on malformed input — a torn final line (no newline yet) is simply
/// left for the next poll.
std::vector<TelemetrySnapshot> read_new_snapshots(const std::string& path,
                                                  std::streamoff& offset) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "telemetry_watch: cannot open " << path << "\n";
        std::exit(1);
    }
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size <= offset) {
        return {};
    }
    in.seekg(offset);
    std::string chunk(static_cast<std::size_t>(size - offset), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t last_newline = chunk.rfind('\n');
    if (last_newline == std::string::npos) {
        return {};  // no complete line yet
    }
    chunk.resize(last_newline + 1);
    offset += static_cast<std::streamoff>(chunk.size());

    std::istringstream lines(chunk);
    try {
        return swarmavail::telemetry::read_telemetry_jsonl(lines);
    } catch (const std::exception& error) {
        std::cerr << "telemetry_watch: malformed snapshot stream in " << path
                  << ": " << error.what() << "\n";
        std::exit(1);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);

    std::streamoff offset = 0;
    std::size_t snapshots_seen = 0;
    TelemetrySnapshot latest;
    bool have_snapshot = false;

    for (;;) {
        const std::vector<TelemetrySnapshot> fresh =
            read_new_snapshots(opt.path, offset);
        if (!fresh.empty()) {
            latest = fresh.back();
            snapshots_seen += fresh.size();
            have_snapshot = true;
            if (!opt.once && opt.clear_screen) {
                std::cout << "\033[2J\033[H";
            }
            render(latest, snapshots_seen, std::cout);
        }
        if (opt.once) {
            if (!have_snapshot) {
                std::cerr << "telemetry_watch: no snapshots in " << opt.path << "\n";
                return 1;
            }
            return 0;
        }
        if (have_snapshot && latest.final_snapshot) {
            return 0;  // the run is over; the stream will not grow again
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(opt.poll_s));
    }
}
