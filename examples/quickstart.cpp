// Quickstart: compute the availability and mean download time of a swarm,
// then see what bundling does to both.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "model/availability.hpp"
#include "model/bundling.hpp"
#include "model/download_time.hpp"

int main() {
    using namespace swarmavail::model;

    // A swarm for one 4 MB file: a peer wants it every 2 minutes on
    // average, the swarm sustains ~50 KBps per peer, and a publisher shows
    // up every 15 minutes staying 5 minutes.
    SwarmParams file;
    file.peer_arrival_rate = 1.0 / 120.0;      // lambda, peers/s
    file.content_size = 4.0e6 * 8.0;           // s, bits
    file.download_rate = 50.0e3 * 8.0;         // mu, bits/s
    file.publisher_arrival_rate = 1.0 / 900.0; // r, publishers/s
    file.publisher_residence = 300.0;          // u, s

    const auto availability = availability_impatient(file);
    const auto download = download_time_patient(file);

    std::cout << "single file swarm:\n";
    std::cout << "  service time s/mu        = " << file.service_time() << " s\n";
    std::cout << "  mean busy period E[B]    = " << availability.busy_period << " s\n";
    std::cout << "  unavailability P         = " << availability.unavailability << "\n";
    std::cout << "  mean download time E[T]  = " << download.download_time
              << " s (service " << download.service_time << " + waiting "
              << download.waiting_time << ")\n\n";

    // Bundle five such files: demand aggregates, content grows, the
    // publisher process stays the same -- and unavailability collapses by
    // e^{-Theta(K^2)} (Theorem 3.1).
    std::cout << "bundling K files (publisher process unchanged):\n";
    std::cout << "  K   P(unavailable)   E[T] (s)\n";
    BundleSweepConfig config;
    config.max_k = 6;
    for (const auto& point : sweep_bundle_sizes(file, config)) {
        std::cout << "  " << point.k << "   " << point.unavailability << "   \t"
                  << point.download_time << "\n";
    }
    const auto sweep = sweep_bundle_sizes(file, config);
    std::cout << "\noptimal bundle size: K = " << optimal_bundle_size(sweep)
              << " (minimizes mean download time)\n";
    return 0;
}
