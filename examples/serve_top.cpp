// serve_top: live terminal view of a running planning daemon.
//
// Polls the STATS verb and renders the service's health the way top
// renders a host: per-verb queries/s (deltas between polls), per-stage
// latency quantiles from the span-fed stage histograms, lane queue
// depths, cache hit rates, and the slow-query counter. Quantiles are
// upper histogram bin edges (log2 bins), not exact order statistics.
//
// Usage:
//   serve_top (--port P | --port-file FILE)
//             [--interval S] [--iterations N | --once] [--no-clear]
//
// The default is an endless 1 s poll loop that repaints the screen in
// place; --once polls a single time and exits (what CI smoke tests use),
// --iterations bounds the loop, --no-clear appends frames instead of
// repainting (pipe-friendly). Exits nonzero when the server cannot be
// reached or STATS stops parsing.
//
// The stage rows answer the tail-latency question directly: a p99 that
// lives in queue_wait is an overload (add workers or raise --max-inflight),
// one that lives in compute is the workload itself (REFINE simulations),
// and cache hit rates tell whether the warm path is actually warm. See
// EXPERIMENTS.md "Attributing tail latency".
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace {

using swarmavail::serve::FrameDecoder;

struct Options {
    int port = -1;
    std::string port_file;
    double interval_s = 1.0;
    long iterations = -1;  ///< -1 = until killed
    bool clear = true;
};

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "serve_top: " << message << "\n"
              << "usage: serve_top (--port P | --port-file FILE) [--interval S]\n"
              << "                 [--iterations N | --once] [--no-clear]\n";
    std::exit(2);
}

const char* next_value(int argc, char** argv, int& i, std::string_view flag) {
    if (i + 1 >= argc) {
        usage_error(std::string{flag} + " needs a value");
    }
    return argv[++i];
}

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--port") {
            opt.port = std::stoi(next_value(argc, argv, i, arg));
        } else if (arg == "--port-file") {
            opt.port_file = next_value(argc, argv, i, arg);
        } else if (arg == "--interval") {
            opt.interval_s = std::stod(next_value(argc, argv, i, arg));
            if (opt.interval_s <= 0.0) {
                usage_error("--interval must be > 0");
            }
        } else if (arg == "--iterations") {
            opt.iterations = std::stol(next_value(argc, argv, i, arg));
            if (opt.iterations < 1) {
                usage_error("--iterations must be >= 1");
            }
        } else if (arg == "--once") {
            opt.iterations = 1;
        } else if (arg == "--no-clear") {
            opt.clear = false;
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else {
            usage_error("unknown flag " + std::string{arg});
        }
    }
    return opt;
}

int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// One STATS round trip; the exposition text lands in `text`.
bool fetch_stats(int fd, FrameDecoder& decoder, std::string& text) {
    if (!send_all(fd, swarmavail::serve::encode_frame("{\"verb\":\"STATS\"}"))) {
        return false;
    }
    std::string response;
    std::string error;
    char buffer[65536];
    while (true) {
        const FrameDecoder::Status status = decoder.next(response, error);
        if (status == FrameDecoder::Status::kFrame) {
            break;
        }
        if (status == FrameDecoder::Status::kError) {
            std::cerr << "serve_top: protocol error: " << error << "\n";
            return false;
        }
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
            std::cerr << "serve_top: connection closed by server\n";
            return false;
        }
        decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
    swarmavail::serve::JsonValue value;
    if (!swarmavail::serve::parse_json(response, value, &error)) {
        std::cerr << "serve_top: unparseable STATS response: " << error << "\n";
        return false;
    }
    const auto* result = value.find("result");
    const auto* prometheus =
        result != nullptr ? result->find("prometheus") : nullptr;
    if (prometheus == nullptr || !prometheus->is_string()) {
        std::cerr << "serve_top: STATS response has no prometheus text\n";
        return false;
    }
    text = prometheus->as_string();
    return true;
}

// Minimal scanner over the server's own exposition shape (`name value`
// and `name{label="v"} value` lines; _bucket/_sum/_count histograms with
// cumulative buckets).

bool find_sample(const std::string& text, const std::string& prefix, double& out) {
    const std::string needle = prefix + " ";
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::size_t len =
            (eol == std::string::npos ? text.size() : eol) - pos;
        if (len > needle.size() &&
            text.compare(pos, needle.size(), needle) == 0) {
            out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
            return true;
        }
        if (eol == std::string::npos) {
            break;
        }
        pos = eol + 1;
    }
    return false;
}

double sample_or_zero(const std::string& text, const std::string& name) {
    double value = 0.0;
    find_sample(text, name, value);
    return value;
}

struct Histogram {
    std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, cumulative)
    double sum = 0.0;
    std::uint64_t count = 0;
};

bool read_histogram(const std::string& text, const std::string& family,
                    Histogram& out) {
    out = Histogram{};
    const std::string bucket_prefix = family + "_bucket{le=\"";
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::size_t len =
            (eol == std::string::npos ? text.size() : eol) - pos;
        const std::string line = text.substr(pos, len);
        if (line.compare(0, bucket_prefix.size(), bucket_prefix) == 0) {
            const std::size_t close = line.find("\"} ", bucket_prefix.size());
            if (close != std::string::npos) {
                const std::string le_text =
                    line.substr(bucket_prefix.size(), close - bucket_prefix.size());
                const double le = le_text == "+Inf"
                                      ? std::numeric_limits<double>::infinity()
                                      : std::strtod(le_text.c_str(), nullptr);
                out.buckets.emplace_back(
                    le, std::strtoull(line.c_str() + close + 3, nullptr, 10));
            }
        }
        if (eol == std::string::npos) {
            break;
        }
        pos = eol + 1;
    }
    double sum = 0.0;
    double count = 0.0;
    find_sample(text, family + "_sum", sum);
    find_sample(text, family + "_count", count);
    out.sum = sum;
    out.count = static_cast<std::uint64_t>(count);
    return !out.buckets.empty();
}

double histogram_quantile(const Histogram& histogram, double q) {
    if (histogram.count == 0) {
        return 0.0;
    }
    const double target = q * static_cast<double>(histogram.count);
    for (const auto& [le, cumulative] : histogram.buckets) {
        if (static_cast<double>(cumulative) >= target) {
            return le;
        }
    }
    return histogram.buckets.back().first;
}

std::string format_seconds(double seconds) {
    char buffer[32];
    if (seconds <= 0.0) {
        return "-";
    }
    if (seconds < 1.0e-3) {
        std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1.0e6);
    } else if (seconds < 1.0) {
        std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1.0e3);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
    }
    return buffer;
}

constexpr const char* kVerbs[] = {"ping", "eval", "plan", "refine", "stats"};
constexpr std::size_t kVerbTotal = sizeof(kVerbs) / sizeof(kVerbs[0]);
constexpr const char* kStages[] = {"decode",  "parse",     "cache",
                                   "queue_wait", "compute", "serialize",
                                   "write"};

void render(const std::string& text, const double (&qps)[kVerbTotal],
            bool have_rates, long poll, int port) {
    std::printf("serve_top — planning service 127.0.0.1:%d  poll %ld\n\n", port,
                poll);

    std::printf("%-12s %10s %10s %10s %10s\n", "verb", "qps", "total", "p50",
                "p99");
    for (std::size_t v = 0; v < kVerbTotal; ++v) {
        Histogram histogram;
        if (!read_histogram(
                text, std::string("swarmavail_server_latency_seconds_") + kVerbs[v],
                histogram)) {
            continue;
        }
        char qps_text[32];
        if (have_rates) {
            std::snprintf(qps_text, sizeof(qps_text), "%.1f", qps[v]);
        } else {
            std::snprintf(qps_text, sizeof(qps_text), "-");
        }
        std::printf("%-12s %10s %10llu %10s %10s\n", kVerbs[v], qps_text,
                    static_cast<unsigned long long>(histogram.count),
                    format_seconds(histogram_quantile(histogram, 0.50)).c_str(),
                    format_seconds(histogram_quantile(histogram, 0.99)).c_str());
    }

    std::printf("\n%-12s %10s %10s %10s\n", "stage", "count", "p50", "p99");
    for (const char* stage : kStages) {
        Histogram histogram;
        if (!read_histogram(
                text, std::string("swarmavail_server_stage_seconds_") + stage,
                histogram)) {
            continue;
        }
        std::printf("%-12s %10llu %10s %10s\n", stage,
                    static_cast<unsigned long long>(histogram.count),
                    format_seconds(histogram_quantile(histogram, 0.50)).c_str(),
                    format_seconds(histogram_quantile(histogram, 0.99)).c_str());
    }

    std::printf("\nqueues   model %.0f  sim %.0f\n",
                sample_or_zero(text, "swarmavail_server_queue_depth{lane=\"model\"}"),
                sample_or_zero(text, "swarmavail_server_queue_depth{lane=\"sim\"}"));
    for (const char* cache : {"model", "refine"}) {
        const std::string base =
            std::string("swarmavail_server_") + cache + "_cache_";
        const double hits = sample_or_zero(text, base + "hits_total");
        const double misses = sample_or_zero(text, base + "misses_total");
        const double total = hits + misses;
        std::printf(
            "%-8s %6.1f%% hit  (%.0f hits, %.0f misses, %.0f evicted, "
            "%.0f coalesced, %.0f entries)\n",
            cache, total > 0.0 ? 100.0 * hits / total : 0.0, hits, misses,
            sample_or_zero(text, base + "evictions_total"),
            sample_or_zero(text, base + "coalesced_total"),
            sample_or_zero(text, base + "entries"));
    }
    std::printf("spans    records %.0f  dropped %.0f  slow %.0f\n",
                sample_or_zero(text, "swarmavail_server_span_records_total"),
                sample_or_zero(text,
                               "swarmavail_server_span_records_dropped_total"),
                sample_or_zero(text, "swarmavail_server_slow_queries_total"));
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);

    int port = opt.port;
    if (port < 0 && !opt.port_file.empty()) {
        std::ifstream in(opt.port_file);
        if (!(in >> port)) {
            std::cerr << "serve_top: cannot read a port from " << opt.port_file
                      << "\n";
            return 1;
        }
    }
    if (port <= 0 || port > 65535) {
        usage_error("need --port or --port-file naming a bound port");
    }

    const int fd = connect_to(port);
    if (fd < 0) {
        std::cerr << "serve_top: cannot connect to 127.0.0.1:" << port << "\n";
        return 1;
    }
    FrameDecoder decoder;

    double previous_totals[kVerbTotal] = {};
    auto previous_poll = std::chrono::steady_clock::now();
    bool have_previous = false;

    int rc = 0;
    for (long poll = 1; opt.iterations < 0 || poll <= opt.iterations; ++poll) {
        std::string text;
        if (!fetch_stats(fd, decoder, text)) {
            rc = 1;
            break;
        }
        const auto now = std::chrono::steady_clock::now();
        const double elapsed =
            std::chrono::duration<double>(now - previous_poll).count();

        double qps[kVerbTotal] = {};
        double totals[kVerbTotal] = {};
        for (std::size_t v = 0; v < kVerbTotal; ++v) {
            totals[v] = sample_or_zero(
                text, std::string("swarmavail_server_requests_total{verb=\"") +
                          kVerbs[v] + "\"}");
            if (have_previous && elapsed > 0.0) {
                qps[v] = (totals[v] - previous_totals[v]) / elapsed;
            }
            previous_totals[v] = totals[v];
        }
        previous_poll = now;

        if (opt.clear) {
            std::printf("\x1b[H\x1b[2J");
        }
        render(text, qps, have_previous, poll, port);
        std::fflush(stdout);
        have_previous = true;

        if (opt.iterations < 0 || poll < opt.iterations) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opt.interval_s));
        }
    }
    ::close(fd);
    return rc;
}
