// Measurement report: generate a synthetic BitTorrent ecosystem, monitor it
// the way the paper's PlanetLab agents did (hourly scrapes, bitmap-based
// seed detection), and print a Section 2-style availability report.
#include <iostream>

#include "measurement/analysis.hpp"
#include "measurement/monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::measurement;

    CatalogConfig catalog_config;
    catalog_config.music_swarms = 4000;
    catalog_config.tv_swarms = 2500;
    catalog_config.book_swarms = 2000;
    catalog_config.movie_swarms = 1500;
    catalog_config.other_swarms = 1000;
    const auto catalog = generate_catalog(catalog_config);

    MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 60;  // two months of hourly scrapes
    const auto traces = monitor_catalog(catalog, monitor_config);

    std::cout << "=== synthetic ecosystem measurement report ===\n\n";
    std::cout << "swarms monitored: " << catalog.size() << " for "
              << monitor_config.duration_hours << " hours\n\n";

    std::cout << "bundling extent by category (extension classifier):\n";
    TableWriter extent_table{{"category", "swarms", "bundles", "bundle %"}};
    for (const auto& row : bundling_extent(catalog)) {
        extent_table.add_row({to_string(row.category), std::to_string(row.swarms),
                              std::to_string(row.bundles),
                              format_double(100.0 * row.bundle_fraction(), 3)});
    }
    extent_table.print(std::cout);

    const auto fractions = availability_fractions(traces, 0, monitor_config.duration_hours);
    const EmpiricalCdf cdf{fractions};
    std::cout << "\nseed availability over the whole window:\n";
    TableWriter cdf_table{{"availability <=", "fraction of swarms"}};
    for (double a : {0.0, 0.2, 0.5, 0.8, 0.99}) {
        cdf_table.add_row({format_double(a, 3), format_double(cdf(a), 4)});
    }
    cdf_table.print(std::cout);

    const auto books = compare_availability(catalog, traces, Category::kBooks,
                                            /*use_collections=*/true, 24 * 45);
    std::cout << "\nbook swarms on the snapshot day (hour " << 24 * 45 << "):\n";
    std::cout << "  plain:       " << books.plain_swarms << " swarms, "
              << 100.0 * books.plain_seedless_fraction() << "% seedless, mean "
              << books.plain_mean_downloads << " downloads\n";
    std::cout << "  collections: " << books.bundled_swarms << " swarms, "
              << 100.0 * books.bundled_seedless_fraction() << "% seedless, mean "
              << books.bundled_mean_downloads << " downloads\n";
    std::cout << "\nconclusion: bundled content is more available -- the effect the\n"
                 "paper measures in Section 2.3.2 and explains with its model.\n";
    return 0;
}
