// Divergence hunt: localize the first point where two runs' event paths
// split.
//
// Given two availability-run configs (by default the same swarm with two
// seeds — an injected divergence), the tool:
//   1. runs both with periodic checkpoint fingerprints (the per-process
//      digest polled between run_until slices — see
//      AvailabilityProcess::fingerprint_digest) and finds the first
//      checkpoint window where the digests disagree;
//   2. binary-searches inside that window by replaying both runs to probe
//      times, shrinking the window until --refine probes are spent;
//   3. replays both runs once more with a flight recorder attached
//      (sim/flight_recorder.hpp) up to the window's end and prints the two
//      retained event windows side by side, marking the first differing
//      record.
//
// Replaying is sound because every run is deterministic in its config: a
// digest polled at time t is a pure function of (config, t), so probes
// taken in separate replays are mutually consistent.
//
// Usage:
//   divergence_hunt [--seed-a N] [--seed-b N] [--lambda-b RATE]
//                   [--horizon S] [--checkpoints N] [--refine N]
//
// Identical configs report "no divergence" and exit 0; differing configs
// print the localized window and the side-by-side event log, and exit 2
// (divergence found — distinct from the clean exit so scripts can branch).
// Builds with fingerprinting or tracing compiled out report the missing
// instrumentation and exit 3.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/availability_process.hpp"
#include "sim/event_queue.hpp"
#include "sim/fingerprint.hpp"
#include "sim/flight_recorder.hpp"
#include "sim/trace.hpp"

namespace {

using namespace swarmavail;

struct Options {
    std::uint64_t seed_a = 1;
    std::uint64_t seed_b = 2;
    double lambda_b = 0.0;  ///< 0: same arrival rate as run A
    double horizon = 20000.0;
    int checkpoints = 16;
    int refine = 16;
};

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "divergence_hunt: " << message << "\n"
              << "usage: divergence_hunt [--seed-a N] [--seed-b N] "
                 "[--lambda-b RATE] [--horizon S] [--checkpoints N] "
                 "[--refine N]\n";
    std::exit(2);
}

Options parse_options(int argc, char** argv) {
    Options opt;
    const auto value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            usage_error(std::string{argv[i]} + " needs a value");
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--seed-a") {
            opt.seed_a = std::stoull(value(i));
        } else if (arg == "--seed-b") {
            opt.seed_b = std::stoull(value(i));
        } else if (arg == "--lambda-b") {
            opt.lambda_b = std::stod(value(i));
        } else if (arg == "--horizon") {
            opt.horizon = std::stod(value(i));
        } else if (arg == "--checkpoints") {
            opt.checkpoints = std::stoi(value(i));
        } else if (arg == "--refine") {
            opt.refine = std::stoi(value(i));
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else {
            usage_error("unknown argument " + std::string{arg});
        }
    }
    if (opt.horizon <= 0.0) {
        usage_error("--horizon must be > 0");
    }
    if (opt.checkpoints < 2) {
        usage_error("--checkpoints must be >= 2");
    }
    if (opt.refine < 0) {
        usage_error("--refine must be >= 0");
    }
    return opt;
}

/// The demo swarm: modest load, intermittent publishers, enough churn that
/// two seeds diverge within the first few hundred simulated seconds.
sim::AvailabilitySimConfig make_config(std::uint64_t seed, double lambda,
                                       double horizon) {
    sim::AvailabilitySimConfig config;
    config.params.peer_arrival_rate = lambda;
    config.params.content_size = 4.0e6 * 8.0;
    config.params.download_rate = 50.0e3 * 8.0;
    config.params.publisher_arrival_rate = 1.0 / 900.0;
    config.params.publisher_residence = 300.0;
    config.horizon = horizon;
    config.seed = seed;
    return config;
}

/// Replays `config` from time zero and returns the process digest at each
/// requested poll time (ascending). A tracer, when given, sees the whole
/// replayed prefix.
std::vector<std::uint64_t> digests_at(const sim::AvailabilitySimConfig& config,
                                      const std::vector<double>& times,
                                      sim::Tracer* tracer = nullptr) {
    sim::AvailabilitySimConfig run = config;
    run.tracer = tracer;
    sim::EventQueue queue;
    sim::AvailabilityProcess process{queue, run};
    process.start();
    std::vector<std::uint64_t> out;
    out.reserve(times.size());
    for (const double t : times) {
        queue.run_until(t);
        out.push_back(process.fingerprint_digest());
    }
    if (tracer != nullptr) {
        tracer->flush();
    }
    return out;
}

std::uint64_t digest_at(const sim::AvailabilitySimConfig& config, double t) {
    return digests_at(config, {t}).front();
}

void print_record(std::ostream& os, const sim::TraceRecord& record) {
    os << "t=" << record.time << " " << sim::trace_kind_name(record.kind)
       << " entity=" << record.entity << " a=" << record.a << " b=" << record.b;
}

/// Prints the two retained windows side by side (interleaved A/B pairs by
/// index), marking the first index where the records differ.
void print_windows(const std::vector<sim::TraceRecord>& a,
                   const std::vector<sim::TraceRecord>& b) {
    const std::size_t rows = std::max(a.size(), b.size());
    bool marked = false;
    for (std::size_t i = 0; i < rows; ++i) {
        const bool differs =
            i >= a.size() || i >= b.size() || !(a[i] == b[i]);
        std::cout << "  A ";
        if (i < a.size()) {
            print_record(std::cout, a[i]);
        } else {
            std::cout << "(no record)";
        }
        std::cout << "\n  B ";
        if (i < b.size()) {
            print_record(std::cout, b[i]);
        } else {
            std::cout << "(no record)";
        }
        if (differs && !marked) {
            std::cout << "   <-- first differing record";
            marked = true;
        }
        std::cout << "\n";
    }
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);

    const sim::AvailabilitySimConfig config_a =
        make_config(opt.seed_a, 1.0 / 120.0, opt.horizon);
    const sim::AvailabilitySimConfig config_b = make_config(
        opt.seed_b, opt.lambda_b > 0.0 ? opt.lambda_b : 1.0 / 120.0,
        opt.horizon);

    std::cout << "divergence hunt over " << opt.horizon << " s: run A (seed "
              << opt.seed_a << ") vs run B (seed " << opt.seed_b;
    if (opt.lambda_b > 0.0) {
        std::cout << ", lambda " << opt.lambda_b;
    }
    std::cout << ")\n";

    // Phase 1: coarse checkpoint sweep, one replay per run.
    std::vector<double> checkpoints;
    checkpoints.reserve(static_cast<std::size_t>(opt.checkpoints));
    for (int i = 1; i <= opt.checkpoints; ++i) {
        checkpoints.push_back(opt.horizon * i / opt.checkpoints);
    }
    const std::vector<std::uint64_t> digests_a = digests_at(config_a, checkpoints);
    const std::vector<std::uint64_t> digests_b = digests_at(config_b, checkpoints);

    if (digests_a.back() == 0 && digests_b.back() == 0) {
        std::cout << "fingerprinting is compiled out or disabled in this "
                     "build; nothing to compare\n";
        return 3;
    }

    std::size_t first = checkpoints.size();
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        const bool same = digests_a[i] == digests_b[i];
        std::cout << "  checkpoint t=" << checkpoints[i] << "  A "
                  << sim::fingerprint_hex(digests_a[i]) << "  B "
                  << sim::fingerprint_hex(digests_b[i])
                  << (same ? "" : "  DIVERGED") << "\n";
        if (!same && first == checkpoints.size()) {
            first = i;
        }
    }
    if (first == checkpoints.size()) {
        std::cout << "no divergence: every checkpoint digest matches ("
                  << sim::fingerprint_hex(digests_a.back()) << ")\n";
        return 0;
    }

    // Phase 2: bisect the window. The invariant is digests agree at `lo`
    // and disagree at `hi`; each probe replays both runs to the midpoint.
    // Chains that already disagree at t=0 (different seeds fold different
    // initial states) have no divergent *event* to bisect for: the runs
    // are distinct executions from their first event on.
    double lo = first == 0 ? 0.0 : checkpoints[first - 1];
    double hi = checkpoints[first];
    if (first == 0 && digest_at(config_a, 0.0) != digest_at(config_b, 0.0)) {
        std::cout << "chains differ before any event (distinct seeds or "
                     "configs); showing each run's first events\n";
    } else {
        for (int probe = 0; probe < opt.refine && hi - lo > 1e-9; ++probe) {
            const double mid = lo + (hi - lo) / 2.0;
            if (digest_at(config_a, mid) == digest_at(config_b, mid)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        std::cout << "first divergent window: (" << lo << " s, " << hi
                  << " s] after " << opt.refine << " bisection probes\n";
    }

    // Phase 3: replay both runs to the window's end with flight recorders
    // attached and show the retained event windows side by side. When the
    // window closes before either run recorded anything (divergence via a
    // draw that produced no event yet), extend the replay until the first
    // records exist — the ring then still holds the earliest ones.
    std::vector<sim::TraceRecord> window_a;
    std::vector<sim::TraceRecord> window_b;
    double show = hi;
    for (;;) {
        sim::FlightRecorder recorder_a{64};
        sim::FlightRecorder recorder_b{64};
        sim::Tracer tracer_a{recorder_a};
        sim::Tracer tracer_b{recorder_b};
        tracer_a.set_enabled(true);
        tracer_b.set_enabled(true);
        (void)digests_at(config_a, {show}, &tracer_a);
        (void)digests_at(config_b, {show}, &tracer_b);
        window_a = recorder_a.window();
        window_b = recorder_b.window();
        if (!window_a.empty() || !window_b.empty() || show >= opt.horizon) {
            break;
        }
        show = std::min(opt.horizon,
                        std::max(show * 2.0, opt.horizon / 64.0));
    }
    if (window_a.empty() && window_b.empty()) {
        std::cout << "tracing is compiled out in this build; cannot show "
                     "the event windows\n";
        return 3;
    }
    std::cout << "flight-recorder windows up to t=" << show << " (last "
              << window_a.size() << " A records, " << window_b.size()
              << " B records):\n";
    print_windows(window_a, window_b);
    // Divergence found and localized: distinct from both the clean exit
    // (0) and the compiled-out exit (3), so scripts can branch on it.
    return 2;
}
