// Publisher planning: a content publisher with a catalog of episodes and a
// limited seeding budget decides how to bundle them.
//
// The publisher can only keep its seed online 25% of the time (on 300 s,
// off 900 s). Larger bundles stretch peer-sustained busy periods across the
// off periods, but force every peer to download more. This example sweeps
// bundle sizes under three demand scenarios and prints the recommendation,
// using both the closed-form model (eq. 16) and the block-level simulator
// as a cross-check.
#include <iostream>
#include <memory>

#include "model/bundling.hpp"
#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

namespace {

using namespace swarmavail;

void plan(const std::string& label, double per_file_rate) {
    std::cout << "\n=== scenario: " << label << " (lambda = " << per_file_rate
              << " peers/s per episode) ===\n";

    model::SwarmParams params;
    params.peer_arrival_rate = per_file_rate;
    params.content_size = 4.0e6 * 8.0;
    params.download_rate = 50.0e3 * 8.0;
    params.publisher_arrival_rate = 1.0 / 900.0;  // mean off time
    params.publisher_residence = 300.0;           // mean on time

    model::BundleSweepConfig config;
    config.max_k = 8;
    config.model = model::DownloadModel::kSinglePublisher;
    config.coverage_threshold = 9;
    const auto sweep = model::sweep_bundle_sizes(params, config);

    TableWriter table{{"episodes per torrent K", "model E[T] (s)", "model P"}};
    for (const auto& point : sweep) {
        table.add_row({std::to_string(point.k), format_double(point.download_time, 5),
                       format_double(point.unavailability, 4)});
    }
    table.print(std::cout);
    const std::size_t best = model::optimal_bundle_size(sweep);
    std::cout << "model recommendation: bundle " << best << " episodes per torrent\n";

    // Cross-check the recommended and the unbundled option in the
    // block-level simulator.
    swarm::SwarmSimConfig sim_config;
    sim_config.peer_arrival_rate = per_file_rate;
    sim_config.peer_capacity =
        std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    sim_config.publisher_capacity = 100.0 * swarm::kKBps;
    sim_config.publisher = swarm::PublisherBehavior::kOnOff;
    sim_config.publisher_on_mean = 300.0;
    sim_config.publisher_off_mean = 900.0;
    sim_config.horizon = 9600.0;
    sim_config.drain_after_horizon = true;
    sim_config.seed = 12;
    for (std::size_t k : {std::size_t{1}, best}) {
        sim_config.bundle_size = k;
        const auto runs = swarm::run_swarm_replications(sim_config, 3);
        const auto times = swarm::merge_download_times(runs);
        std::cout << "  simulated mean download time at K=" << k << ": "
                  << (times.empty() ? 0.0 : times.mean()) << " s over " << times.size()
                  << " peers\n";
    }
}

}  // namespace

int main() {
    std::cout << "Publisher planning: choosing a bundle size for a 25%-available seed\n";
    plan("niche show", 1.0 / 300.0);
    plan("steady audience", 1.0 / 60.0);
    plan("popular show", 1.0 / 15.0);
    std::cout << "\nRule of thumb from the paper: bundle enough content that the\n"
                 "swarm's peer-sustained busy period bridges the publisher's off\n"
                 "periods -- and no more.\n";
    return 0;
}
