// Swarm timeline: run the block-level BitTorrent simulator with an
// intermittent publisher and print a Figure 2 / Figure 5-style view of the
// swarm: per-peer lifetimes and the content-availability intervals.
#include <iostream>
#include <memory>

#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"

int main() {
    using namespace swarmavail::swarm;

    SwarmSimConfig config;
    config.bundle_size = 3;
    config.file_size = 4.0e6 * 8.0;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 2400.0;
    config.seed = 9;

    const auto result = run_swarm_sim(config);

    std::cout << "swarm of K=" << config.bundle_size << " files, "
              << config.horizon << " s, intermittent publisher (on 300 s / off 900 s)\n\n";

    std::cout << "peer lifetimes ('-' downloading/waiting, '|' completed, '?' cut off):\n";
    std::cout << render_peer_timeline(result.peers, config.horizon, 96) << "\n";

    std::cout << "content-available intervals (the busy periods of Figure 2):\n";
    for (const auto& interval : result.available_intervals) {
        std::cout << "  [" << interval.begin << " s, " << interval.end << " s]  ("
                  << interval.end - interval.begin << " s)\n";
    }
    std::cout << "\navailable fraction of the run: " << result.available_fraction << "\n";
    std::cout << "peers: " << result.arrivals << " arrived, " << result.completions
              << " completed, " << result.stuck_at_horizon << " still waiting\n";
    if (result.download_times.count() > 0) {
        std::cout << "mean download time: " << result.download_times.mean() << " s (min "
                  << result.download_times.min() << ", max "
                  << result.download_times.max() << ")\n";
    }
    const auto burst = max_completion_burst(result.completion_times, 30.0);
    std::cout << "largest 30 s completion burst: " << burst
              << (burst >= 4 ? "  <- flash departures: blocked peers finishing "
                               "together when the publisher returns\n"
                             : "\n");
    return 0;
}
