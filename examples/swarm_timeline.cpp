// Swarm timeline: run the block-level BitTorrent simulator with an
// intermittent publisher and print a Figure 2 / Figure 5-style view of the
// swarm. The timeline annotations are driven from the structured event
// trace (sim::MemoryTraceSink) and the metrics registry rather than the
// aggregate result, demonstrating that the observability layer carries the
// full story of a run.
#include <iostream>
#include <memory>

#include "sim/trace.hpp"
#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/metrics.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::swarm;
    using sim::TraceKind;
    using sim::TraceRecord;

    SwarmSimConfig config;
    config.bundle_size = 3;
    config.file_size = 4.0e6 * 8.0;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 2400.0;
    config.seed = 9;

    MetricsRegistry metrics;
    sim::MemoryTraceSink sink;
    sim::Tracer tracer{sink};
    tracer.set_enabled(true);
    config.metrics = &metrics;
    config.tracer = &tracer;

    const auto result = run_swarm_sim(config);

    std::cout << "swarm of K=" << config.bundle_size << " files, "
              << config.horizon << " s, intermittent publisher (on 300 s / off 900 s)\n\n";

    std::cout << "peer lifetimes ('-' downloading/waiting, '|' completed, '?' cut off):\n";
    std::cout << render_peer_timeline(result.peers, config.horizon, 96) << "\n";

    // Everything below is reconstructed from the event trace alone.
    std::cout << "publisher sessions (from kPublisherUp/Down trace records):\n";
    double up_since = 0.0;
    for (const TraceRecord& record : sink.records()) {
        if (record.kind == TraceKind::kPublisherUp) {
            up_since = record.time;
        } else if (record.kind == TraceKind::kPublisherDown) {
            std::cout << "  up [" << up_since << " s, " << record.time << " s]  ("
                      << record.time - up_since << " s)\n";
        }
    }

    std::cout << "content-available intervals (the busy periods of Figure 2, "
                 "from kAvailabilityEnd records):\n";
    for (const TraceRecord& record : sink.records()) {
        if (record.kind == TraceKind::kAvailabilityEnd) {
            std::cout << "  [" << record.a << " s, " << record.time << " s]  ("
                      << record.time - record.a << " s)\n";
        }
    }
    std::cout << "\navailable fraction of the run: " << result.available_fraction << "\n";

    // The counters and latency histogram mirror the aggregate observables.
    std::cout << "peers: " << metrics.find_counter("swarm.arrivals")->value()
              << " arrived, " << metrics.find_counter("swarm.completions")->value()
              << " completed, " << result.stuck_at_horizon << " still waiting\n";
    const HistogramMetric* downloads = metrics.find_histogram("swarm.download_time_s");
    if (downloads != nullptr && downloads->stats().count() > 0) {
        std::cout << "mean download time: " << downloads->stats().mean() << " s (min "
                  << downloads->stats().min() << ", max " << downloads->stats().max()
                  << ")\n";
        std::cout << "download-time histogram (log2 bins with any mass):\n";
        for (std::size_t i = 0; i < downloads->bins(); ++i) {
            if (downloads->bin_count(i) > 0) {
                std::cout << "  [" << downloads->bin_lo(i) << ", " << downloads->bin_hi(i)
                          << ") s: " << downloads->bin_count(i) << "\n";
            }
        }
    }
    const auto burst = max_completion_burst(result.completion_times, 30.0);
    std::cout << "largest 30 s completion burst: " << burst
              << (burst >= 4 ? "  <- flash departures: blocked peers finishing "
                               "together when the publisher returns\n"
                             : "\n");
    std::cout << "trace records captured: " << sink.records().size() << "\n";
    return 0;
}
