// Catalog bundling strategy, end to end: a publisher with a 10-file
// catalog, a flaky seed, and three tools from this library --
//
//  1. the partition optimizer (which files to glue into which torrents),
//  2. the mixed-bundling analysis (publish individual torrents AND a
//     bundle; how many users must opt into the bundle?),
//  3. the fluid baseline (what a standard availability-blind model would
//     have recommended, and why it is wrong here).
#include <iostream>

#include "model/fluid_baseline.hpp"
#include "model/mixed_bundling.hpp"
#include "model/partitioning.hpp"
#include "model/zipf_demand.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::model;

    std::cout << "=== bundling strategy for a 10-file catalog ===\n\n";

    SwarmParams base;
    base.peer_arrival_rate = 1.0;             // per-file demands below
    base.content_size = 4.0e6 * 8.0;          // 4 MB files
    base.download_rate = 50.0e3 * 8.0;        // 50 KBps swarm capacity
    base.publisher_arrival_rate = 1.0 / 900.0;  // seed returns every 15 min
    base.publisher_residence = 300.0;           // ... and stays 5 min

    // Zipf(1.0) demand, one request per 30 s across the catalog.
    const auto popularity = zipf_popularities(10, 1.0);
    PartitionConfig partition_config;
    for (double p : popularity) {
        partition_config.lambdas.push_back(p / 30.0);
    }

    // 1. Partitioning: which bundles should exist?
    const auto partition = optimal_partition_contiguous(base, partition_config);
    std::cout << "1. optimal partition (files ranked by popularity):\n   ";
    for (const auto& bundle : partition) {
        std::cout << "{";
        for (std::size_t i = 0; i < bundle.size(); ++i) {
            std::cout << bundle[i] + 1 << (i + 1 < bundle.size() ? "," : "");
        }
        std::cout << "} ";
    }
    std::cout << "\n   weighted mean download time: "
              << partition_cost(base, partition, partition_config) << " s\n";
    Partition all_solo;
    for (std::size_t i = 0; i < 10; ++i) {
        all_solo.push_back({i});
    }
    std::cout << "   (all-solo publishing: "
              << partition_cost(base, all_solo, partition_config) << " s)\n\n";

    // 2. Mixed bundling: keep the individual torrents, add one bundle.
    std::cout << "2. mixed bundling (individual torrents + one full-catalog "
                 "bundle):\n";
    TableWriter mixed_table{{"opt-in q", "aggregate request unavailability"}};
    MixedBundlingConfig mixed_config;
    mixed_config.lambdas = partition_config.lambdas;
    for (double q : {0.0, 0.1, 0.25, 0.5}) {
        mixed_config.bundle_opt_in = q;
        const auto rows = evaluate_mixed_bundling(base, mixed_config);
        mixed_table.add_row(
            {format_double(q, 3), format_double(request_unavailability(rows, q), 4)});
    }
    mixed_table.print(std::cout);

    // 3. What would the fluid baseline have said?
    FluidParams fluid;
    fluid.lambda = partition_config.lambdas.front();
    fluid.mu = base.download_rate / base.content_size;
    fluid.c = 4.0 * fluid.mu;
    fluid.eta = 1.0;
    fluid.gamma = 1.0;
    std::cout << "\n3. fluid-baseline check: predicted download times for the "
                 "most popular file\n   bundled at K = 1, 4, 8: "
              << fluid_bundle_download_time(fluid, 1) << ", "
              << fluid_bundle_download_time(fluid, 4) << ", "
              << fluid_bundle_download_time(fluid, 8)
              << " s -- monotone in K, i.e. \"never bundle\".\n";
    std::cout << "   The availability-aware partition above disagrees for the "
                 "unpopular tail,\n   which is the paper's central point.\n";
    return 0;
}
